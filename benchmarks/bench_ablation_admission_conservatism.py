"""Ablation: how conservative must admission measurement be? (Section 9)

"The key to making the predictive service commitments reliable is to
choose appropriately conservative measures for nu-hat and d-hat_j; these
should not just be averages but consistently conservative estimates."

We sweep a multiplicative safety factor on both measured quantities while
a stream of predicted-service requests (tight 50 ms class, declared
(85 kbit/s, 10 kbit) buckets) arrives every 10 s at one link.  For each
factor we record: flows admitted, link utilization, and the fraction of
tight-class packets whose per-switch wait exceeded the advertised D_0.

Each sweep point is one declarative scenario — the safety factor is a
first-class :class:`~repro.scenario.AdmissionSpec` knob — and the request
wave is orchestrated mid-run through the live
:class:`~repro.scenario.ScenarioContext` (the same machinery the dynamics
experiment uses), so rejected callers simply never inject traffic.

Measured shape: the paper's example criterion (2) is *already*
conservative — the commitment holds (zero violations) even with no safety
margin at all — so extra conservatism buys no additional reliability on
this workload and pays for it directly in utilization (~60 % admitted load
at factor 1.0 falling below 30 % at factor 3.0).  This quantifies the
trade the paper says "may involve historical knowledge" to tune: on a
stationary workload, the heuristic alone suffices.
"""

from benchmarks.conftest import run_once
from repro.core.signaling import FlowEstablishmentError
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.scenario import (
    DisciplineSpec,
    FlowSpec,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioRunner,
)

CLASS_BOUNDS = (0.05, 0.5)
SAFETY_FACTORS = (1.0, 1.5, 2.0, 3.0)
REQUESTS = 20
REQUEST_SPACING = 10.0
DURATION = 300.0
SEED = 2
BOTTLENECK = "A->B"


def conservatism_spec(safety: float, seed: int = SEED):
    return (
        ScenarioBuilder("admission-conservatism")
        .single_link()
        .discipline(DisciplineSpec.unified(num_predicted_classes=2))
        .admission(
            realtime_quota=0.9,
            class_bounds_seconds=CLASS_BOUNDS,
            utilization_safety=safety,
            delay_safety=safety,
        )
        .duration(DURATION)
        .seed(seed)
        .build()
    )


def run_with_safety(safety, seed=SEED):
    context = ScenarioRunner(conservatism_spec(safety, seed)).build()
    accepted = [0]
    violations = [0]
    tight_packets = [0]
    port = context.net.port_for_link(BOTTLENECK)

    def on_depart(packet, now, wait):
        if (
            packet.service_class is ServiceClass.PREDICTED
            and packet.priority_class == 0
        ):
            tight_packets[0] += 1
            if wait > CLASS_BOUNDS[0]:
                violations[0] += 1

    port.on_depart.append(on_depart)

    def try_flow(index):
        try:
            context.add_flow(
                FlowSpec(
                    name=f"v{index}",
                    source_host="src-host",
                    dest_host="dst-host",
                    request=PredictedRequest(
                        token_rate_bps=85_000,
                        bucket_depth_bits=10_000,
                        target_delay_seconds=CLASS_BOUNDS[0],
                    ),
                    record=False,
                )
            )
        except FlowEstablishmentError:
            return
        accepted[0] += 1

    for index in range(REQUESTS):
        context.sim.schedule(
            index * REQUEST_SPACING, lambda i=index: try_flow(i)
        )
    context.run()
    violation_rate = (
        violations[0] / tight_packets[0] if tight_packets[0] else 0.0
    )
    return {
        "accepted": accepted[0],
        "utilization": context.net.links[BOTTLENECK].utilization(),
        "violation_rate": violation_rate,
    }


def run_sweep(seed: int = SEED):
    return {safety: run_with_safety(safety, seed) for safety in SAFETY_FACTORS}


def test_bench_ablation_admission_conservatism(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print("Admission conservatism sweep — 20 tight-class requests, one link")
    print(common.format_table(
        ["safety factor", "admitted", "utilization", "D_0 violations"],
        [
            [f"{safety:.1f}", str(r["accepted"]), f"{r['utilization']:.1%}",
             f"{r['violation_rate']:.4%}"]
            for safety, r in results.items()
        ],
    ))
    for safety, r in results.items():
        benchmark.extra_info[f"s={safety}"] = (
            f"admitted={r['accepted']} util={r['utilization']:.2f} "
            f"viol={r['violation_rate']:.4f}"
        )
    admitted = [results[s]["accepted"] for s in SAFETY_FACTORS]
    utilizations = [results[s]["utilization"] for s in SAFETY_FACTORS]
    # Conservatism monotonically costs admissions and utilization...
    assert admitted == sorted(admitted, reverse=True)
    assert utilizations == sorted(utilizations, reverse=True)
    assert utilizations[0] > 1.5 * utilizations[-1]
    # ...while the paper's criterion keeps the commitment reliable at
    # every sweep point (zero advertised-bound violations even at 1.0).
    assert all(r["violation_rate"] == 0.0 for r in results.values())
    # And the commitments were actually exercised.
    assert admitted[0] >= 8
