"""Ablation: the b/r trade-off behind guaranteed service (Section 4).

Two views of the Parekh-Gallager bound:

1. Analytic: sweep the clock rate r for the paper's (A, 50-packet) source
   and print the b/r fluid bound — "the means by which the source can
   improve the worst case bound is to increase its r parameter".
2. Empirical: a greedy source that dumps its full bucket as one burst into
   a WFQ link with adversarial cross traffic; the measured worst delay must
   approach-but-never-exceed b/r ("these bounds are strict").

The topology/discipline wiring runs through the scenario API: each rate
point is a declarative single-link spec with a custom WFQ discipline
carrying the victim/hog reservations, and the adversarial blast traffic is
driven into the built context (the scenario flow model covers on/off
sources, not hand-timed full-bucket dumps).
"""

import functools

from benchmarks.conftest import BENCH_SEED, run_once
from repro.core.bounds import parekh_gallager_fluid_bound
from repro.experiments import common
from repro.net.packet import Packet, ServiceClass
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner
from repro.sched.wfq import WfqScheduler
from repro.traffic.sink import DelayRecordingSink

BUCKET_BITS = common.BUCKET_PACKETS * common.PACKET_BITS  # 50 packets
RATE_MULTIPLES = (1.0, 1.5, 2.0, 4.0)  # x the average rate A
BASE_RATE_BPS = common.AVERAGE_RATE_PPS * common.PACKET_BITS
DURATION = 2.0


def _wfq_with_reservations(clock_rate_bps, sim, port_name, link):
    """Custom discipline: WFQ with the victim's guaranteed clock rate and
    a hog holding the remainder of the link."""
    scheduler = WfqScheduler(link.rate_bps)
    scheduler.install_guaranteed("victim", clock_rate_bps)
    scheduler.install_guaranteed("hog", link.rate_bps - clock_rate_bps)
    return scheduler


def variant_spec(clock_rate_bps, seed):
    return (
        ScenarioBuilder("bucket-depth-ablation")
        .single_link(buffer_packets=400)
        .discipline(
            DisciplineSpec.custom(
                "WFQ+reservations",
                functools.partial(_wfq_with_reservations, clock_rate_bps),
            )
        )
        .duration(DURATION)
        .warmup(0.0)
        .seed(seed)
        .build()
    )


def measured_burst_delay(clock_rate_bps, seed):
    """Worst measured delay (tx units) of a full-bucket burst under WFQ
    with a greedy competitor saturating the rest of the link."""
    context = ScenarioRunner(variant_spec(clock_rate_bps, seed)).build()
    sim = context.sim
    net = context.net
    sink = DelayRecordingSink(sim, net.hosts["dst-host"], "victim", warmup=0.0)
    port = net.port_for_link("A->B")

    def blast(flow_id, count, service_class):
        for seq in range(count):
            port.enqueue(
                Packet(
                    flow_id=flow_id,
                    size_bits=common.PACKET_BITS,
                    created_at=sim.now,
                    source="src-host",
                    destination="dst-host",
                    service_class=service_class,
                    sequence=seq,
                )
            )

    # The hog keeps its queue full; the victim dumps its entire bucket.
    def hog_refill():
        blast("hog", 50, ServiceClass.GUARANTEED)
        sim.schedule(0.025, hog_refill)

    sim.schedule(0.0, hog_refill)
    sim.schedule(
        0.1, lambda: blast("victim", int(common.BUCKET_PACKETS),
                           ServiceClass.GUARANTEED)
    )
    context.run()
    return sink.max_queueing(common.TX_TIME_SECONDS)


def run_sweep(seed: int = BENCH_SEED):
    rows = []
    for multiple in RATE_MULTIPLES:
        rate = multiple * BASE_RATE_BPS
        bound = parekh_gallager_fluid_bound(BUCKET_BITS, rate)
        measured = measured_burst_delay(rate, seed)
        rows.append(
            {
                "multiple": multiple,
                "rate_bps": rate,
                "bound_tx": bound / common.TX_TIME_SECONDS,
                "measured_tx": measured,
            }
        )
    return rows


def test_bench_ablation_bucket_depth(benchmark):
    rows = run_once(benchmark, run_sweep)
    print()
    print("P-G b/r trade-off — full-bucket burst under WFQ (tx times)")
    print(common.format_table(
        ["r / A", "b/r bound", "measured max"],
        [
            [f"{r['multiple']:.1f}", f"{r['bound_tx']:.1f}",
             f"{r['measured_tx']:.1f}"]
            for r in rows
        ],
    ))
    for row in rows:
        benchmark.extra_info[f"r={row['multiple']}A"] = (
            f"bound={row['bound_tx']:.1f} measured={row['measured_tx']:.1f}"
        )
        # The guarantee holds with adversarial cross traffic...
        assert row["measured_tx"] <= row["bound_tx"] * 1.02
        # ...and is reasonably tight for a full-bucket burst (within ~50 %).
        assert row["measured_tx"] > 0.5 * row["bound_tx"]
    # Raising r monotonically improves the worst case.
    measured = [row["measured_tx"] for row in rows]
    assert measured == sorted(measured, reverse=True)
