"""Ablation: drop-preference layering (Section 10, item 1).

"If overload causes some of the packets from a source to miss their
deadline, the source should be able to separate its packets into different
classes, to control which packets get dropped ... creating several
priority classes with the same target D_i."

We deliberately oversubscribe one link (16 flows x 85 pkt/s against
1000 pkt/s) with half the flows tagged important (the upper layer of the
class pair) and half unimportant (the lower layer).  Under the unified
scheduler's push-out rule the overload sheds *only* the unimportant layer:
important traffic rides through unharmed — the video-coding use case
(drop enhancement layers, keep base frames) the extension exists for.

The workload is one declarative scenario (single link, 60-packet buffer,
layered predicted flows); the context is built through the scenario
runner, with a drop listener on the bottleneck port sorting the shed
packets by layer.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner

FLOWS_PER_LAYER = 8  # 16 x 85 = 1360 pkt/s offered against 1000 capacity
DURATION = 30.0
BUFFER_PACKETS = 60
BOTTLENECK = "A->B"


def overload_spec(seed: int = BENCH_SEED):
    builder = (
        ScenarioBuilder("drop-preference-overload")
        .single_link(buffer_packets=BUFFER_PACKETS)
        .discipline(DisciplineSpec.unified(num_predicted_classes=2))
        .duration(DURATION)
        .warmup(0.0)
        .seed(seed)
    )
    for i in range(FLOWS_PER_LAYER):
        for priority, layer in ((0, "important"), (1, "unimportant")):
            builder.add_flow(
                f"{layer}-{i}",
                "src-host",
                "dst-host",
                service_class=ServiceClass.PREDICTED,
                priority_class=priority,
            )
    return builder.build()


def run_overload(seed: int = BENCH_SEED):
    context = ScenarioRunner(overload_spec(seed)).build()
    drops = {"important": 0, "unimportant": 0}

    def on_drop(packet, now):
        layer = "important" if packet.priority_class == 0 else "unimportant"
        drops[layer] += 1

    context.net.port_for_link(BOTTLENECK).on_drop.append(on_drop)
    run = context.run().collect()
    received = {
        layer: sum(
            stats.recorded
            for stats in run.flows
            if stats.name.startswith(layer)
        )
        for layer in ("important", "unimportant")
    }
    return drops, received


def test_bench_ablation_drop_preference(benchmark):
    drops, received = run_once(benchmark, run_overload)
    print()
    print("Drop preference under 136% overload — who gets shed?")
    print(common.format_table(
        ["layer", "delivered", "dropped"],
        [
            [layer, str(received[layer]), str(drops[layer])]
            for layer in ("important", "unimportant")
        ],
    ))
    benchmark.extra_info.update(
        {
            "important_dropped": drops["important"],
            "unimportant_dropped": drops["unimportant"],
        }
    )
    # Overload is real (lots of shedding)...
    assert drops["unimportant"] > 1000
    # ...and essentially all of it lands on the unimportant layer.
    assert drops["important"] <= 0.01 * drops["unimportant"]
    assert received["important"] > received["unimportant"]
