"""Ablation: drop-preference layering (Section 10, item 1).

"If overload causes some of the packets from a source to miss their
deadline, the source should be able to separate its packets into different
classes, to control which packets get dropped ... creating several
priority classes with the same target D_i."

We deliberately oversubscribe one link (16 flows x 85 pkt/s against
1000 pkt/s) with half the flows tagged important (the upper layer of the
class pair) and half unimportant (the lower layer).  Under the unified
scheduler's push-out rule the overload sheds *only* the unimportant layer:
important traffic rides through unharmed — the video-coding use case
(drop enhancement layers, keep base frames) the extension exists for.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink

FLOWS_PER_LAYER = 8  # 16 x 85 = 1360 pkt/s offered against 1000 capacity
DURATION = 30.0
BUFFER_PACKETS = 60


def run_overload(seed: int = BENCH_SEED):
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    net = single_link_topology(
        sim,
        lambda n, l: UnifiedScheduler(
            UnifiedConfig(capacity_bps=l.rate_bps, num_predicted_classes=2)
        ),
        rate_bps=common.LINK_RATE_BPS,
        buffer_packets=BUFFER_PACKETS,
    )
    drops = {"important": 0, "unimportant": 0}
    port = net.port_for_link("A->B")
    port.on_drop.append(
        lambda packet, now: drops.__setitem__(
            "important" if packet.priority_class == 0 else "unimportant",
            drops["important" if packet.priority_class == 0 else "unimportant"]
            + 1,
        )
    )
    sinks = {}
    for i in range(FLOWS_PER_LAYER):
        for priority, layer in ((0, "important"), (1, "unimportant")):
            flow_id = f"{layer}-{i}"
            OnOffMarkovSource.paper_source(
                sim,
                net.hosts["src-host"],
                flow_id,
                "dst-host",
                streams.stream(flow_id),
                service_class=ServiceClass.PREDICTED,
                priority_class=priority,
            )
            sinks[flow_id] = DelayRecordingSink(
                sim, net.hosts["dst-host"], flow_id, warmup=0.0
            )
    sim.run(until=DURATION)
    received = {
        layer: sum(
            sink.recorded
            for flow_id, sink in sinks.items()
            if flow_id.startswith(layer)
        )
        for layer in ("important", "unimportant")
    }
    return drops, received


def test_bench_ablation_drop_preference(benchmark):
    drops, received = run_once(benchmark, run_overload)
    print()
    print("Drop preference under 136% overload — who gets shed?")
    print(common.format_table(
        ["layer", "delivered", "dropped"],
        [
            [layer, str(received[layer]), str(drops[layer])]
            for layer in ("important", "unimportant")
        ],
    ))
    benchmark.extra_info.update(
        {
            "important_dropped": drops["important"],
            "unimportant_dropped": drops["unimportant"],
        }
    )
    # Overload is real (lots of shedding)...
    assert drops["unimportant"] > 1000
    # ...and essentially all of it lands on the unimportant layer.
    assert drops["important"] <= 0.01 * drops["unimportant"]
    assert received["important"] > received["unimportant"]
