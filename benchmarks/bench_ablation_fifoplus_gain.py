"""Ablation: FIFO+ sensitivity to the class-average EWMA gain (Section 6).

FIFO+ orders packets by expected arrival, computed against each switch's
*average* class delay.  The gain of that average's EWMA trades adaptation
speed against estimate noise.  This bench sweeps the gain on the Table-2
workload and reports the 4-hop tail delay: the mechanism should help (vs
plain FIFO) across a wide band of gains — i.e. the paper's scheme is not a
knife-edge tuning artifact.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.topology import paper_figure1_topology
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import FifoPlusScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

GAINS = (0.001, 0.01, 0.1, 0.5)
DURATION = 45.0
WARMUP = 5.0
FOUR_HOP_FLOW = "i1"


def run_with_gain(gain, seed):
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    if gain is None:
        factory = lambda n, l: FifoScheduler()
    else:
        factory = lambda n, l: FifoPlusScheduler(ewma_gain=gain)
    net = paper_figure1_topology(sim, factory, rate_bps=common.LINK_RATE_BPS)
    placements = common.figure1_flow_placements()
    sinks = common.attach_paper_flows(sim, net, streams, placements, WARMUP)
    sim.run(until=DURATION)
    return sinks[FOUR_HOP_FLOW].percentile_queueing(99.9, common.TX_TIME_SECONDS)


def run_sweep(seed: int = BENCH_SEED):
    results = {"FIFO": run_with_gain(None, seed)}
    for gain in GAINS:
        results[f"gain={gain}"] = run_with_gain(gain, seed)
    return results


def test_bench_ablation_fifoplus_gain(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print("FIFO+ EWMA-gain sweep — 4-hop flow 99.9 %ile (tx times)")
    print(common.format_table(
        ["variant", "4-hop p999"],
        [[name, f"{value:.2f}"] for name, value in results.items()],
    ))
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in results.items()}
    )
    fifo = results["FIFO"]
    # Every gain in the sweep should beat (or at worst match) plain FIFO on
    # the long path — the mechanism is robust, not a tuned constant.
    for gain in GAINS:
        assert results[f"gain={gain}"] < 1.05 * fifo, gain
