"""Ablation: FIFO+ sensitivity to the class-average EWMA gain (Section 6).

FIFO+ orders packets by expected arrival, computed against each switch's
*average* class delay.  The gain of that average's EWMA trades adaptation
speed against estimate noise.  This bench sweeps the gain on the Table-2
workload and reports the 4-hop tail delay: the mechanism should help (vs
plain FIFO) across a wide band of gains — i.e. the paper's scheme is not a
knife-edge tuning artifact.

One declarative scenario, one discipline per sweep point: the scenario
runner's paired-arrival guarantee feeds FIFO and every FIFO+ gain the
identical clumped arrival process, so the sweep isolates the gain alone.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner

GAINS = (0.001, 0.01, 0.1, 0.5)
DURATION = 45.0
WARMUP = 5.0
FOUR_HOP_FLOW = "i1"


def sweep_spec(seed: int = BENCH_SEED):
    return (
        ScenarioBuilder("fifoplus-gain-sweep")
        .paper_chain()
        .figure1_flows()
        .disciplines(
            DisciplineSpec.fifo(),
            *(
                DisciplineSpec.fifoplus(name=f"gain={gain}", ewma_gain=gain)
                for gain in GAINS
            ),
        )
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )


def run_sweep(seed: int = BENCH_SEED):
    result = ScenarioRunner(sweep_spec(seed)).run()
    unit = common.TX_TIME_SECONDS
    return {
        run.discipline: run.flow(FOUR_HOP_FLOW).percentile_in(99.9, unit)
        for run in result.runs
    }


def test_bench_ablation_fifoplus_gain(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print("FIFO+ EWMA-gain sweep — 4-hop flow 99.9 %ile (tx times)")
    print(common.format_table(
        ["variant", "4-hop p999"],
        [[name, f"{value:.2f}"] for name, value in results.items()],
    ))
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in results.items()}
    )
    fifo = results["FIFO"]
    # Every gain in the sweep should beat (or at worst match) plain FIFO on
    # the long path — the mechanism is robust, not a tuned constant.
    for gain in GAINS:
        assert results[f"gain={gain}"] < 1.05 * fifo, gain
