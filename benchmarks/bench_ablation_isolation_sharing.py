"""Ablation: isolation vs sharing (Section 5's gedanken experiment).

Nine smooth CBR flows plus one bursty on/off flow share a link.  Under WFQ
(isolation) the burster's own tail delay explodes while its peers stay
almost untouched; under FIFO (sharing) everyone absorbs a little of the
burst and the burster's tail collapses.  This is the paper's argument for
why predicted service wants FIFO inside an isolating envelope.

The workload is one declarative scenario (topology, both disciplines, and
the bursty on/off flow live in the spec); the CBR peers are deterministic
and phase-staggered, which no random-stream flow spec expresses, so they
are attached through the live :class:`~repro.scenario.ScenarioContext` —
the same mid-run-orchestration pattern as ``admission_conservatism``.
Both disciplines' contexts are built from the one spec, so the burster's
arrival process is paired by construction.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.scenario import (
    DisciplineSpec,
    FlowSpec,
    ScenarioBuilder,
    ScenarioRunner,
)
from repro.traffic.cbr import CbrSource
from repro.traffic.sink import DelayRecordingSink

NUM_SMOOTH = 9
SMOOTH_RATE_PPS = 80.0
BURSTY_RATE_PPS = 85.0
DURATION = 60.0
WARMUP = 5.0


def isolation_spec(seed: int):
    """Bottleneck link, WFQ-vs-FIFO, and the clumpy burster of Section 5:
    in-burst generation at (nearly) link speed, long bursts, same long-run
    average as the peers, no source-side bucket."""
    return (
        ScenarioBuilder("isolation-sharing")
        .single_link()
        .flow(
            FlowSpec(
                name="bursty",
                source_host="src-host",
                dest_host="dst-host",
                average_rate_pps=BURSTY_RATE_PPS,
                mean_burst_packets=25.0,
                peak_rate_pps=900.0,
                bucket_packets=None,
            )
        )
        .disciplines(
            # The paper's "equal clock rates" configuration across the
            # ten flows (nine peers + burster).
            DisciplineSpec.wfq(equal_share_flows=NUM_SMOOTH + 1),
            DisciplineSpec.fifo(),
        )
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )


def _attach_smooth_peers(context):
    """The nine phase-staggered CBR peers, with recording sinks."""
    for i in range(NUM_SMOOTH):
        flow_id = f"smooth-{i}"
        CbrSource(
            context.sim,
            context.net.hosts["src-host"],
            flow_id,
            "dst-host",
            rate_pps=SMOOTH_RATE_PPS,
            start_offset=i / (SMOOTH_RATE_PPS * NUM_SMOOTH),
        )
        context.sinks[flow_id] = DelayRecordingSink(
            context.sim, context.net.hosts["dst-host"], flow_id, warmup=WARMUP
        )


def run_discipline(discipline: str, seed: int):
    """Returns (bursty_p999, mean peer p999) in tx-time units."""
    context = ScenarioRunner(isolation_spec(seed)).build(discipline)
    _attach_smooth_peers(context)
    context.run()
    unit = common.TX_TIME_SECONDS
    result = context.collect()
    bursty = result.flow("bursty").percentile_in(99.9, unit)
    peers = [
        result.flow(f"smooth-{i}").percentile_in(99.9, unit)
        for i in range(NUM_SMOOTH)
    ]
    return bursty, sum(peers) / len(peers)


def run_ablation(seed: int = BENCH_SEED):
    return {name: run_discipline(name, seed) for name in ("WFQ", "FIFO")}


def test_bench_ablation_isolation_sharing(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print("Isolation vs sharing — 99.9 %ile queueing delay (tx times)")
    print(common.format_table(
        ["discipline", "bursty flow", "peer average"],
        [
            [name, f"{bursty:.2f}", f"{peers:.2f}"]
            for name, (bursty, peers) in results.items()
        ],
    ))
    wfq_bursty, wfq_peers = results["WFQ"]
    fifo_bursty, fifo_peers = results["FIFO"]
    benchmark.extra_info.update(
        {
            "wfq_bursty_p999": round(wfq_bursty, 2),
            "wfq_peer_p999": round(wfq_peers, 2),
            "fifo_bursty_p999": round(fifo_bursty, 2),
            "fifo_peer_p999": round(fifo_peers, 2),
        }
    )
    # Isolation: the burster pays for its own bursts under WFQ...
    assert wfq_bursty > 2.0 * wfq_peers
    # ...sharing: FIFO redistributes that jitter, shrinking the burster's
    # tail substantially.
    assert fifo_bursty < 0.7 * wfq_bursty
    # The price of sharing: peers carry more jitter under FIFO than WFQ.
    assert fifo_peers > wfq_peers
