"""Ablation: isolation vs sharing (Section 5's gedanken experiment).

Nine smooth CBR flows plus one bursty on/off flow share a link.  Under WFQ
(isolation) the burster's own tail delay explodes while its peers stay
almost untouched; under FIFO (sharing) everyone absorbs a little of the
burst and the burster's tail collapses.  This is the paper's argument for
why predicted service wants FIFO inside an isolating envelope.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sched.wfq import WfqScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.cbr import CbrSource
from repro.traffic.onoff import OnOffMarkovSource, OnOffParams
from repro.traffic.sink import DelayRecordingSink

NUM_SMOOTH = 9
SMOOTH_RATE_PPS = 80.0
BURSTY_RATE_PPS = 85.0
# The gedanken experiment's burst arrives as a clump: in-burst generation
# at (nearly) link speed, long bursts, same long-run average as the peers.
BURSTY_PARAMS = OnOffParams(
    average_rate_pps=BURSTY_RATE_PPS,
    mean_burst_packets=25.0,
    peak_rate_pps=900.0,
)
DURATION = 60.0
WARMUP = 5.0


def run_discipline(discipline: str, seed: int):
    """Returns (bursty_p999, mean peer p999) in tx-time units."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    if discipline == "WFQ":
        factory = lambda n, link: WfqScheduler(
            link.rate_bps, auto_register_rate=link.rate_bps / (NUM_SMOOTH + 1)
        )
    else:
        factory = lambda n, link: FifoScheduler()
    net = single_link_topology(sim, factory, rate_bps=common.LINK_RATE_BPS)
    sinks = {}
    for i in range(NUM_SMOOTH):
        flow_id = f"smooth-{i}"
        CbrSource(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            rate_pps=SMOOTH_RATE_PPS,
            start_offset=i / (SMOOTH_RATE_PPS * NUM_SMOOTH),
        )
        sinks[flow_id] = DelayRecordingSink(
            sim, net.hosts["dst-host"], flow_id, warmup=WARMUP
        )
    OnOffMarkovSource(
        sim,
        net.hosts["src-host"],
        "bursty",
        "dst-host",
        BURSTY_PARAMS,
        streams.stream("bursty"),
    )
    sinks["bursty"] = DelayRecordingSink(
        sim, net.hosts["dst-host"], "bursty", warmup=WARMUP
    )
    sim.run(until=DURATION)
    unit = common.TX_TIME_SECONDS
    bursty = sinks["bursty"].percentile_queueing(99.9, unit)
    peers = [
        sinks[f"smooth-{i}"].percentile_queueing(99.9, unit)
        for i in range(NUM_SMOOTH)
    ]
    return bursty, sum(peers) / len(peers)


def run_ablation(seed: int = BENCH_SEED):
    return {name: run_discipline(name, seed) for name in ("WFQ", "FIFO")}


def test_bench_ablation_isolation_sharing(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print("Isolation vs sharing — 99.9 %ile queueing delay (tx times)")
    print(common.format_table(
        ["discipline", "bursty flow", "peer average"],
        [
            [name, f"{bursty:.2f}", f"{peers:.2f}"]
            for name, (bursty, peers) in results.items()
        ],
    ))
    wfq_bursty, wfq_peers = results["WFQ"]
    fifo_bursty, fifo_peers = results["FIFO"]
    benchmark.extra_info.update(
        {
            "wfq_bursty_p999": round(wfq_bursty, 2),
            "wfq_peer_p999": round(wfq_peers, 2),
            "fifo_bursty_p999": round(fifo_bursty, 2),
            "fifo_peer_p999": round(fifo_peers, 2),
        }
    )
    # Isolation: the burster pays for its own bursts under WFQ...
    assert wfq_bursty > 2.0 * wfq_peers
    # ...sharing: FIFO redistributes that jitter, shrinking the burster's
    # tail substantially.
    assert fifo_bursty < 0.7 * wfq_bursty
    # The price of sharing: peers carry more jitter under FIFO than WFQ.
    assert fifo_peers > wfq_peers
