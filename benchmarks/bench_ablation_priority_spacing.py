"""Ablation: jitter shifting between priority classes (Section 7).

The paper: a higher predicted class "steals bandwidth from the lower
classes" during its bursts, so its jitter exports downward, and if the
target bounds D_i are widely spaced the classes "should usually operate
more or less independently".  This bench splits the Table-1 workload
between two strict priority classes, sweeping how many of the 10 flows
ride the high class, and reports both classes' tails.

Each split is one declarative scenario (class membership is per-flow
``priority_class`` in the spec); the sweep rides the
:class:`~repro.scenario.SweepExecutor` engine via :func:`sweep` with
whole-spec overrides, one run per split.  Arrivals are identical to the
pre-migration hand-wired bench: streams are keyed by flow name, and the
flow names are unchanged.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.scenario import DisciplineSpec, ScenarioBuilder, sweep

NUM_FLOWS = 10
HIGH_COUNTS = (2, 5, 8)
DURATION = 45.0
WARMUP = 5.0


def spacing_spec(num_high: int, seed: int):
    """Table-1's population, split across two strict priority classes."""
    builder = (
        ScenarioBuilder(f"priority-spacing-{num_high}")
        .single_link()
        .discipline(DisciplineSpec.priority(num_classes=2))
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
    )
    for i in range(NUM_FLOWS):
        builder.add_flow(
            f"flow-{i}",
            "src-host",
            "dst-host",
            average_rate_pps=common.AVERAGE_RATE_PPS,
            service_class=ServiceClass.PREDICTED,
            priority_class=0 if i < num_high else 1,
        )
    return builder.build()


def run_sweep(seed: int = BENCH_SEED):
    """(high-class mean p999, low-class mean p999) per split, tx units."""
    results = sweep(
        spacing_spec(HIGH_COUNTS[0], seed),
        over=[spacing_spec(count, seed) for count in HIGH_COUNTS],
    )
    unit = common.TX_TIME_SECONDS
    out = {}
    for count, result in zip(HIGH_COUNTS, results):
        run = result.runs[0]
        high = [
            run.flow(f"flow-{i}").percentile_in(99.9, unit)
            for i in range(count)
        ]
        low = [
            run.flow(f"flow-{i}").percentile_in(99.9, unit)
            for i in range(count, NUM_FLOWS)
        ]
        out[count] = (sum(high) / len(high), sum(low) / len(low))
    return out


def test_bench_ablation_priority_spacing(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print("Priority jitter shifting — per-class average 99.9 %ile (tx times)")
    print(common.format_table(
        ["high flows", "high-class p999", "low-class p999"],
        [
            [str(count), f"{high:.2f}", f"{low:.2f}"]
            for count, (high, low) in results.items()
        ],
    ))
    for count, (high, low) in results.items():
        benchmark.extra_info[f"high={count}"] = f"{high:.2f}/{low:.2f}"
        # Jitter shifts strictly downward: the high class always sees a
        # smaller tail than the low class it exports to.
        assert high < low, count
    # The more load rides the high class, the worse the low class gets
    # relative to the high class's own growth.
    __, low_small = results[HIGH_COUNTS[0]]
    __, low_big = results[HIGH_COUNTS[-1]]
    assert low_big > low_small
