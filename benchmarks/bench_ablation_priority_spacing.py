"""Ablation: jitter shifting between priority classes (Section 7).

The paper: a higher predicted class "steals bandwidth from the lower
classes" during its bursts, so its jitter exports downward, and if the
target bounds D_i are widely spaced the classes "should usually operate
more or less independently".  This bench splits the Table-1 workload
between two strict priority classes, sweeping how many of the 10 flows
ride the high class, and reports both classes' tails.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sched.priority import PriorityScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink

NUM_FLOWS = 10
HIGH_COUNTS = (2, 5, 8)
DURATION = 45.0
WARMUP = 5.0


def run_split(num_high, seed):
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    net = single_link_topology(
        sim,
        lambda n, l: PriorityScheduler(
            num_classes=2, sub_scheduler_factory=FifoScheduler
        ),
        rate_bps=common.LINK_RATE_BPS,
    )
    sinks = {}
    for i in range(NUM_FLOWS):
        flow_id = f"flow-{i}"
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(f"source:{flow_id}"),
            average_rate_pps=common.AVERAGE_RATE_PPS,
            service_class=ServiceClass.PREDICTED,
            priority_class=0 if i < num_high else 1,
        )
        sinks[flow_id] = DelayRecordingSink(
            sim, net.hosts["dst-host"], flow_id, warmup=WARMUP
        )
    sim.run(until=DURATION)
    unit = common.TX_TIME_SECONDS
    high = [
        sinks[f"flow-{i}"].percentile_queueing(99.9, unit)
        for i in range(num_high)
    ]
    low = [
        sinks[f"flow-{i}"].percentile_queueing(99.9, unit)
        for i in range(num_high, NUM_FLOWS)
    ]
    return sum(high) / len(high), sum(low) / len(low)


def run_sweep(seed: int = BENCH_SEED):
    return {count: run_split(count, seed) for count in HIGH_COUNTS}


def test_bench_ablation_priority_spacing(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print("Priority jitter shifting — per-class average 99.9 %ile (tx times)")
    print(common.format_table(
        ["high flows", "high-class p999", "low-class p999"],
        [
            [str(count), f"{high:.2f}", f"{low:.2f}"]
            for count, (high, low) in results.items()
        ],
    ))
    for count, (high, low) in results.items():
        benchmark.extra_info[f"high={count}"] = f"{high:.2f}/{low:.2f}"
        # Jitter shifts strictly downward: the high class always sees a
        # smaller tail than the low class it exports to.
        assert high < low, count
    # The more load rides the high class, the worse the low class gets
    # relative to the high class's own growth.
    __, low_small = results[HIGH_COUNTS[0]]
    __, low_big = results[HIGH_COUNTS[-1]]
    assert low_big > low_small
