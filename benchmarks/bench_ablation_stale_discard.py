"""Ablation: in-network stale-packet discard (Section 10, item 2).

"Packets that are sufficiently late should be discarded internally, rather
than being delivered, since in delivering them the network may use
bandwidth that could have been better used to reduce the delay of
subsequent packets.  The offset carried in the packet in the FIFO+ scheme
provides precisely the needed information."

We overload the Figure-1 chain with clumpy bursts (peak near link speed)
and run FIFO+ with the stale-offset threshold off and on.  With the
discard enabled, packets whose accumulated offset marks them hopeless die
inside the network; the *delivered* packets' tail delay drops — the freed
bandwidth went to packets that could still make a play-back point.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.topology import paper_figure1_topology
from repro.sched.fifoplus import FifoPlusScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource, OnOffParams
from repro.traffic.sink import DelayRecordingSink

DURATION = 45.0
WARMUP = 5.0
THRESHOLD_SECONDS = 0.04
FOUR_HOP_FLOW = "i1"
# Same long-run load as the paper workload, but bursts arrive as clumps —
# the regime where some packets become hopelessly late.
BURSTY = OnOffParams(
    average_rate_pps=common.AVERAGE_RATE_PPS,
    mean_burst_packets=30.0,
    peak_rate_pps=850.0,
)


def run_variant(threshold, seed):
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    schedulers = []

    def factory(name, link):
        scheduler = FifoPlusScheduler(stale_offset_threshold=threshold)
        schedulers.append(scheduler)
        return scheduler

    net = paper_figure1_topology(sim, factory, rate_bps=common.LINK_RATE_BPS)
    sinks = {}
    for placement in common.figure1_flow_placements():
        OnOffMarkovSource(
            sim,
            net.hosts[placement.source_host],
            placement.name,
            placement.dest_host,
            BURSTY,
            streams.stream(f"source:{placement.name}"),
        )
        sinks[placement.name] = DelayRecordingSink(
            sim, net.hosts[placement.dest_host], placement.name, warmup=WARMUP
        )
    sim.run(until=DURATION)
    unit = common.TX_TIME_SECONDS
    sink = sinks[FOUR_HOP_FLOW]
    return {
        "p999": sink.percentile_queueing(99.9, unit),
        "delivered": sink.recorded,
        "stale_discards": sum(s.stale_discards for s in schedulers),
    }


def run_ablation(seed: int = BENCH_SEED):
    return {
        "no discard": run_variant(None, seed),
        f"discard @ {THRESHOLD_SECONDS * 1e3:.0f}ms": run_variant(
            THRESHOLD_SECONDS, seed
        ),
    }


def test_bench_ablation_stale_discard(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print("Stale-packet discard — 4-hop flow under clumpy overload")
    print(common.format_table(
        ["variant", "delivered p999 (tx)", "delivered", "in-net discards"],
        [
            [name, f"{r['p999']:.1f}", str(r["delivered"]),
             str(r["stale_discards"])]
            for name, r in results.items()
        ],
    ))
    off = results["no discard"]
    on = results[f"discard @ {THRESHOLD_SECONDS * 1e3:.0f}ms"]
    benchmark.extra_info.update(
        {
            "p999_off": round(off["p999"], 1),
            "p999_on": round(on["p999"], 1),
            "stale_discards": on["stale_discards"],
        }
    )
    # The discard actually fires under this load...
    assert off["stale_discards"] == 0
    assert on["stale_discards"] > 100
    # ...and the packets still delivered see a (much) smaller tail.
    assert on["p999"] < 0.9 * off["p999"]
