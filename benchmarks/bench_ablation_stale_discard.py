"""Ablation: in-network stale-packet discard (Section 10, item 2).

"Packets that are sufficiently late should be discarded internally, rather
than being delivered, since in delivering them the network may use
bandwidth that could have been better used to reduce the delay of
subsequent packets.  The offset carried in the packet in the FIFO+ scheme
provides precisely the needed information."

We overload the Figure-1 chain with clumpy bursts (peak near link speed)
and run FIFO+ with the stale-offset threshold off and on.  With the
discard enabled, packets whose accumulated offset marks them hopeless die
inside the network; the *delivered* packets' tail delay drops — the freed
bandwidth went to packets that could still make a play-back point.

One declarative scenario, two disciplines (threshold off/on); the contexts
are built through the scenario runner so both variants see the identical
clumpy arrival process, and the in-network discard counters are read off
the live schedulers.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner

DURATION = 45.0
WARMUP = 5.0
THRESHOLD_SECONDS = 0.04
FOUR_HOP_FLOW = "i1"

VARIANT_OFF = "no discard"
VARIANT_ON = f"discard @ {THRESHOLD_SECONDS * 1e3:.0f}ms"


def ablation_spec(seed: int = BENCH_SEED):
    return (
        ScenarioBuilder("stale-discard-ablation")
        .paper_chain()
        # Same long-run load as the paper workload, but bursts arrive as
        # clumps — the regime where some packets become hopelessly late.
        # No source bucket: the originals injected the raw on/off process.
        .figure1_flows(
            mean_burst_packets=30.0,
            peak_rate_pps=850.0,
            bucket_packets=None,
        )
        .disciplines(
            DisciplineSpec.fifoplus(name=VARIANT_OFF),
            DisciplineSpec.fifoplus(
                name=VARIANT_ON, stale_offset_threshold=THRESHOLD_SECONDS
            ),
        )
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )


def run_ablation(seed: int = BENCH_SEED):
    runner = ScenarioRunner(ablation_spec(seed))
    unit = common.TX_TIME_SECONDS
    results = {}
    for discipline in runner.spec.disciplines:
        context = runner.build(discipline).run()
        sink = context.sinks[FOUR_HOP_FLOW]
        results[discipline.name] = {
            "p999": sink.percentile_queueing(99.9, unit),
            "delivered": sink.recorded,
            "stale_discards": sum(
                port.scheduler.stale_discards
                for port in context.net.ports.values()
            ),
        }
    return results


def test_bench_ablation_stale_discard(benchmark):
    results = run_once(benchmark, run_ablation)
    print()
    print("Stale-packet discard — 4-hop flow under clumpy overload")
    print(common.format_table(
        ["variant", "delivered p999 (tx)", "delivered", "in-net discards"],
        [
            [name, f"{r['p999']:.1f}", str(r["delivered"]),
             str(r["stale_discards"])]
            for name, r in results.items()
        ],
    ))
    off = results[VARIANT_OFF]
    on = results[VARIANT_ON]
    benchmark.extra_info.update(
        {
            "p999_off": round(off["p999"], 1),
            "p999_on": round(on["p999"], 1),
            "stale_discards": on["stale_discards"],
        }
    )
    # The discard actually fires under this load...
    assert off["stale_discards"] == 0
    assert on["stale_discards"] > 100
    # ...and the packets still delivered see a (much) smaller tail.
    assert on["p999"] < 0.9 * off["p999"]
