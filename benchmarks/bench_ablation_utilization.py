"""Ablation: guaranteed-only vs mixed-service link utilization (Sections
4 and 12).

The paper's economic argument: if every real-time client demanded
guaranteed service at a clock rate giving a reasonable delay bound, the
reservable real-time load would sit near ~50 % of the link; offering
predicted service lets the same link carry the full 83.5 % real-time load
of the experiments (and >99 % total with datagram filler).

Guaranteed-only: each paper source needs r = 2A (peak) for a tight bound,
so a 1 Mbit/s link under the 90 % quota admits floor(900k/170k) = 5 flows
-> ~42.5 % of the link carrying real-time bits.  Predicted: all 10 flows
fit, ~85 %.  Both arms are declarative scenarios — the guaranteed arm's
clock-rate reservations ride each flow's :class:`GuaranteedRequest`.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.scenario import (
    DisciplineSpec,
    GuaranteedRequest,
    ScenarioBuilder,
    ScenarioRunner,
)

PEAK_CLOCK_BPS = 2 * common.AVERAGE_RATE_PPS * common.PACKET_BITS
QUOTA = 0.9
DURATION = 45.0
WARMUP = 5.0


def scenario_for(scenario: str, seed: int):
    builder = (
        ScenarioBuilder(f"ablation-utilization-{scenario}")
        .single_link()
        .discipline(DisciplineSpec.unified(num_predicted_classes=1))
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
    )
    if scenario == "guaranteed-only":
        # Admit guaranteed flows at their peak clock rate until the 90 %
        # quota refuses the next one — the paper's "clock rate equal to
        # peak generation rate" sizing.
        num_flows = int(QUOTA * common.LINK_RATE_BPS // PEAK_CLOCK_BPS)
        builder.paper_flows(
            num_flows,
            request=GuaranteedRequest(clock_rate_bps=PEAK_CLOCK_BPS),
        )
    else:
        num_flows = 10  # the Table-1 population, all predicted.
        builder.paper_flows(num_flows, service_class=ServiceClass.PREDICTED)
    return builder.build(), num_flows


def run_scenario(scenario, seed):
    """Returns (num_flows, realtime utilization, sample p999 in tx units)."""
    spec, num_flows = scenario_for(scenario, seed)
    run = ScenarioRunner(spec).run_discipline()
    utilization = run.utilization("A->B")
    p999 = run.flow("flow-0").percentile_in(99.9, common.TX_TIME_SECONDS)
    return num_flows, utilization, p999


def run_comparison(seed: int = BENCH_SEED):
    return {
        name: run_scenario(name, seed)
        for name in ("guaranteed-only", "predicted")
    }


def test_bench_ablation_utilization(benchmark):
    results = run_once(benchmark, run_comparison)
    print()
    print("Guaranteed-only vs predicted service — link carrying capacity")
    print(common.format_table(
        ["scenario", "flows", "utilization", "sample p999"],
        [
            [name, str(flows), f"{util:.1%}", f"{p999:.2f}"]
            for name, (flows, util, p999) in results.items()
        ],
    ))
    g_flows, g_util, __ = results["guaranteed-only"]
    p_flows, p_util, __ = results["predicted"]
    benchmark.extra_info.update(
        {
            "guaranteed_flows": g_flows,
            "guaranteed_utilization": round(g_util, 3),
            "predicted_flows": p_flows,
            "predicted_utilization": round(p_util, 3),
        }
    )
    # The paper's ~50 %-vs-full claim: guaranteed-at-peak strands roughly
    # half the link; predicted service doubles the carried real-time load.
    assert g_flows == 5
    assert g_util < 0.55
    assert p_util > 1.5 * g_util
