"""Bench: the delay CDFs behind Table 1 (Section 5, full-curve view).

The paper reports two summary points per discipline; this bench regenerates
the whole tail profile plus Jain's fairness index over per-flow 99.9 %ile
delays — quantifying "the FIFO algorithm splits this delay evenly, whereas
the WFQ algorithm assigns the delay to the flows that caused the momentary
queueing".
"""

from benchmarks.conftest import BENCH_DURATION, BENCH_SEED, run_once
from repro.experiments import distributions


def test_bench_distributions(benchmark):
    result = run_once(
        benchmark, distributions.run, duration=BENCH_DURATION, seed=BENCH_SEED
    )
    print()
    print(result.render())
    wfq = result.row("WFQ")
    fifo = result.row("FIFO")
    for row in result.rows:
        benchmark.extra_info[f"{row.scheduling}_p999"] = round(
            row.percentiles[99.9], 2
        )
        benchmark.extra_info[f"{row.scheduling}_fairness"] = round(
            row.tail_fairness, 3
        )
    # The distribution bodies agree; the tails diverge in FIFO's favour.
    assert abs(wfq.percentiles[50.0] - fifo.percentiles[50.0]) < 1.0
    assert fifo.percentiles[99.9] < 0.85 * wfq.percentiles[99.9]
    # FIFO shares jitter at least as evenly as WFQ across the class.
    assert fifo.tail_fairness >= wfq.tail_fairness
