"""Bench: predicted service in a dynamic environment (Sections 3 and 7).

The validation the paper names as still outstanding: adaptive clients over
predicted service while the load changes under them.  Three equal phases —
base load, base + admitted wave, wave departed — with an adaptive
play-back client sampled throughout.

Shape: losses concentrate in the phase where delays rose (the client was
gambling on the recent past and briefly lost); the play-back point tracks
the delivered service upward AND back downward, recovering the latency a
rigid client would keep paying.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common, dynamics

PHASE_SECONDS = 45.0


def test_bench_dynamic_adaptation(benchmark):
    result = run_once(
        benchmark, dynamics.run, phase_seconds=PHASE_SECONDS, seed=BENCH_SEED
    )
    print()
    print(result.render())
    offsets = {
        "A": result.offset_at(0.9 * PHASE_SECONDS),
        "B": result.offset_at(1.9 * PHASE_SECONDS),
        "C": result.offset_at(2.9 * PHASE_SECONDS),
    }
    print(common.format_table(
        ["settled in phase", "play-back offset"],
        [[name, f"{offset * 1e3:.1f} ms"] for name, offset in offsets.items()],
    ))
    for phase in result.phases:
        benchmark.extra_info[f"loss_{phase.name}"] = f"{phase.loss_rate:.3%}"
    for name, offset in offsets.items():
        benchmark.extra_info[f"offset_{name}_ms"] = round(offset * 1e3, 1)
    # The Section 3 narrative, quantified.
    assert result.phase("B").loss_rate > result.phase("A").loss_rate
    assert result.phase("B").loss_rate > result.phase("C").loss_rate
    assert offsets["B"] > 1.5 * offsets["A"]
    assert offsets["C"] < 0.5 * offsets["B"]
