"""Bench: predicted service in a dynamic environment (Sections 3 and 7).

The validation the paper names as still outstanding: adaptive clients over
predicted service while the load changes under them.  Three equal phases —
base load, base + admitted wave, wave departed — with an adaptive
play-back client sampled throughout.

The workload is the scenario-API dynamics experiment (its static spec is
declarative; the phase waves ride the live ``ScenarioContext``).  The
bench replicates it across seeds through the
:class:`~repro.scenario.SweepExecutor`'s custom-task path — orchestrated
scenarios are one ``task_fn`` away from riding sweeps — and asserts the
Section 3 narrative on every seed, not just a lucky one.

Shape: losses concentrate in the phase where delays rose (the client was
gambling on the recent past and briefly lost); the play-back point tracks
the delivered service upward AND back downward, recovering the latency a
rigid client would keep paying.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common, dynamics
from repro.scenario import SweepExecutor

PHASE_SECONDS = 45.0
SEEDS = (BENCH_SEED, BENCH_SEED + 1)


def _run_dynamics(spec):
    """Executor task: the full three-phase orchestrated experiment.

    Module-level so it pickles into workers; phase length and seed travel
    inside the spec (duration is three phases).
    """
    return dynamics.run(phase_seconds=spec.duration / 3.0, seed=spec.seed)


def run_replicated(seeds=SEEDS):
    """One DynamicsResult per seed, via the sweep executor."""
    base = dynamics.scenario_spec(phase_seconds=PHASE_SECONDS, seed=seeds[0])
    with SweepExecutor() as executor:
        outcome = executor.run_sweep(
            base, seeds=list(seeds), task_fn=_run_dynamics
        )
    return {run.spec.seed: run.payloads[0] for run in outcome.runs}


def test_bench_dynamic_adaptation(benchmark):
    results = run_once(benchmark, run_replicated)
    sample = results[BENCH_SEED]
    print()
    print(sample.render())
    offsets = {
        "A": sample.offset_at(0.9 * PHASE_SECONDS),
        "B": sample.offset_at(1.9 * PHASE_SECONDS),
        "C": sample.offset_at(2.9 * PHASE_SECONDS),
    }
    print(common.format_table(
        ["settled in phase", "play-back offset"],
        [[name, f"{offset * 1e3:.1f} ms"] for name, offset in offsets.items()],
    ))
    for phase in sample.phases:
        benchmark.extra_info[f"loss_{phase.name}"] = f"{phase.loss_rate:.3%}"
    for name, offset in offsets.items():
        benchmark.extra_info[f"offset_{name}_ms"] = round(offset * 1e3, 1)
    # The Section 3 narrative, quantified — and robust across seeds.
    for seed, result in results.items():
        assert result.phase("B").loss_rate > result.phase("A").loss_rate, seed
        assert result.phase("B").loss_rate > result.phase("C").loss_rate, seed
        up = result.offset_at(1.9 * PHASE_SECONDS)
        down = result.offset_at(2.9 * PHASE_SECONDS)
        settled = result.offset_at(0.9 * PHASE_SECONDS)
        assert up > 1.5 * settled, seed
        assert down < 0.5 * up, seed
