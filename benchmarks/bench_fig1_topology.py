"""Bench: regenerate Figure 1 (the experiment topology + workload census).

Figure 1 is structural, not statistical: five switches in a chain, four
1 Mbit/s links, 22 flows laid out so every inter-switch link carries 10.
"""

from benchmarks.conftest import run_once
from repro.experiments import topology


def test_bench_fig1_topology(benchmark):
    report = run_once(benchmark, topology.build_report)
    print()
    print(report.render())
    benchmark.extra_info.update(
        {
            "links": len(report.links),
            "flows_per_link": sorted(set(report.flows_per_link.values())),
            "path_census": report.flows_per_path_length,
        }
    )
    assert set(report.flows_per_link.values()) == {10}
    assert report.flows_per_path_length == {1: 12, 2: 4, 3: 4, 4: 2}
