"""Bench: CSZ vs the Jacobson-Floyd scheme (Section 11).

The paper's two concrete contrasts with the only other predicted-service
architecture it discusses:

1. **FIFO vs round-robin within a priority level.**  On the Table-1
   workload, CSZ's FIFO multiplexes bursts so "the post facto jitter is
   smaller for everyone"; round-robin re-isolates flows inside the class,
   pushing each burster's tail back up — measurably worse 99.9 %iles.
   Declared as one two-discipline scenario spec.

2. **Edge-only vs per-switch filter enforcement.**  CSZ checks token-
   bucket conformance only at the first switch because "any later
   violation would be due to the scheduling policies and load dynamics of
   the network and not the generation behavior of the source" (§8).  We
   police the same declared (A, 50) filters at every switch of the chain
   (via the live :class:`~repro.scenario.ScenarioContext`, which exposes
   the built schedulers): packets that conformed at their source get
   dropped inside the network, and the count grows fast as the policer
   tightens.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner

NUM_FLOWS = 10
DURATION = 45.0
WARMUP = 5.0
POLICER_DEPTHS = (50.0, 40.0, 30.0)

SHARING_DISCIPLINES = (
    DisciplineSpec.fifo(name="CSZ (FIFO in class)"),
    DisciplineSpec.jacobson_floyd(name="J-F (RR in class)", num_classes=1),
)


def run_sharing_styles(seed):
    """FIFO vs RR within one predicted class; returns per-discipline mean
    of per-flow p999s (tx units)."""
    spec = (
        ScenarioBuilder("jf-sharing")
        .single_link()
        .paper_flows(NUM_FLOWS, service_class=ServiceClass.PREDICTED)
        .disciplines(*SHARING_DISCIPLINES)
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )
    result = ScenarioRunner(spec).run()
    unit = common.TX_TIME_SECONDS
    out = {}
    for run in result.runs:
        p999s = [f.percentile_in(99.9, unit) for f in run.flows]
        out[run.discipline] = sum(p999s) / len(p999s)
    return out


def run_per_switch_policing(depth_packets, seed):
    """Police the declared (A, depth) bucket at EVERY switch of the
    Figure-1 chain; returns the number of in-network policed drops of
    traffic that conformed at its source."""
    spec = (
        ScenarioBuilder("jf-policing")
        .paper_chain()
        .figure1_flows(service_class=ServiceClass.PREDICTED)
        .discipline(DisciplineSpec.jacobson_floyd(num_classes=1))
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )
    context = ScenarioRunner(spec).build()
    schedulers = [port.scheduler for port in context.net.ports.values()]
    for scheduler in schedulers:
        for flow in spec.flows:
            scheduler.add_policer(
                flow.name,
                common.AVERAGE_RATE_PPS * common.PACKET_BITS,
                depth_packets * common.PACKET_BITS,
            )
    context.run()
    return sum(s.policed_drops for s in schedulers)


def run_comparison(seed: int = BENCH_SEED):
    sharing = run_sharing_styles(seed)
    policing = {
        depth: run_per_switch_policing(depth, seed)
        for depth in POLICER_DEPTHS
    }
    return sharing, policing


def test_bench_jacobson_floyd(benchmark):
    sharing, policing = run_once(benchmark, run_comparison)
    print()
    print("Within-class sharing style — mean per-flow 99.9 %ile (tx times)")
    print(common.format_table(
        ["scheme", "p999"],
        [[kind, f"{value:.2f}"] for kind, value in sharing.items()],
    ))
    print()
    print("Per-switch policing of source-conforming traffic (4-hop chain)")
    print(common.format_table(
        ["policer depth (pkts)", "in-network policed drops"],
        [[f"{depth:.0f}", str(count)] for depth, count in policing.items()],
    ))
    for kind, value in sharing.items():
        benchmark.extra_info[kind] = round(value, 2)
    for depth, count in policing.items():
        benchmark.extra_info[f"drops@b={depth:.0f}"] = count
    # 1. FIFO sharing beats round robin inside a homogeneous class.
    assert sharing["CSZ (FIFO in class)"] < 0.9 * sharing["J-F (RR in class)"]
    # 2. Per-switch policing punishes network-induced distortion, and the
    #    damage grows monotonically as the policer tightens.
    counts = [policing[depth] for depth in POLICER_DEPTHS]
    assert counts[0] > 0
    assert counts == sorted(counts)
