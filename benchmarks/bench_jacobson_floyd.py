"""Bench: CSZ vs the Jacobson-Floyd scheme (Section 11).

The paper's two concrete contrasts with the only other predicted-service
architecture it discusses:

1. **FIFO vs round-robin within a priority level.**  On the Table-1
   workload, CSZ's FIFO multiplexes bursts so "the post facto jitter is
   smaller for everyone"; round-robin re-isolates flows inside the class,
   pushing each burster's tail back up — measurably worse 99.9 %iles.

2. **Edge-only vs per-switch filter enforcement.**  CSZ checks token-
   bucket conformance only at the first switch because "any later
   violation would be due to the scheduling policies and load dynamics of
   the network and not the generation behavior of the source" (§8).  We
   police the same declared (A, 50) filters at every switch of the chain:
   packets that conformed at their source get dropped inside the network,
   and the count grows fast as the policer tightens.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.net.topology import paper_figure1_topology, single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sched.jacobson_floyd import JacobsonFloydScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink

NUM_FLOWS = 10
DURATION = 45.0
WARMUP = 5.0
POLICER_DEPTHS = (50.0, 40.0, 30.0)


def run_sharing_style(kind, seed):
    """FIFO vs RR within one predicted class; returns mean of per-flow
    p999s (tx units)."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    if kind == "CSZ (FIFO in class)":
        factory = lambda n, l: FifoScheduler()
    else:
        factory = lambda n, l: JacobsonFloydScheduler(num_classes=1)
    net = single_link_topology(sim, factory, rate_bps=common.LINK_RATE_BPS)
    sinks = []
    for i in range(NUM_FLOWS):
        flow_id = f"flow-{i}"
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(f"source:{flow_id}"),
            service_class=ServiceClass.PREDICTED,
        )
        sinks.append(
            DelayRecordingSink(sim, net.hosts["dst-host"], flow_id,
                               warmup=WARMUP)
        )
    sim.run(until=DURATION)
    unit = common.TX_TIME_SECONDS
    p999s = [sink.percentile_queueing(99.9, unit) for sink in sinks]
    return sum(p999s) / len(p999s)


def run_per_switch_policing(depth_packets, seed):
    """Police the declared (A, depth) bucket at EVERY switch of the
    Figure-1 chain; returns the number of in-network policed drops of
    traffic that conformed at its source."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    schedulers = []

    def factory(name, link):
        scheduler = JacobsonFloydScheduler(num_classes=1)
        schedulers.append(scheduler)
        return scheduler

    net = paper_figure1_topology(sim, factory, rate_bps=common.LINK_RATE_BPS)
    placements = common.figure1_flow_placements()
    common.attach_paper_flows(
        sim, net, streams, placements, WARMUP,
        service_class=ServiceClass.PREDICTED,
    )
    for scheduler in schedulers:
        for placement in placements:
            scheduler.add_policer(
                placement.name,
                common.AVERAGE_RATE_PPS * common.PACKET_BITS,
                depth_packets * common.PACKET_BITS,
            )
    sim.run(until=DURATION)
    return sum(s.policed_drops for s in schedulers)


def run_comparison(seed: int = BENCH_SEED):
    sharing = {
        kind: run_sharing_style(kind, seed)
        for kind in ("CSZ (FIFO in class)", "J-F (RR in class)")
    }
    policing = {
        depth: run_per_switch_policing(depth, seed)
        for depth in POLICER_DEPTHS
    }
    return sharing, policing


def test_bench_jacobson_floyd(benchmark):
    sharing, policing = run_once(benchmark, run_comparison)
    print()
    print("Within-class sharing style — mean per-flow 99.9 %ile (tx times)")
    print(common.format_table(
        ["scheme", "p999"],
        [[kind, f"{value:.2f}"] for kind, value in sharing.items()],
    ))
    print()
    print("Per-switch policing of source-conforming traffic (4-hop chain)")
    print(common.format_table(
        ["policer depth (pkts)", "in-network policed drops"],
        [[f"{depth:.0f}", str(count)] for depth, count in policing.items()],
    ))
    for kind, value in sharing.items():
        benchmark.extra_info[kind] = round(value, 2)
    for depth, count in policing.items():
        benchmark.extra_info[f"drops@b={depth:.0f}"] = count
    # 1. FIFO sharing beats round robin inside a homogeneous class.
    assert sharing["CSZ (FIFO in class)"] < 0.9 * sharing["J-F (RR in class)"]
    # 2. Per-switch policing punishes network-induced distortion, and the
    #    damage grows monotonically as the policer tightens.
    counts = [policing[depth] for depth in POLICER_DEPTHS]
    assert counts[0] > 0
    assert counts == sorted(counts)
