"""Bench: the non-work-conserving trade-off (Section 11 related work).

"Several non-work-conserving scheduling algorithms have been proposed ...
packets are not allowed to leave early.  These algorithms typically
deliver higher average delays in return for lower jitter."

We run the Table-2 workload (Figure-1 chain, 22 flows) under FIFO,
Stop-and-Go (frame 50 ms), and Jitter-EDD (80 ms per-hop target) — one
scenario spec, three disciplines — and report the 4-hop flow's mean,
99.9 %ile, and spread (p99.9 - p1 — the post facto jitter a play-back
client must buffer for):

* FIFO: tiny mean, spread limited only by queueing luck;
* Stop-and-Go: mean inflated by ~half a frame per hop, spread bounded by
  one frame per hop regardless of load;
* Jitter-EDD: highest mean (every packet is reshaped to its deadline at
  every hop) but the smallest spread — per-hop jitter is cancelled, the
  behaviour CSZ deliberately trades away in exchange for lower delay.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner

DURATION = 45.0
WARMUP = 5.0
FRAME_SECONDS = 0.05
JEDD_TARGET = 0.08
FOUR_HOP_FLOW = "i1"
CDF_POINTS = (1.0, 99.9)


def tradeoff_spec(seed: int = BENCH_SEED):
    return (
        ScenarioBuilder("nonwork-tradeoff")
        .paper_chain()
        .figure1_flows()
        .disciplines(
            DisciplineSpec.fifo(),
            DisciplineSpec.stop_and_go(frame_seconds=FRAME_SECONDS),
            DisciplineSpec.jitter_edd(default_target=JEDD_TARGET),
        )
        .percentiles(*CDF_POINTS)
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )


def run_comparison(seed: int = BENCH_SEED):
    result = ScenarioRunner(tradeoff_spec(seed)).run()
    unit = common.TX_TIME_SECONDS
    out = {}
    for run in result.runs:
        sink = run.flow(FOUR_HOP_FLOW)
        mean = sink.mean_in(unit)
        p999 = sink.percentile_in(99.9, unit)
        spread = p999 - sink.percentile_in(1.0, unit)
        out[run.discipline] = (mean, p999, spread)
    return out


def test_bench_nonwork_tradeoff(benchmark):
    results = run_once(benchmark, run_comparison)
    print()
    print("Work-conserving vs not — 4-hop flow (tx times)")
    print(common.format_table(
        ["discipline", "mean", "99.9 %ile", "spread"],
        [
            [kind, f"{mean:.2f}", f"{p999:.2f}", f"{spread:.2f}"]
            for kind, (mean, p999, spread) in results.items()
        ],
    ))
    for kind, (mean, p999, spread) in results.items():
        benchmark.extra_info[kind] = (
            f"mean={mean:.1f} p999={p999:.1f} spread={spread:.1f}"
        )
    fifo_mean, __, fifo_spread = results["FIFO"]
    sg_mean, sg_p999, __ = results["Stop-and-Go"]
    jedd_mean, __, jedd_spread = results["Jitter-EDD"]
    # Higher average delay...
    assert sg_mean > 5.0 * fifo_mean
    assert jedd_mean > 5.0 * fifo_mean
    # ...in return for lower / bounded jitter.
    assert jedd_spread < 0.7 * fifo_spread
    frame_tx = FRAME_SECONDS / common.TX_TIME_SECONDS
    hops = 4
    # Stop-and-Go's spread around its own mean is bounded by ~a frame/hop.
    assert sg_p999 - sg_mean < hops * frame_tx
