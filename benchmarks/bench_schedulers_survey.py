"""Survey bench: the Section 11 related-work disciplines on one workload.

Runs the Table-1 single-link workload under every scheduler in the library
(FIFO, WFQ, FIFO+, VirtualClock, round robin, deficit round robin, EDF)
and prints one row each — mean / 99.9 %ile of the sample flow.  Shapes to
expect: the isolating schedulers (WFQ, VirtualClock, round-robins) cluster
together with large tails; the sharing schedulers (FIFO, FIFO+ — identical
on one hop — and EDF with uniform targets, which *is* FIFO per Section 5)
cluster with small tails.

One declarative scenario, seven disciplines: the whole survey is a single
:class:`~repro.scenario.ScenarioSpec` fed to the runner.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner

NUM_FLOWS = 10
DURATION = 45.0
WARMUP = 5.0

DISCIPLINES = (
    DisciplineSpec.fifo(),
    DisciplineSpec.fifoplus(),
    DisciplineSpec.wfq(equal_share_flows=NUM_FLOWS),
    DisciplineSpec.virtual_clock(equal_share_flows=NUM_FLOWS),
    DisciplineSpec.round_robin(),
    DisciplineSpec.drr(quantum_bits=1000),
    DisciplineSpec.edf(default_target=0.1),
)


def survey_spec(seed: int = BENCH_SEED):
    return (
        ScenarioBuilder("schedulers-survey")
        .single_link()
        .paper_flows(NUM_FLOWS)
        .disciplines(*DISCIPLINES)
        .duration(DURATION)
        .warmup(WARMUP)
        .seed(seed)
        .build()
    )


def run_survey(seed: int = BENCH_SEED):
    result = ScenarioRunner(survey_spec(seed)).run()
    unit = common.TX_TIME_SECONDS
    return {
        run.discipline: (
            run.flow("flow-0").mean_in(unit),
            run.flow("flow-0").percentile_in(99.9, unit),
        )
        for run in result.runs
    }


def test_bench_schedulers_survey(benchmark):
    results = run_once(benchmark, run_survey)
    print()
    print("Scheduler survey — Table-1 workload, sample flow (tx times)")
    print(common.format_table(
        ["discipline", "mean", "99.9 %ile"],
        [
            [name, f"{mean:.2f}", f"{p999:.2f}"]
            for name, (mean, p999) in results.items()
        ],
    ))
    for name, (mean, p999) in results.items():
        benchmark.extra_info[name] = f"{mean:.2f}/{p999:.2f}"
    # Sharing vs isolation clusters (Section 5 / Section 11).
    assert results["FIFO"][1] < results["WFQ"][1]
    assert results["FIFO"][1] < results["VirtualClock"][1]
    # EDF with a uniform target degenerates to FIFO (identical ordering).
    assert abs(results["EDF"][1] - results["FIFO"][1]) < 1e-6
    # FIFO+ on a single hop behaves like FIFO (offsets are zero on hop 1).
    assert abs(results["FIFO+"][0] - results["FIFO"][0]) < 0.5
    # Work conservation: every discipline sees a similar mean.
    means = [mean for mean, __ in results.values()]
    assert max(means) < 1.6 * min(means)
