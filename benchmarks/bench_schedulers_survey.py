"""Survey bench: the Section 11 related-work disciplines on one workload.

Runs the Table-1 single-link workload under every scheduler in the library
(FIFO, WFQ, FIFO+, VirtualClock, round robin, deficit round robin, EDF)
and prints one row each — mean / 99.9 %ile of the sample flow.  Shapes to
expect: the isolating schedulers (WFQ, VirtualClock, round-robins) cluster
together with large tails; the sharing schedulers (FIFO, FIFO+ — identical
on one hop — and EDF with uniform targets, which *is* FIFO per Section 5)
cluster with small tails.
"""

from benchmarks.conftest import BENCH_SEED, run_once
from repro.experiments import common
from repro.net.topology import single_link_topology
from repro.sched.edf import EdfScheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import FifoPlusScheduler
from repro.sched.round_robin import (
    DeficitRoundRobinScheduler,
    RoundRobinScheduler,
)
from repro.sched.virtual_clock import VirtualClockScheduler
from repro.sched.wfq import WfqScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink

NUM_FLOWS = 10
DURATION = 45.0
WARMUP = 5.0

FACTORIES = {
    "FIFO": lambda link: FifoScheduler(),
    "FIFO+": lambda link: FifoPlusScheduler(),
    "WFQ": lambda link: WfqScheduler(
        link.rate_bps, auto_register_rate=link.rate_bps / NUM_FLOWS
    ),
    "VirtualClock": lambda link: VirtualClockScheduler(
        auto_register_rate=link.rate_bps / NUM_FLOWS
    ),
    "RR": lambda link: RoundRobinScheduler(),
    "DRR": lambda link: DeficitRoundRobinScheduler(quantum_bits=1000),
    "EDF": lambda link: EdfScheduler(default_target=0.1),
}


def run_discipline(name, seed):
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    net = single_link_topology(
        sim,
        lambda n, link: FACTORIES[name](link),
        rate_bps=common.LINK_RATE_BPS,
    )
    sinks = []
    for i in range(NUM_FLOWS):
        flow_id = f"flow-{i}"
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(f"source:{flow_id}"),
            average_rate_pps=common.AVERAGE_RATE_PPS,
        )
        sinks.append(
            DelayRecordingSink(sim, net.hosts["dst-host"], flow_id, warmup=WARMUP)
        )
    sim.run(until=DURATION)
    unit = common.TX_TIME_SECONDS
    return (
        sinks[0].mean_queueing(unit),
        sinks[0].percentile_queueing(99.9, unit),
    )


def run_survey(seed: int = BENCH_SEED):
    return {name: run_discipline(name, seed) for name in FACTORIES}


def test_bench_schedulers_survey(benchmark):
    results = run_once(benchmark, run_survey)
    print()
    print("Scheduler survey — Table-1 workload, sample flow (tx times)")
    print(common.format_table(
        ["discipline", "mean", "99.9 %ile"],
        [
            [name, f"{mean:.2f}", f"{p999:.2f}"]
            for name, (mean, p999) in results.items()
        ],
    ))
    for name, (mean, p999) in results.items():
        benchmark.extra_info[name] = f"{mean:.2f}/{p999:.2f}"
    # Sharing vs isolation clusters (Section 5 / Section 11).
    assert results["FIFO"][1] < results["WFQ"][1]
    assert results["FIFO"][1] < results["VirtualClock"][1]
    # EDF with a uniform target degenerates to FIFO (identical ordering).
    assert abs(results["EDF"][1] - results["FIFO"][1]) < 1e-6
    # FIFO+ on a single hop behaves like FIFO (offsets are zero on hop 1).
    assert abs(results["FIFO+"][0] - results["FIFO"][0]) < 0.5
    # Work conservation: every discipline sees a similar mean.
    means = [mean for mean, __ in results.values()]
    assert max(means) < 1.6 * min(means)
