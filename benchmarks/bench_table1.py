"""Bench: regenerate Table 1 (WFQ vs FIFO on one 83.5 %-utilized link).

Paper rows (delays in packet transmission times):

    scheduling   mean   99.9 %ile
    WFQ          3.16   53.86
    FIFO         3.17   34.72
"""

from benchmarks.conftest import BENCH_DURATION, BENCH_SEED, run_once
from repro.experiments import table1


def test_bench_table1(benchmark):
    result = run_once(
        benchmark, table1.run, duration=BENCH_DURATION, seed=BENCH_SEED
    )
    print()
    print(result.render())
    wfq = result.row("WFQ")
    fifo = result.row("FIFO")
    benchmark.extra_info.update(
        {
            "wfq_mean": round(wfq.mean, 2),
            "wfq_p999": round(wfq.p999, 2),
            "fifo_mean": round(fifo.mean, 2),
            "fifo_p999": round(fifo.p999, 2),
            "utilization": round(result.utilization, 3),
        }
    )
    # Paper-shape assertions (not absolute numbers).
    assert abs(wfq.mean - fifo.mean) / max(wfq.mean, fifo.mean) < 0.10
    assert fifo.p999 < 0.85 * wfq.p999
