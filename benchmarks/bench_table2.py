"""Bench: regenerate Table 2 (WFQ / FIFO / FIFO+ by path length).

Paper rows (mean / 99.9 %ile, transmission times):

                 1 hop          2 hops         3 hops         4 hops
    WFQ     2.65 / 45.31   4.74 / 60.31   7.51 / 65.86   9.64 / 80.59
    FIFO    2.54 / 30.49   4.73 / 41.22   7.97 / 52.36  10.33 / 58.13
    FIFO+   2.71 / 33.59   4.69 / 38.15   7.76 / 43.30  10.11 / 45.25
"""

from benchmarks.conftest import BENCH_DURATION, BENCH_SEED, run_once
from repro.experiments import table2


def test_bench_table2(benchmark):
    result = run_once(
        benchmark, table2.run, duration=BENCH_DURATION, seed=BENCH_SEED
    )
    print()
    print(result.render())
    for row in result.rows:
        for hops in (1, 2, 3, 4):
            cell = row.by_hops[hops]
            benchmark.extra_info[f"{row.scheduling}_{hops}h"] = (
                f"{cell.mean:.2f}/{cell.p999:.2f}"
            )
    # Shape: FIFO+ flattens the growth of the 99.9 %ile with path length.
    wfq = result.row("WFQ")
    plus = result.row("FIFO+")
    wfq_growth = wfq.by_hops[4].p999 - wfq.by_hops[1].p999
    plus_growth = plus.by_hops[4].p999 - plus.by_hops[1].p999
    assert plus_growth < 0.75 * wfq_growth
    assert plus.by_hops[4].p999 < result.row("FIFO").by_hops[4].p999
