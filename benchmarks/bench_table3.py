"""Bench: regenerate Table 3 (the unified scheduler, mixed commitments).

Paper shape: every guaranteed flow's max delay below its P-G bound;
Guaranteed-Peak << Guaranteed-Average; Predicted-High << Predicted-Low;
>99 % total utilization with ~83.5 % real-time; datagram drops ~0.1 %.
"""

from benchmarks.conftest import BENCH_DURATION, BENCH_SEED, run_once
from repro.experiments import table3


def test_bench_table3(benchmark):
    result = run_once(
        benchmark, table3.run, duration=BENCH_DURATION, seed=BENCH_SEED
    )
    print()
    print(result.render())
    for row in result.rows:
        benchmark.extra_info[f"{row.flow_type}_{row.hops}h"] = (
            f"mean={row.mean:.2f} p999={row.p999:.2f} max={row.max:.2f}"
        )
    benchmark.extra_info["datagram_drop_rate"] = round(
        result.datagram_drop_rate, 4
    )
    # Guaranteed flows never exceed their Parekh-Gallager bounds.
    for flow, bound in result.pg_bound_by_flow.items():
        assert result.all_max_by_flow[flow] < bound, flow
    # Class orderings hold.
    assert result.row("Peak", 4).mean < result.row("Average", 1).mean
    assert result.row("High", 4).p999 < result.row("Low", 3).p999
    # The network runs hot (paper: >99 %; allow ramp-up at short horizons).
    assert all(u > 0.90 for u in result.link_utilizations.values())
