"""Benchmark-harness configuration.

Every bench regenerates one of the paper's tables/figures (or an ablation
of a design choice DESIGN.md calls out).  Simulated horizons are shortened
from the paper's 600 s so the whole suite completes in minutes; the
``python -m repro.experiments <name> --duration 600`` CLI reruns any
experiment at full length.

Each bench run is a complete experiment, so benches execute exactly once
(``rounds=1``): variance across repetitions would measure the host machine,
not the reproduction.
"""

from __future__ import annotations

BENCH_DURATION = 60.0  # simulated seconds per bench run
BENCH_SEED = 1


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
