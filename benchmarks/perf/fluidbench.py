"""Fluid-engine benchmarks: flows/sec at scale and the packet crossover.

Three measurements feed ``tools/perf_report.py --suite fluid`` (the
tracked ``BENCH_fluid.json`` trajectory) and the CI fluid perf gate:

* :func:`bench_fluid_scale` — generated fat-tree populations at 10k,
  100k, and 1M flows, run end-to-end on the fluid engine; the headline
  metric is
  *flow-advances per wall-clock second* (``events_processed`` /
  engine wall), the fluid analogue of the packet engine's events/sec.
* :func:`bench_crossover` — one instance small enough for both engines
  (k=4 fat-tree), timed on each.  This is where the fluid engine's
  reason to exist becomes a number: the packet engine's wall scales with
  packets sent, the fluid engine's with flows x epochs.
* :func:`run_baseline` — freezes the packet-engine side of the
  crossover (captured once into
  ``benchmarks/perf/baseline_fluid_packet.json``) plus the founding
  fluid flows/sec floor the CI gate regresses against.

Run directly for the CI gate::

    PYTHONPATH=src python benchmarks/perf/fluidbench.py --quick \\
        --gate BENCH_fluid.json
"""

from __future__ import annotations

import time
from typing import Dict

from repro.fluid import model as _fluid_model
from repro.fluid.model import FluidOptions
from repro.scenario import ScenarioRunner, registry


def _resolved_backend() -> str:
    backend = FluidOptions.from_env().backend
    if backend == "auto":
        backend = "numpy" if _fluid_model._np is not None else "pure"
    return backend

#: Scale-bench sizes (num_flows on a fat-tree sized to carry them).
#: The 1M leg is the ROADMAP's datacenter-scale regime: tier-2 budget
#: (~60s end to end), tracked with its own floor (``fluid_floor_1m``).
SCALE_SIZES = ((10_000, 8), (100_000, 16), (1_000_000, 24))
#: Crossover instance: small enough for the packet engine.  ECMP off so
#: both engines route identically (the packet engine's per-destination
#: router ignores ``ecmp_seed``; comparing walls across different route
#: sets would compare different workloads).
CROSSOVER_KWARGS = dict(
    gen_seed=1, k=4, num_flows=64, record_flows=16, ecmp=False
)
CROSSOVER_DURATION_SECONDS = 20.0
SCALE_DURATION_SECONDS = 60.0
#: The gate instance (mid-size: big enough to be numpy-bound, small
#: enough for a CI smoke step).
GATE_FLOWS, GATE_K = 10_000, 8


def _fluid_point(num_flows: int, k: int, duration: float) -> Dict[str, float]:
    built = time.perf_counter()
    spec = registry.build(
        "gen:fat-tree", gen_seed=1, k=k, num_flows=num_flows,
        duration=duration, engine="fluid",
    )
    build_wall = time.perf_counter() - built
    # Benches read aggregates only: skip per-flow delay sample lists
    # (FluidOptions.record_flows) but keep everything else identical to
    # a ScenarioRunner dispatch.
    discipline = next(d for d in spec.disciplines if d.name == "CSZ")
    started = time.perf_counter()
    sim = _fluid_model.FluidSimulation(
        spec, discipline, options=FluidOptions.from_env(record_flows=False)
    )
    run = sim.run().collect()
    total_wall = time.perf_counter() - started
    return {
        "num_flows": num_flows,
        "k": k,
        "duration": duration,
        "backend": _resolved_backend(),
        "build_wall_seconds": build_wall,
        "wall_seconds": total_wall,
        "engine_wall_seconds": run.wall_seconds,
        "flow_advances": run.events_processed,
        "flows_per_sec": run.events_processed / run.wall_seconds,
    }


def bench_fluid_scale(scale: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Fluid throughput at (scaled) 10k, 100k, and 1M flows."""
    duration = max(SCALE_DURATION_SECONDS * scale, 5.0)
    out = {}
    for num_flows, k in SCALE_SIZES:
        flows = max(int(num_flows * scale), 1000)
        out[f"flows_{num_flows}"] = _fluid_point(flows, k, duration)
    return out


def bench_crossover(scale: float = 1.0) -> Dict[str, float]:
    """The same small fat-tree on both engines.

    Also reports how closely the engines agree on delivered traffic
    (mean relative received-packet difference over recorded flows) so a
    wall-clock win can't silently come from simulating something else.
    """
    duration = max(CROSSOVER_DURATION_SECONDS * scale, 5.0)
    fluid_spec = registry.build(
        "gen:fat-tree", duration=duration, engine="fluid",
        **CROSSOVER_KWARGS,
    )
    packet_spec = registry.build(
        "gen:fat-tree", duration=duration, engine="packet",
        **CROSSOVER_KWARGS,
    )
    started = time.perf_counter()
    fluid = ScenarioRunner(fluid_spec).run_discipline("CSZ")
    fluid_wall = time.perf_counter() - started
    started = time.perf_counter()
    packet = ScenarioRunner(packet_spec).run_discipline("CSZ")
    packet_wall = time.perf_counter() - started
    by_name = {f.name: f for f in packet.flows}
    rel_diffs = [
        abs(f.received - by_name[f.name].received)
        / max(by_name[f.name].received, 1)
        for f in fluid.flows
        if f.name in by_name
    ]
    return {
        "num_flows": CROSSOVER_KWARGS["num_flows"],
        "duration": duration,
        "fluid_wall_seconds": fluid_wall,
        "packet_wall_seconds": packet_wall,
        "packet_events": packet.events_processed,
        "fluid_flow_advances": fluid.events_processed,
        "speedup": packet_wall / fluid_wall,
        "mean_received_rel_diff": (
            sum(rel_diffs) / len(rel_diffs) if rel_diffs else 0.0
        ),
    }


def run_all(scale: float = 1.0) -> Dict[str, object]:
    scale = max(scale, 0.01)
    return {
        "scale_sweep": bench_fluid_scale(scale),
        "crossover": bench_crossover(scale),
    }


def run_baseline(scale: float = 1.0) -> Dict[str, object]:
    """The frozen reference: packet engine on the crossover instance,
    plus the fluid flows/sec floors (the gate's regression anchors,
    re-frozen only deliberately) — the CI gate cell at 10k flows and
    the 1M-flow scale regime's own floor."""
    scale = max(scale, 0.01)
    crossover = bench_crossover(scale)
    duration = max(SCALE_DURATION_SECONDS * scale, 5.0)
    gate = _fluid_point(GATE_FLOWS, GATE_K, duration)
    flows_1m, k_1m = SCALE_SIZES[-1]
    floor_1m = _fluid_point(
        max(int(flows_1m * scale), 1000), k_1m, duration
    )
    return {
        "crossover_packet": {
            "num_flows": crossover["num_flows"],
            "duration": crossover["duration"],
            "wall_seconds": crossover["packet_wall_seconds"],
            "packet_events": crossover["packet_events"],
        },
        "fluid_floor": gate,
        "fluid_floor_1m": floor_1m,
    }


# ----------------------------------------------------------------------
# CI gate
# ----------------------------------------------------------------------


def _gate(
    report_path: str, tolerance: float = 0.25, cell: str = "fluid_floor"
) -> int:
    """Fail CI when fluid flows/sec regresses >``tolerance`` against the
    committed ``BENCH_fluid.json`` gate point (same container image, so
    a 25% drop is a real regression, not machine noise).  ``cell``
    selects the committed floor: the default 10k CI cell, or
    ``fluid_floor_1m`` for the (slow) full-scale leg."""
    import json

    with open(report_path) as handle:
        committed = json.load(handle)
    floor_point = committed["baseline"]["measurements"][cell]
    floor = floor_point["flows_per_sec"]
    backend = _resolved_backend()
    if backend != floor_point.get("backend", backend):
        # A pure-Python run against a numpy floor (or vice versa) is an
        # environment bug, not a perf regression — fail loudly as such.
        print(
            f"fluid perf gate: backend mismatch — running {backend!r} but "
            f"the committed floor was captured on "
            f"{floor_point.get('backend')!r}; fix the environment"
        )
        return 1
    # Re-measure the exact committed shape (flows, fabric, duration):
    # flows/sec depends on the epoch grid, so a different duration would
    # compare different workloads.  The kernel finishes the gate shape
    # in a sub-second engine wall where one sample swings 2x with
    # machine noise, so take the best of three (early exit on pass) —
    # a real regression depresses all three.
    threshold = floor * (1.0 - tolerance)
    rate = 0.0
    for _ in range(3):
        measured = _fluid_point(
            floor_point["num_flows"], floor_point["k"],
            floor_point["duration"],
        )
        rate = max(rate, measured["flows_per_sec"])
        if rate >= threshold:
            break
    verdict = "ok" if rate >= threshold else "REGRESSION"
    print(
        f"fluid perf gate: measured {rate:,.0f} flow-adv/s vs committed "
        f"floor {floor:,.0f} (threshold {threshold:,.0f}): {verdict}"
    )
    return 0 if rate >= threshold else 1


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Run the fluid-engine benches (optionally gating CI)."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run at ~1/8 scale (CI sizing)",
    )
    parser.add_argument(
        "--gate", metavar="BENCH_FLUID_JSON", default=None,
        help="compare fluid flows/sec against the committed report and "
        "exit non-zero on a >25%% regression",
    )
    parser.add_argument(
        "--gate-cell", default="fluid_floor",
        choices=("fluid_floor", "fluid_floor_1m"),
        help="committed floor to gate against (fluid_floor_1m re-runs "
        "the full 1M-flow leg: minutes, not a CI smoke step)",
    )
    args = parser.parse_args(argv)
    scale = 0.125 if args.quick else 1.0
    if args.gate is not None:
        return _gate(args.gate, cell=args.gate_cell)
    print(json.dumps(run_all(scale=scale), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
