"""Engine and hot-path microbenchmarks.

Each function runs one tightly-scoped workload and returns a plain dict of
measurements (rates in operations per *wall-clock* second).  They are the
raw material for ``tools/perf_report.py``, which assembles the tracked
``BENCH_core.json`` trajectory, and for the CI perf-smoke step.

The benches deliberately depend only on stable public API so the identical
workload can be timed against older checkouts of the engine (that is how
the ``baseline`` block in ``BENCH_core.json`` was captured).  The one
accommodation is ``_schedule_handle``: engines before the fast-path split
had a single ``schedule`` that always returned a cancellable handle.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.experiments import table1, table3
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner
from repro.sim.engine import Simulator

# Sized so the full suite runs in roughly a minute on a laptop.
RAW_EVENTS_TOTAL = 400_000
RAW_EVENT_CHAINS = 64
TIMER_CHURN_OPS = 150_000
SCHED_DURATION_SECONDS = 8.0
SCHED_NUM_FLOWS = 10
TABLE_DURATION_SECONDS = 15.0

SCHED_DISCIPLINES = (
    DisciplineSpec.fifo(),
    DisciplineSpec.fifoplus(),
    DisciplineSpec.wfq(equal_share_flows=SCHED_NUM_FLOWS),
    DisciplineSpec.unified(),
)


def _schedule_handle(sim: Simulator) -> Callable:
    """The cancellable-scheduling entry point, on any engine vintage."""
    return getattr(sim, "schedule_handle", None) or sim.schedule


def bench_raw_events(
    total_events: int = RAW_EVENTS_TOTAL, chains: int = RAW_EVENT_CHAINS
) -> Dict[str, float]:
    """Raw event-loop throughput: self-rescheduling callback chains.

    ``chains`` concurrent callbacks each reschedule themselves at slightly
    different periods, so the heap stays ``chains`` deep and pushes hit
    random positions — the steady-state shape of a packet simulation with
    many independent sources, minus all packet work.
    """
    sim = Simulator()
    budget = [total_events]
    schedule = sim.schedule

    def make_chain(period: float) -> Callable[[], None]:
        def fire() -> None:
            if budget[0] > 0:
                budget[0] -= 1
                schedule(period, fire)

        return fire

    for i in range(chains):
        schedule(0.0, make_chain(0.001 + i * 1e-6))
    started = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - started
    return {
        "events": sim.events_processed,
        "wall_seconds": elapsed,
        "events_per_sec": sim.events_processed / elapsed,
    }


def bench_timer_churn(ops: int = TIMER_CHURN_OPS) -> Dict[str, float]:
    """Cancel/re-arm churn: the retransmission-timer usage pattern.

    Every iteration cancels the previously armed timer (which never fires)
    and arms a fresh one, while a driving chain advances the clock past the
    cancelled entries so the lazy-deletion pop path is exercised too.
    """
    sim = Simulator()
    schedule = sim.schedule
    schedule_handle = _schedule_handle(sim)
    state = {"handle": None, "remaining": ops}

    def retransmit() -> None:  # pragma: no cover - always cancelled
        raise AssertionError("cancelled timer fired")

    def fire() -> None:
        handle = state["handle"]
        if handle is not None:
            handle.cancel()
        if state["remaining"] > 0:
            state["remaining"] -= 1
            state["handle"] = schedule_handle(0.0025, retransmit)
            schedule(0.001, fire)
        else:
            state["handle"] = None

    schedule(0.0, fire)
    started = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - started
    return {
        "ops": ops,
        "wall_seconds": elapsed,
        "churn_per_sec": ops / elapsed,
    }


def bench_scheduler_packets(
    duration: float = SCHED_DURATION_SECONDS, num_flows: int = SCHED_NUM_FLOWS
) -> Dict[str, Dict[str, float]]:
    """Per-discipline packets/sec through the Table-1 bottleneck port."""
    spec = (
        ScenarioBuilder("perf-sched")
        .single_link()
        .paper_flows(num_flows)
        .disciplines(*SCHED_DISCIPLINES)
        .duration(duration)
        .warmup(0.0)
        .seed(1)
        .build()
    )
    runner = ScenarioRunner(spec)
    out: Dict[str, Dict[str, float]] = {}
    for discipline in spec.disciplines:
        context = runner.build(discipline)
        started = time.perf_counter()
        context.run()
        elapsed = time.perf_counter() - started
        port = context.net.port_for_link("A->B")
        out[discipline.name] = {
            "packets": port.packets_out,
            "wall_seconds": elapsed,
            "packets_per_sec": port.packets_out / elapsed,
            "events_per_sec": context.sim.events_processed / elapsed,
        }
    return out


def bench_control_seam(
    duration: float = SCHED_DURATION_SECONDS, num_flows: int = SCHED_NUM_FLOWS
) -> Dict[str, float]:
    """Cost of the control-plane seam on a run where nothing ever fails.

    Times the Table-1 FIFO workload twice: once plain, once with an
    inert ``OutageSpec`` attached (one explicit outage scheduled far
    past the horizon, so the controller is built, every flow is
    tracked, and the timer is armed — but no event ever fires).  The
    tracked ``overhead_ratio`` is with/without wall clock; the seam's
    contract is that it stays ~1.0.
    """
    import dataclasses

    import repro.control  # noqa: F401  (one-time import cost off the clock)
    from repro.scenario import OutageEvent, OutageSpec

    def build(outages):
        spec = (
            ScenarioBuilder("perf-control-seam")
            .single_link()
            .paper_flows(num_flows)
            .disciplines(DisciplineSpec.fifo())
            .duration(duration)
            .warmup(0.0)
            .seed(1)
            .build()
        )
        return dataclasses.replace(spec, outages=outages)

    inert = OutageSpec(
        events=(OutageEvent(link="A->B", at=duration * 100.0, duration=1.0),)
    )
    specs = (("without", build(None)), ("with", build(inert)))
    walls = {key: [] for key, _ in specs}
    # Interleave best-of-3 so drift in machine load hits both arms alike.
    for _ in range(3):
        for key, spec in specs:
            started = time.perf_counter()
            ScenarioRunner(spec).run()
            walls[key].append(time.perf_counter() - started)
    out: Dict[str, float] = {"duration": duration}
    for key, _ in specs:
        out[f"{key}_wall_seconds"] = min(walls[key])
    out["overhead_ratio"] = out["with_wall_seconds"] / out["without_wall_seconds"]
    return out


def bench_table1(duration: float = TABLE_DURATION_SECONDS) -> Dict[str, float]:
    """Wall clock of a shortened Table-1 experiment (two full simulations)."""
    started = time.perf_counter()
    table1.run(duration=duration, seed=1)
    elapsed = time.perf_counter() - started
    return {"duration": duration, "wall_seconds": elapsed}


def bench_table3(duration: float = TABLE_DURATION_SECONDS) -> Dict[str, float]:
    """Wall clock of a shortened Table-3 experiment (unified + admission)."""
    started = time.perf_counter()
    table3.run(duration=duration, seed=1)
    elapsed = time.perf_counter() - started
    return {"duration": duration, "wall_seconds": elapsed}


def run_all(scale: float = 1.0) -> Dict[str, object]:
    """Run every microbench, optionally scaled down (``scale < 1``) for CI.

    Returns the nested measurement dict that ``tools/perf_report.py``
    embeds as the ``current`` block of ``BENCH_core.json``.
    """
    scale = max(scale, 0.01)
    return {
        "raw_events": bench_raw_events(
            total_events=max(int(RAW_EVENTS_TOTAL * scale), 1000)
        ),
        "timer_churn": bench_timer_churn(
            ops=max(int(TIMER_CHURN_OPS * scale), 1000)
        ),
        "scheduler_packets": bench_scheduler_packets(
            duration=max(SCHED_DURATION_SECONDS * scale, 0.5)
        ),
        "control_seam": bench_control_seam(
            duration=max(SCHED_DURATION_SECONDS * scale, 0.5)
        ),
        "table1": bench_table1(
            duration=max(TABLE_DURATION_SECONDS * scale, 1.0)
        ),
        "table3": bench_table3(
            duration=max(TABLE_DURATION_SECONDS * scale, 1.0)
        ),
    }
