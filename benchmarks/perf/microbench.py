"""Engine and hot-path microbenchmarks.

Each function runs one tightly-scoped workload and returns a plain dict of
measurements (rates in operations per *wall-clock* second).  They are the
raw material for ``tools/perf_report.py``, which assembles the tracked
``BENCH_core.json`` trajectory, and for the CI perf-smoke step.

The benches deliberately depend only on stable public API so the identical
workload can be timed against older checkouts of the engine (that is how
the ``baseline`` block in ``BENCH_core.json`` was captured).  The one
accommodation is ``_schedule_handle``: engines before the fast-path split
had a single ``schedule`` that always returned a cancellable handle.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.experiments import table1, table3
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner
from repro.sim.engine import Simulator

# Sized so the full suite runs in roughly a minute on a laptop.
RAW_EVENTS_TOTAL = 400_000
RAW_EVENT_CHAINS = 64
TIMER_CHURN_OPS = 150_000
SCHED_DURATION_SECONDS = 8.0
SCHED_NUM_FLOWS = 10
TABLE_DURATION_SECONDS = 15.0
QUEUE_DENSITY_EVENTS = 120_000
BATCH_DRAIN_PACKETS = 60_000
BATCH_DRAIN_BURST = 32

SCHED_DISCIPLINES = (
    DisciplineSpec.fifo(),
    DisciplineSpec.fifoplus(),
    DisciplineSpec.wfq(equal_share_flows=SCHED_NUM_FLOWS),
    DisciplineSpec.unified(),
)


def _schedule_handle(sim: Simulator) -> Callable:
    """The cancellable-scheduling entry point, on any engine vintage."""
    return getattr(sim, "schedule_handle", None) or sim.schedule


def bench_raw_events(
    total_events: int = RAW_EVENTS_TOTAL, chains: int = RAW_EVENT_CHAINS
) -> Dict[str, float]:
    """Raw event-loop throughput: self-rescheduling callback chains.

    ``chains`` concurrent callbacks each reschedule themselves at slightly
    different periods, so the heap stays ``chains`` deep and pushes hit
    random positions — the steady-state shape of a packet simulation with
    many independent sources, minus all packet work.
    """
    sim = Simulator()
    budget = [total_events]
    schedule = sim.schedule

    def make_chain(period: float) -> Callable[[], None]:
        def fire() -> None:
            if budget[0] > 0:
                budget[0] -= 1
                schedule(period, fire)

        return fire

    for i in range(chains):
        schedule(0.0, make_chain(0.001 + i * 1e-6))
    started = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - started
    return {
        "events": sim.events_processed,
        "wall_seconds": elapsed,
        "events_per_sec": sim.events_processed / elapsed,
    }


def bench_timer_churn(ops: int = TIMER_CHURN_OPS) -> Dict[str, float]:
    """Cancel/re-arm churn: the retransmission-timer usage pattern.

    Every iteration cancels the previously armed timer (which never fires)
    and arms a fresh one, while a driving chain advances the clock past the
    cancelled entries so the lazy-deletion pop path is exercised too.
    """
    sim = Simulator()
    schedule = sim.schedule
    schedule_handle = _schedule_handle(sim)
    state = {"handle": None, "remaining": ops}

    def retransmit() -> None:  # pragma: no cover - always cancelled
        raise AssertionError("cancelled timer fired")

    def fire() -> None:
        handle = state["handle"]
        if handle is not None:
            handle.cancel()
        if state["remaining"] > 0:
            state["remaining"] -= 1
            state["handle"] = schedule_handle(0.0025, retransmit)
            schedule(0.001, fire)
        else:
            state["handle"] = None

    schedule(0.0, fire)
    started = time.perf_counter()
    sim.run_until_idle()
    elapsed = time.perf_counter() - started
    return {
        "ops": ops,
        "wall_seconds": elapsed,
        "churn_per_sec": ops / elapsed,
    }


def bench_scheduler_packets(
    duration: float = SCHED_DURATION_SECONDS, num_flows: int = SCHED_NUM_FLOWS
) -> Dict[str, Dict[str, float]]:
    """Per-discipline packets/sec through the Table-1 bottleneck port."""
    spec = (
        ScenarioBuilder("perf-sched")
        .single_link()
        .paper_flows(num_flows)
        .disciplines(*SCHED_DISCIPLINES)
        .duration(duration)
        .warmup(0.0)
        .seed(1)
        .build()
    )
    runner = ScenarioRunner(spec)
    out: Dict[str, Dict[str, float]] = {}
    for discipline in spec.disciplines:
        context = runner.build(discipline)
        started = time.perf_counter()
        context.run()
        elapsed = time.perf_counter() - started
        port = context.net.port_for_link("A->B")
        out[discipline.name] = {
            "packets": port.packets_out,
            "wall_seconds": elapsed,
            "packets_per_sec": port.packets_out / elapsed,
            "events_per_sec": context.sim.events_processed / elapsed,
        }
    return out


def bench_control_seam(
    duration: float = SCHED_DURATION_SECONDS, num_flows: int = SCHED_NUM_FLOWS
) -> Dict[str, float]:
    """Cost of the control-plane seam on a run where nothing ever fails.

    Times the Table-1 FIFO workload twice: once plain, once with an
    inert ``OutageSpec`` attached (one explicit outage scheduled far
    past the horizon, so the controller is built, every flow is
    tracked, and the timer is armed — but no event ever fires).  The
    tracked ``overhead_ratio`` is with/without wall clock; the seam's
    contract is that it stays ~1.0.
    """
    import dataclasses

    import repro.control  # noqa: F401  (one-time import cost off the clock)
    from repro.scenario import OutageEvent, OutageSpec

    def build(outages):
        spec = (
            ScenarioBuilder("perf-control-seam")
            .single_link()
            .paper_flows(num_flows)
            .disciplines(DisciplineSpec.fifo())
            .duration(duration)
            .warmup(0.0)
            .seed(1)
            .build()
        )
        return dataclasses.replace(spec, outages=outages)

    inert = OutageSpec(
        events=(OutageEvent(link="A->B", at=duration * 100.0, duration=1.0),)
    )
    specs = (("without", build(None)), ("with", build(inert)))
    walls = {key: [] for key, _ in specs}
    # Interleave best-of-3 so drift in machine load hits both arms alike.
    for _ in range(3):
        for key, spec in specs:
            started = time.perf_counter()
            ScenarioRunner(spec).run()
            walls[key].append(time.perf_counter() - started)
    out: Dict[str, float] = {"duration": duration}
    for key, _ in specs:
        out[f"{key}_wall_seconds"] = min(walls[key])
    out["overhead_ratio"] = out["with_wall_seconds"] / out["without_wall_seconds"]
    return out


def bench_queue_density(
    total_events: int = QUEUE_DENSITY_EVENTS, chains: int = RAW_EVENT_CHAINS
) -> Dict[str, Dict[str, float]]:
    """Heap vs calendar event-store throughput across time densities.

    Both stores run the identical self-rescheduling workload on the
    pure-Python engine (the compiled core is heap-only, so timing it here
    would attribute the C win to the calendar comparison).  *Dense* packs
    every pending event into a ~64 us band — the calendar's best case,
    one bucket sweep per pop.  *Sparse* spreads periods over five orders
    of magnitude, so bucket occupancy is wildly uneven and the resize
    heuristic has to keep the bucket width honest.
    """
    from repro.sim.engine import PySimulator

    def drive(queue: str, periods) -> float:
        sim = PySimulator(queue=queue)
        budget = [total_events]
        schedule = sim.schedule

        def make_chain(period: float) -> Callable[[], None]:
            def fire() -> None:
                if budget[0] > 0:
                    budget[0] -= 1
                    schedule(period, fire)

            return fire

        for period in periods:
            schedule(0.0, make_chain(period))
        started = time.perf_counter()
        sim.run_until_idle()
        elapsed = time.perf_counter() - started
        return sim.events_processed / elapsed

    dense = [0.001 + i * 1e-6 for i in range(chains)]
    sparse = [10.0 ** (-3 + (i % 6)) * (1.0 + i * 1e-3) for i in range(chains)]
    return {
        queue: {
            "dense_events_per_sec": drive(queue, dense),
            "sparse_events_per_sec": drive(queue, sparse),
        }
        for queue in ("heap", "calendar")
    }


def bench_batched_drain(
    total_packets: int = BATCH_DRAIN_PACKETS, burst: int = BATCH_DRAIN_BURST
) -> Dict[str, object]:
    """Burst-heavy FIFO link: batched vs per-packet service.

    Bursts of ``burst`` packets land on an idle megabit link with idle
    gaps between bursts — the shape the batched drain is built for
    (every packet after a burst's first is served arithmetically).  The
    per-packet arm runs the identical workload with the
    ``REPRO_BATCHED_LINKS=0`` kill switch, so the ratio isolates front
    (a) of the engine work from the compiled core and the event store:
    both arms run the authoritative pure-Python engine, where an elided
    completion event is a real dispatch saved.
    """
    import os

    from repro.net.link import Link
    from repro.net.node import Node
    from repro.net.packet import Packet
    from repro.net.port import OutputPort
    from repro.sched.fifo import FifoScheduler
    from repro.sim.engine import PySimulator

    class Sink(Node):
        def receive(self, packet: Packet) -> None:
            pass

    def drive(batching: bool) -> Dict[str, float]:
        saved = os.environ.get("REPRO_BATCHED_LINKS")
        os.environ["REPRO_BATCHED_LINKS"] = "1" if batching else "0"
        try:
            sim = PySimulator(queue="heap")
            link = Link(sim, "L", rate_bps=1_000_000.0)
            link.connect(Sink(sim, "sink"))
            port = OutputPort(sim, "P", FifoScheduler(), link, burst * 2)
        finally:
            if saved is None:
                os.environ.pop("REPRO_BATCHED_LINKS", None)
            else:
                os.environ["REPRO_BATCHED_LINKS"] = saved

        def arrival() -> None:
            now = sim.now
            for _ in range(burst):
                port.enqueue(
                    Packet(
                        flow_id="f",
                        size_bits=1000,
                        created_at=now,
                        source="s",
                        destination="d",
                    )
                )

        # 1 ms per packet on the wire; bursts every 100 ms drain in
        # ``burst`` ms, so the link idles between bursts.
        for index in range(total_packets // burst):
            sim.schedule(index * 0.1, arrival)
        started = time.perf_counter()
        sim.run_until_idle()
        elapsed = time.perf_counter() - started
        return {
            "packets": port.packets_out,
            "batched_departures": port.batched_departures,
            "wall_seconds": elapsed,
            "packets_per_sec": port.packets_out / elapsed,
        }

    batched = drive(True)
    per_packet = drive(False)
    return {
        "batched": batched,
        "per_packet": per_packet,
        "speedup": batched["packets_per_sec"] / per_packet["packets_per_sec"],
    }


def bench_table1(duration: float = TABLE_DURATION_SECONDS) -> Dict[str, float]:
    """Wall clock of a shortened Table-1 experiment (two full simulations)."""
    started = time.perf_counter()
    table1.run(duration=duration, seed=1)
    elapsed = time.perf_counter() - started
    return {"duration": duration, "wall_seconds": elapsed}


def bench_table3(duration: float = TABLE_DURATION_SECONDS) -> Dict[str, float]:
    """Wall clock of a shortened Table-3 experiment (unified + admission)."""
    started = time.perf_counter()
    table3.run(duration=duration, seed=1)
    elapsed = time.perf_counter() - started
    return {"duration": duration, "wall_seconds": elapsed}


def run_all(scale: float = 1.0) -> Dict[str, object]:
    """Run every microbench, optionally scaled down (``scale < 1``) for CI.

    Returns the nested measurement dict that ``tools/perf_report.py``
    embeds as the ``current`` block of ``BENCH_core.json``.
    """
    scale = max(scale, 0.01)
    return {
        "raw_events": bench_raw_events(
            total_events=max(int(RAW_EVENTS_TOTAL * scale), 1000)
        ),
        "timer_churn": bench_timer_churn(
            ops=max(int(TIMER_CHURN_OPS * scale), 1000)
        ),
        "scheduler_packets": bench_scheduler_packets(
            duration=max(SCHED_DURATION_SECONDS * scale, 0.5)
        ),
        "control_seam": bench_control_seam(
            duration=max(SCHED_DURATION_SECONDS * scale, 0.5)
        ),
        "queue_density": bench_queue_density(
            total_events=max(int(QUEUE_DENSITY_EVENTS * scale), 1000)
        ),
        "batched_drain": bench_batched_drain(
            total_packets=max(int(BATCH_DRAIN_PACKETS * scale), 1024)
        ),
        "table1": bench_table1(
            duration=max(TABLE_DURATION_SECONDS * scale, 1.0)
        ),
        "table3": bench_table3(
            duration=max(TABLE_DURATION_SECONDS * scale, 1.0)
        ),
    }


def _gate(report_path: str, measured_events_per_sec: float,
          tolerance: float = 0.25) -> int:
    """CI perf gate: fail if raw events/s regressed >``tolerance`` vs the
    committed ``BENCH_core.json`` floor.  Absolute rates are noisy across
    machines, but CI compares a checkout against a report captured in the
    same container image, where a 25% drop is a real regression."""
    import json

    with open(report_path) as handle:
        committed = json.load(handle)
    floor = committed["current"]["raw_events"]["events_per_sec"]
    threshold = floor * (1.0 - tolerance)
    verdict = "ok" if measured_events_per_sec >= threshold else "REGRESSION"
    print(
        f"perf gate: measured {measured_events_per_sec:,.0f} events/s vs "
        f"committed floor {floor:,.0f} (threshold {threshold:,.0f}): {verdict}"
    )
    return 0 if measured_events_per_sec >= threshold else 1


def main(argv=None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        description="Run the engine microbenches (optionally gating CI)."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="run at ~1/8 scale (CI sizing)",
    )
    parser.add_argument(
        "--gate", metavar="BENCH_CORE_JSON", default=None,
        help="compare raw events/s against the committed report and exit "
        "non-zero on a >25%% regression",
    )
    args = parser.parse_args(argv)
    scale = 0.125 if args.quick else 1.0
    if args.gate is not None:
        # The gate only needs the raw event loop — keep the CI step fast.
        measured = bench_raw_events(
            total_events=max(int(RAW_EVENTS_TOTAL * scale), 1000)
        )
        return _gate(args.gate, measured["events_per_sec"])
    print(json.dumps(run_all(scale=scale), indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
