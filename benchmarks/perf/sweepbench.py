"""Sweep-orchestration benchmarks: the executor vs the per-call Pool.

Each function measures one orchestration workload and returns a plain
dict (wall clocks, tasks per *wall-clock* second, pickled bytes shipped).
They are the raw material for ``tools/perf_report.py --suite sweep``,
which assembles the tracked ``BENCH_sweep.json`` trajectory, and for the
CI sweep-perf smoke step.

The pre-rewrite execution model is vendored here as :func:`legacy_sweep`
(a fresh ``multiprocessing.Pool`` per call, one coarse full-spec task per
run whose disciplines execute serially inside the worker, blocking
``pool.map``) so the identical workload can be timed against it on any
checkout — that is how the frozen ``baseline`` block of
``BENCH_sweep.json`` was captured (:func:`run_baseline`).

The headline comparison is honest about what changed: on a homogeneous
wide sweep executed to completion the two models do the same simulation
work, so ``wide_sweep`` mostly tracks dispatch overhead.  The structural
win is ``ladder_to_decision``: the executor streams results and stops the
seed ladder once the confidence interval closes, while the per-call-Pool
baseline has no streaming and must pay for the full ladder to reach the
same statistical decision.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, Optional, Sequence

from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioRunner,
    SweepExecutor,
    stop_when_ci_below,
)
from repro.scenario.sweep import expand

WORKERS = 4
NUM_FLOWS = 10
WIDE_SEEDS = 24
WIDE_DURATION_SECONDS = 20.0
TINY_DURATION_SECONDS = 1.0
TINY_SEEDS = 16
TINY_REPEATS = 3
CI_REL_HALF_WIDTH = 0.10
CI_MIN_RUNS = 6

DISCIPLINES = (
    DisciplineSpec.fifo(),
    DisciplineSpec.fifoplus(),
    DisciplineSpec.wfq(equal_share_flows=NUM_FLOWS),
)


def sweep_spec(duration: float = WIDE_DURATION_SECONDS) -> "ScenarioSpec":
    """The sweep workload: Table-1's bottleneck under three disciplines."""
    return (
        ScenarioBuilder("sweepbench")
        .single_link()
        .paper_flows(NUM_FLOWS)
        .disciplines(*DISCIPLINES)
        .duration(duration)
        .warmup(2.0)
        .seed(1)
        .build()
    )


# ----------------------------------------------------------------------
# The vendored pre-rewrite execution model
# ----------------------------------------------------------------------


def _legacy_run_spec(spec) -> "ScenarioResult":
    """Legacy coarse task: all disciplines serially inside one worker."""
    return ScenarioRunner(spec).run()


def legacy_sweep(
    spec,
    over=None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
):
    """The per-call-Pool sweep this PR replaced, kept for benchmarking:
    expand to full specs, fork a fresh pool, one pickled spec per task,
    block on ``pool.map``."""
    specs = expand(spec, over=over, seeds=seeds)
    if workers and workers > 1 and len(specs) > 1:
        import multiprocessing

        with multiprocessing.Pool(min(workers, len(specs))) as pool:
            return pool.map(_legacy_run_spec, specs, chunksize=1)
    return [_legacy_run_spec(s) for s in specs]


def _ladder_metric(result) -> float:
    """The seed-ladder estimand: FIFO's mean queueing delay on flow-0."""
    return result.run("FIFO").flow("flow-0").mean_seconds


# ----------------------------------------------------------------------
# Executor-side benches (the ``current`` block)
# ----------------------------------------------------------------------


def bench_wide_sweep(
    duration: float = WIDE_DURATION_SECONDS,
    seed_count: int = WIDE_SEEDS,
    workers: int = WORKERS,
) -> Dict[str, float]:
    """Full wide sweep (seed_count runs x 3 disciplines), run to the end."""
    spec = sweep_spec(duration)
    seeds = list(range(1, seed_count + 1))
    with SweepExecutor(workers=workers) as executor:
        started = time.perf_counter()
        outcome = executor.run_sweep(spec, seeds=seeds)
        wall = time.perf_counter() - started
    tasks = sum(len(run.tasks) for run in outcome.runs)
    return {
        "runs": len(outcome.runs),
        "disciplines": len(spec.disciplines),
        "tasks": tasks,
        "workers": workers,
        "wall_seconds": wall,
        "tasks_per_sec": tasks / wall,
    }


def bench_ladder_to_decision(
    duration: float = WIDE_DURATION_SECONDS,
    seed_count: int = WIDE_SEEDS,
    workers: int = WORKERS,
) -> Dict[str, float]:
    """The same ladder, stopped once the confidence interval closes.

    The statistical decision is fixed (CI half-width <= 10 % of the mean,
    >= 6 replicates); the executor reaches it after a fraction of the
    ladder, the baseline model can only reach it by running everything.
    """
    spec = sweep_spec(duration)
    seeds = list(range(1, seed_count + 1))
    predicate = stop_when_ci_below(
        _ladder_metric,
        rel_half_width=CI_REL_HALF_WIDTH,
        min_runs=CI_MIN_RUNS,
    )
    with SweepExecutor(workers=workers) as executor:
        started = time.perf_counter()
        outcome = executor.run_sweep(spec, seeds=seeds, early_stop=predicate)
        wall = time.perf_counter() - started
        executed = executor.stats["tasks_dispatched"]
    counts = outcome.counts
    return {
        "seeds_available": seed_count,
        "runs_completed": counts["completed"],
        "runs_stopped": counts["stopped"],
        "tasks_executed": executed,
        "rel_half_width": CI_REL_HALF_WIDTH,
        "min_runs": CI_MIN_RUNS,
        "workers": workers,
        "wall_seconds": wall,
    }


def bench_task_overhead(
    duration: float = TINY_DURATION_SECONDS,
    seed_count: int = TINY_SEEDS,
    repeats: int = TINY_REPEATS,
    workers: int = WORKERS,
) -> Dict[str, float]:
    """Orchestration overhead: repeated short sweeps on tiny simulations.

    The executor keeps one warm pool across all the sweeps; the legacy
    model forked and tore a pool down per call.  Tiny simulations make
    the dispatch/collection machinery the dominant cost.
    """
    spec = sweep_spec(duration)
    seeds = list(range(1, seed_count + 1))
    with SweepExecutor(workers=workers) as executor:
        started = time.perf_counter()
        for _ in range(repeats):
            executor.run_sweep(spec, seeds=seeds)
        wall = time.perf_counter() - started
        pools = executor.stats["pools_created"]
        tasks = executor.stats["tasks_dispatched"]
    return {
        "sweeps": repeats,
        "tasks": tasks,
        "pools_created": pools,
        "workers": workers,
        "wall_seconds": wall,
        "tasks_per_sec": tasks / wall,
    }


def bench_task_pickle(duration: float = WIDE_DURATION_SECONDS) -> Dict[str, float]:
    """Bytes crossing the process boundary per schedulable task.

    Executor tasks are (override, seed, discipline-index) deltas against a
    base spec shipped once per worker; legacy tasks each carried the full
    pickled spec (and bundled all disciplines, so per *schedulable* unit
    the legacy bytes are the whole spec too).
    """
    spec = sweep_spec(duration)
    with SweepExecutor(workers=2, track_task_bytes=True) as executor:
        executor.run_sweep(spec, seeds=[1, 2, 3, 4])
        stats = dict(executor.stats)
    legacy_bytes = len(pickle.dumps(spec, pickle.HIGHEST_PROTOCOL))
    return {
        "legacy_bytes_per_task": legacy_bytes,
        "executor_bytes_per_task": (
            stats["task_bytes"] / stats["tasks_dispatched"]
        ),
        "executor_base_bytes_per_worker": stats["base_bytes"] / 2,
    }


def bench_override_pickle(
    duration: float = TINY_DURATION_SECONDS,
) -> Dict[str, float]:
    """Bytes shipped for a *whole-spec override* sweep (the ``gen:*``
    shape, where every run replaces the entire spec).

    Before the fingerprint cache each task payload carried a full pickled
    spec; now each distinct spec ships once per worker at pool start and
    payloads carry a ~60-byte reference, so re-sweeping the same specs
    (seed ladders, early-stop reruns) re-ships nothing.
    """
    from repro.scenario import registry

    specs = [
        registry.build(
            "gen:random-graph", gen_seed=g, duration=duration, warmup=0.2
        )
        for g in (1, 2, 3)
    ]
    with SweepExecutor(workers=2, track_task_bytes=True) as executor:
        executor.run_sweep(specs[0], over=specs)
        executor.run_sweep(specs[0], over=specs)  # pool + spec-table reuse
        stats = dict(executor.stats)
    naive_bytes = sum(
        len(pickle.dumps(s, pickle.HIGHEST_PROTOCOL)) for s in specs
    ) / len(specs)
    return {
        "override_specs": len(specs),
        "sweeps": 2,
        "pools_created": stats["pools_created"],
        "naive_bytes_per_task": naive_bytes,
        "executor_bytes_per_task": (
            stats["task_bytes"] / stats["tasks_dispatched"]
        ),
        "override_bytes_per_worker": stats["override_bytes"] / 2,
    }


def run_all(scale: float = 1.0) -> Dict[str, object]:
    """Run every sweep bench, optionally scaled down (``scale < 1``).

    Returns the nested measurement dict that ``tools/perf_report.py
    --suite sweep`` embeds as the ``current`` block of
    ``BENCH_sweep.json``.  Scaling shortens simulated durations but keeps
    the sweep *shape* (24 runs x 3 disciplines, 4 workers) so the
    orchestration being measured stays the same.
    """
    scale = max(scale, 0.01)
    wide_duration = max(WIDE_DURATION_SECONDS * scale, 2.0)
    tiny_duration = max(TINY_DURATION_SECONDS * scale, 0.25)
    return {
        "wide_sweep": bench_wide_sweep(duration=wide_duration),
        "ladder_to_decision": bench_ladder_to_decision(duration=wide_duration),
        "task_overhead": bench_task_overhead(duration=tiny_duration),
        "task_pickle": bench_task_pickle(duration=wide_duration),
        "override_pickle": bench_override_pickle(duration=tiny_duration),
    }


# ----------------------------------------------------------------------
# Baseline capture (the pre-rewrite model, frozen once per machine)
# ----------------------------------------------------------------------


def run_baseline(scale: float = 1.0) -> Dict[str, object]:
    """Measure the per-call-Pool model on the same workloads.

    This produced ``benchmarks/perf/baseline_sweep_precall_pool.json``.
    ``ladder_to_decision`` is the full ladder by construction: blocking
    ``pool.map`` has no streaming, so reaching the confidence-interval
    decision means running every seed.
    """
    scale = max(scale, 0.01)
    wide_duration = max(WIDE_DURATION_SECONDS * scale, 2.0)
    tiny_duration = max(TINY_DURATION_SECONDS * scale, 0.25)

    spec = sweep_spec(wide_duration)
    seeds = list(range(1, WIDE_SEEDS + 1))
    started = time.perf_counter()
    results = legacy_sweep(spec, seeds=seeds, workers=WORKERS)
    wide_wall = time.perf_counter() - started
    tasks = len(results) * len(spec.disciplines)

    tiny = sweep_spec(tiny_duration)
    tiny_seeds = list(range(1, TINY_SEEDS + 1))
    started = time.perf_counter()
    for _ in range(TINY_REPEATS):
        legacy_sweep(tiny, seeds=tiny_seeds, workers=WORKERS)
    tiny_wall = time.perf_counter() - started
    tiny_tasks = TINY_REPEATS * TINY_SEEDS * len(tiny.disciplines)

    return {
        "wide_sweep": {
            "runs": len(results),
            "disciplines": len(spec.disciplines),
            "tasks": tasks,
            "workers": WORKERS,
            "wall_seconds": wide_wall,
            "tasks_per_sec": tasks / wide_wall,
        },
        "ladder_to_decision": {
            "seeds_available": WIDE_SEEDS,
            "runs_completed": WIDE_SEEDS,
            "runs_stopped": 0,
            "tasks_executed": tasks,
            "rel_half_width": CI_REL_HALF_WIDTH,
            "min_runs": CI_MIN_RUNS,
            "workers": WORKERS,
            "wall_seconds": wide_wall,
            "note": "no streaming/early stop: the decision costs the full ladder",
        },
        "task_overhead": {
            "sweeps": TINY_REPEATS,
            "tasks": tiny_tasks,
            "pools_created": TINY_REPEATS,
            "workers": WORKERS,
            "wall_seconds": tiny_wall,
            "tasks_per_sec": tiny_tasks / tiny_wall,
        },
        "task_pickle": {
            "bytes_per_task": len(pickle.dumps(spec, pickle.HIGHEST_PROTOCOL)),
        },
    }
