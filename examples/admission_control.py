#!/usr/bin/env python3
"""Watching measurement-based admission control fill a link (Section 9).

A sequence of clients asks the network for service on the Figure-1 chain:
a few guaranteed video feeds, then wave after wave of predicted voice
flows.  The controller applies the paper's two criteria at every hop —

  (1)  r + nu_hat < 90 % of the link     (the datagram quota), and
  (2)  b < (D_j - d_hat_j)(mu - nu_hat - r) for every class j at or below
       the requested priority

— where nu_hat and d_hat_j are *measured*, not declared.  The whole
network (topology, unified schedulers, measurement-backed admission) is
one declarative spec; the request waves, hang-ups, and retry run through
the live :class:`ScenarioContext`, whose ``add_flow``/``remove_flow`` is
the same signaling path the dynamics experiment uses.  The example prints
every verdict, then the final reservation ledger, demonstrating: early
requests sail through, the link saturates, late requests are turned away
with a reason, and teardown makes room again.

Run:  python examples/admission_control.py [--wave-seconds 10]
"""

import argparse

from repro import (
    DisciplineSpec,
    GuaranteedRequest,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioRunner,
)
from repro.core.signaling import FlowEstablishmentError
from repro.scenario import FlowSpec

PACKET_BITS = 1000
VOICE_RATE_PPS = 85.0
CLASS_BOUNDS = (0.15, 1.5)
SEED = 3


def voice_flow(flow_id: str, hops: int) -> FlowSpec:
    return FlowSpec(
        name=flow_id,
        source_host="Host-1",
        dest_host="Host-5",
        average_rate_pps=VOICE_RATE_PPS,
        record=False,
        request=PredictedRequest(
            token_rate_bps=VOICE_RATE_PPS * PACKET_BITS,
            bucket_depth_bits=50 * PACKET_BITS,
            target_delay_seconds=1.5 * hops,  # the cheap class
            target_loss_rate=0.01,
        ),
    )


def video_flow(flow_id: str) -> FlowSpec:
    return FlowSpec(
        name=flow_id,
        source_host="Host-1",
        dest_host="Host-5",
        request=GuaranteedRequest(clock_rate_bps=300_000),
    )


def main(wave_seconds: float = 10.0) -> None:
    spec = (
        ScenarioBuilder("admission-control")
        .paper_chain()
        .discipline(DisciplineSpec.unified(num_predicted_classes=2))
        .admission(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
        .duration(10_000.0)  # open-ended; the phases drive the clock
        .seed(SEED)
        .build()
    )
    context = ScenarioRunner(spec).build()
    admission = context.admission

    accepted: list[str] = []
    rejected: list[tuple[str, str]] = []

    def request(flow: FlowSpec, start_traffic: bool = True) -> bool:
        try:
            if start_traffic:
                context.add_flow(flow)
                grant = context.grants[flow.name]
            else:
                grant = context.establish(flow)
        except FlowEstablishmentError as error:
            reason = (
                error.decisions[-1].verdict.value
                if error.decisions
                else str(error)
            )
            rejected.append((flow.name, reason))
            print(f"  REJECT {flow.name:<12} {reason}")
            return False
        accepted.append(flow.name)
        kind = grant.service_class.name.lower()
        extra = (
            f"class {grant.priority_class}"
            if grant.priority_class is not None
            else "WFQ rate installed"
        )
        print(f"  accept {flow.name:<12} {kind}, {extra}")
        return True

    # --- phase 1: two guaranteed video feeds ---------------------------
    print("phase 1 — guaranteed video feeds (clock rate 300 kbit/s each):")
    for i in range(2):
        request(video_flow(f"video-{i}"), start_traffic=False)
    # A third 300k feed would push reservations past the 90 % quota.
    request(video_flow("video-2"), start_traffic=False)

    # --- phase 2: predicted voice until the measured link refuses ------
    print("\nphase 2 — predicted voice flows (85 kbit/s token rate each),")
    print("admitting against *measured* load, "
          f"{wave_seconds:.0f} s of traffic between asks:")
    wave = 0
    while wave < 12:
        ok = request(voice_flow(f"voice-{wave}", hops=4))
        wave += 1
        if not ok:
            break
        # Let the measurements see the new flow before the next ask.
        context.run(until=context.sim.now + wave_seconds)

    # --- phase 3: teardown makes room -----------------------------------
    # Hang up three calls (stop the traffic AND release the commitments),
    # let the measurement window forget their load, then retry.
    print("\nphase 3 — three callers hang up; retry the refused request:")
    for flow_id in accepted[-3:]:
        if flow_id in context.sources:
            context.remove_flow(flow_id)
            print(f"  hangup {flow_id}")
    context.run(until=context.sim.now + 3 * wave_seconds)  # > the window
    retry_id = (rejected[-1][0] if rejected else "voice-extra") + "-retry"
    request(voice_flow(retry_id, hops=4))

    # --- ledger ----------------------------------------------------------
    print("\nreservation ledger (link S-1->S-2):")
    reserved = admission.reserved_guaranteed_bps("S-1->S-2")
    measurement = admission._measurements["S-1->S-2"]
    nu_hat = measurement.realtime_utilization_bps(context.sim.now)
    print(f"  guaranteed reservations: {reserved / 1000:.0f} kbit/s")
    print(f"  measured real-time load: {nu_hat / 1000:.0f} kbit/s "
          f"({nu_hat / 1_000_000:.0%} of the link)")
    print(f"  accepted {len(accepted)} flows, refused {len(rejected)}")
    print(f"  decisions at S-1->S-2: "
          f"{len(admission.decisions_for('S-1->S-2'))} recorded")
    print("\nshape to notice: acceptance is driven by measured load plus")
    print("worst-case treatment of the newcomer only, and the 10% datagram")
    print("quota is never given away.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--wave-seconds", type=float, default=10.0,
                        help="simulated seconds between requests (default 10)")
    main(parser.parse_args().wave_seconds)
