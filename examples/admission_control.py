#!/usr/bin/env python3
"""Watching measurement-based admission control fill a link (Section 9).

A sequence of clients asks the network for service on the Figure-1 chain:
a few guaranteed video feeds, then wave after wave of predicted voice
flows.  The controller applies the paper's two criteria at every hop —

  (1)  r + nu_hat < 90 % of the link     (the datagram quota), and
  (2)  b < (D_j - d_hat_j)(mu - nu_hat - r) for every class j at or below
       the requested priority

— where nu_hat and d_hat_j are *measured*, not declared.  The example
prints every verdict, then the final reservation ledger, demonstrating:
early requests sail through, the link saturates, late requests are turned
away with a reason, and teardown makes room again.

Run:  python examples/admission_control.py
"""

from repro import (
    AdmissionConfig,
    AdmissionController,
    FlowSpec,
    GuaranteedServiceSpec,
    OnOffMarkovSource,
    PredictedServiceSpec,
    RandomStreams,
    ServiceClass,
    SignalingAgent,
    Simulator,
    UnifiedConfig,
    UnifiedScheduler,
    paper_figure1_topology,
)
from repro.core.measurement import SwitchMeasurement
from repro.core.signaling import FlowEstablishmentError

PACKET_BITS = 1000
VOICE_RATE_PPS = 85.0
CLASS_BOUNDS = (0.15, 1.5)
SEED = 3


def voice_spec(hops: int) -> PredictedServiceSpec:
    return PredictedServiceSpec(
        token_rate_bps=VOICE_RATE_PPS * PACKET_BITS,
        bucket_depth_bits=50 * PACKET_BITS,
        target_delay_seconds=1.5 * hops,  # the cheap class
        target_loss_rate=0.01,
    )


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=SEED)
    net = paper_figure1_topology(
        sim,
        lambda name, link: UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=2)
        ),
    )
    admission = AdmissionController(
        AdmissionConfig(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
    )
    for link_name, port in net.ports.items():
        admission.attach_measurement(link_name, SwitchMeasurement(port))
    signaling = SignalingAgent(net, admission)

    accepted: list[str] = []
    rejected: list[tuple[str, str]] = []

    def request(flow: FlowSpec, start_traffic: bool = True) -> bool:
        try:
            grant = signaling.establish(flow)
        except FlowEstablishmentError as error:
            reason = (
                error.decisions[-1].verdict.value
                if error.decisions
                else str(error)
            )
            rejected.append((flow.flow_id, reason))
            print(f"  REJECT {flow.flow_id:<12} {reason}")
            return False
        accepted.append(flow.flow_id)
        kind = grant.service_class.name.lower()
        extra = (
            f"class {grant.priority_class}"
            if grant.priority_class is not None
            else "WFQ rate installed"
        )
        print(f"  accept {flow.flow_id:<12} {kind}, {extra}")
        if start_traffic and isinstance(flow.spec, PredictedServiceSpec):
            sources[flow.flow_id] = OnOffMarkovSource.paper_source(
                sim,
                net.hosts[flow.source],
                flow.flow_id,
                flow.destination,
                streams.stream(flow.flow_id),
                average_rate_pps=VOICE_RATE_PPS,
                service_class=ServiceClass.PREDICTED,
                priority_class=grant.priority_class or 0,
            )
            net.hosts[flow.destination].default_handler = lambda packet: None
        return True

    sources: dict[str, OnOffMarkovSource] = {}

    # --- phase 1: two guaranteed video feeds ---------------------------
    print("phase 1 — guaranteed video feeds (clock rate 300 kbit/s each):")
    for i in range(2):
        request(
            FlowSpec(
                flow_id=f"video-{i}",
                source="Host-1",
                destination="Host-5",
                spec=GuaranteedServiceSpec(clock_rate_bps=300_000),
            ),
            start_traffic=False,
        )
    # A third 300k feed would push reservations past the 90 % quota.
    request(
        FlowSpec(
            flow_id="video-2",
            source="Host-1",
            destination="Host-5",
            spec=GuaranteedServiceSpec(clock_rate_bps=300_000),
        ),
        start_traffic=False,
    )

    # --- phase 2: predicted voice until the measured link refuses ------
    print("\nphase 2 — predicted voice flows (85 kbit/s token rate each),")
    print("admitting against *measured* load, 10 s of traffic between asks:")
    wave = 0
    while wave < 12:
        flow_id = f"voice-{wave}"
        ok = request(
            FlowSpec(
                flow_id=flow_id,
                source="Host-1",
                destination="Host-5",
                spec=voice_spec(hops=4),
            )
        )
        wave += 1
        if not ok:
            break
        sim.run(until=sim.now + 10.0)  # let measurements see the new flow

    # --- phase 3: teardown makes room -----------------------------------
    # Hang up three calls (stop the traffic AND release the commitments),
    # let the measurement window forget their load, then retry.
    print("\nphase 3 — three callers hang up; retry the refused request:")
    for flow_id in accepted[-3:]:
        if flow_id in sources:
            sources[flow_id].stop()
            signaling.teardown(flow_id)
            print(f"  hangup {flow_id}")
    sim.run(until=sim.now + 30.0)  # > the 10 s utilization window
    retry_id = rejected[-1][0] + "-retry"
    request(
        FlowSpec(
            flow_id=retry_id,
            source="Host-1",
            destination="Host-5",
            spec=voice_spec(hops=4),
        )
    )

    # --- ledger ----------------------------------------------------------
    print("\nreservation ledger (link S-1->S-2):")
    reserved = admission.reserved_guaranteed_bps("S-1->S-2")
    measurement = admission._measurements["S-1->S-2"]
    nu_hat = measurement.realtime_utilization_bps(sim.now)
    print(f"  guaranteed reservations: {reserved / 1000:.0f} kbit/s")
    print(f"  measured real-time load: {nu_hat / 1000:.0f} kbit/s "
          f"({nu_hat / 1_000_000:.0%} of the link)")
    print(f"  accepted {len(accepted)} flows, refused {len(rejected)}")
    print("\nshape to notice: acceptance is driven by measured load plus")
    print("worst-case treatment of the newcomer only, and the 10% datagram")
    print("quota is never given away.")


if __name__ == "__main__":
    main()
