#!/usr/bin/env python3
"""Pricing an integrated-services link (Section 12).

The paper's closing argument: "If all services are free, there is no
incentive to request less than the best service the network can provide."
Predicted service — and the cheaper, higher-jitter classes within it — is
viable *because* it is priced below guaranteed service.

This example runs a mixed population on one bottleneck link and produces
the month-end bill.  The population is a declarative
:class:`~repro.scenario.ScenarioSpec`:

* one guaranteed video feed — a :class:`GuaranteedRequest` in the spec
  installs its WFQ clock rate at the bottleneck, and the meter opens a
  standing reservation charge for it (reserved capacity costs money
  whether used or not);
* predicted voice flows in the expensive low-jitter class and the cheap
  high-jitter class (per-flow ``priority_class`` in the spec);
* best-effort datagram bulk transfer at the floor price, injected through
  the live :class:`~repro.scenario.ScenarioContext`.

The :class:`~repro.core.pricing.UsageMeter` attaches to the bottleneck
port of the built context before the run — billing is orchestration, not
topology, so it stays outside the spec.

The printout shows each flow's delivered quality (mean / 99.9 %ile delay)
next to its charge — the quality/price menu that makes clients
self-select, which is what lets the network run near full utilization.

Run:  python examples/pricing_accounting.py [--duration 120]
"""

import argparse

from repro import (
    DelayRecordingSink,
    DisciplineSpec,
    GuaranteedRequest,
    ScenarioBuilder,
    ScenarioRunner,
    ServiceClass,
)
from repro.core.pricing import Tariff, UsageMeter
from repro.transport.udp import UdpSender

PACKET_BITS = 1000
LINK_BPS = 1_000_000
TX = PACKET_BITS / LINK_BPS
DURATION = 120.0
WARMUP = 5.0
SEED = 21
BOTTLENECK = "A->B"
VIDEO_CLOCK_BPS = 200_000

TARIFF = Tariff(
    guaranteed_per_mbit=10.0,
    predicted_per_mbit=(6.0, 3.0),  # low-jitter class twice the price
    datagram_per_mbit=1.0,
    reservation_per_mbit_second=2.0,
)

# (flow, kind, priority class) — the priced quality menu.
POPULATION = [
    ("video", "guaranteed", 0),
    ("voice-premium-1", "predicted", 0),
    ("voice-premium-2", "predicted", 0),
    ("voice-budget-1", "predicted", 1),
    ("voice-budget-2", "predicted", 1),
    ("voice-budget-3", "predicted", 1),
]


def priced_spec(duration: float):
    """The whole priced population as one declarative scenario."""
    builder = (
        ScenarioBuilder("pricing-accounting")
        .single_link(rate_bps=LINK_BPS)
        .discipline(DisciplineSpec.unified(num_predicted_classes=2))
        .duration(duration)
        .warmup(WARMUP)
        .seed(SEED)
    )
    for flow_id, kind, priority in POPULATION:
        if kind == "guaranteed":
            builder.add_flow(
                flow_id,
                "src-host",
                "dst-host",
                average_rate_pps=170.0,
                # No admission controller in the spec, so the request
                # installs its clock rate directly at every hop.
                request=GuaranteedRequest(clock_rate_bps=VIDEO_CLOCK_BPS),
            )
        else:
            builder.add_flow(
                flow_id,
                "src-host",
                "dst-host",
                average_rate_pps=85.0,
                service_class=ServiceClass.PREDICTED,
                priority_class=priority,
            )
    return builder.build()


def main(duration: float = DURATION) -> None:
    context = ScenarioRunner(priced_spec(duration)).build()
    meter = UsageMeter(TARIFF)
    meter.attach(context.net.port_for_link(BOTTLENECK))
    meter.open_reservation("video", VIDEO_CLOCK_BPS, now=0.0)

    # Background bulk transfer: 100 datagrams a second, price floor.
    bulk = UdpSender(context.sim, context.net.hosts["src-host"], "bulk",
                     "dst-host")

    def send_bulk():
        bulk.send()
        context.sim.schedule(0.01, send_bulk)

    context.sim.schedule(0.0, send_bulk)
    context.sinks["bulk"] = DelayRecordingSink(
        context.sim, context.net.hosts["dst-host"], "bulk", warmup=WARMUP
    )

    print(f"simulating {duration:.0f} s of a priced integrated-services "
          "link ...\n")
    context.run()
    meter.settle(now=duration)

    print(f"{'flow':>16} {'service':>18} {'mean':>6} {'99.9%':>7} "
          f"{'Mbit':>6} {'usage':>7} {'resv':>6} {'total':>7}")
    label = {
        ("predicted", 0): "predicted class 0",
        ("predicted", 1): "predicted class 1",
    }
    for flow_id, kind, priority in POPULATION + [("bulk", "datagram", 0)]:
        invoice = meter.invoice_of(flow_id)
        sink = context.sinks[flow_id]
        service = (
            "guaranteed" if kind == "guaranteed"
            else "datagram" if kind == "datagram"
            else label[(kind, priority)]
        )
        print(
            f"{flow_id:>16} {service:>18} "
            f"{sink.mean_queueing(TX):>6.2f} "
            f"{sink.percentile_queueing(99.9, TX):>7.2f} "
            f"{invoice.usage_bits / 1e6:>6.2f} "
            f"{invoice.usage_charge:>7.2f} "
            f"{invoice.reservation_charge:>6.2f} "
            f"{invoice.total:>7.2f}"
        )
    print(f"\ntotal revenue: {meter.total_revenue():.2f} units")
    print("\nshape to notice: better delay tails cost strictly more per "
          "megabit, and\nthe guaranteed flow pays for its reservation even "
          "when its bursts are idle\n— the incentive structure that makes "
          "clients choose predicted service.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION,
                        help="simulated seconds (default 120)")
    main(parser.parse_args().duration)
