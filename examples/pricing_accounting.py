#!/usr/bin/env python3
"""Pricing an integrated-services link (Section 12).

The paper's closing argument: "If all services are free, there is no
incentive to request less than the best service the network can provide."
Predicted service — and the cheaper, higher-jitter classes within it — is
viable *because* it is priced below guaranteed service.

This example runs a mixed population on one bottleneck link and produces
the month-end bill:

* one guaranteed video feed (usage at the premium rate PLUS a standing
  reservation charge for its clock rate — reserved capacity costs money
  whether used or not);
* predicted voice flows in the expensive low-jitter class and the cheap
  high-jitter class;
* best-effort datagram bulk transfer at the floor price.

The printout shows each flow's delivered quality (mean / 99.9 %ile delay)
next to its charge — the quality/price menu that makes clients
self-select, which is what lets the network run near full utilization.

Run:  python examples/pricing_accounting.py
"""

from repro import (
    DelayRecordingSink,
    OnOffMarkovSource,
    RandomStreams,
    ServiceClass,
    Simulator,
    UnifiedConfig,
    UnifiedScheduler,
    single_link_topology,
)
from repro.core.pricing import Tariff, UsageMeter
from repro.transport.udp import UdpSender

PACKET_BITS = 1000
LINK_BPS = 1_000_000
TX = PACKET_BITS / LINK_BPS
DURATION = 120.0
SEED = 21

TARIFF = Tariff(
    guaranteed_per_mbit=10.0,
    predicted_per_mbit=(6.0, 3.0),  # low-jitter class twice the price
    datagram_per_mbit=1.0,
    reservation_per_mbit_second=2.0,
)

# (flow, kind, priority class or clock rate)
POPULATION = [
    ("video", "guaranteed", 200_000),  # clock rate 200 kbit/s
    ("voice-premium-1", "predicted", 0),
    ("voice-premium-2", "predicted", 0),
    ("voice-budget-1", "predicted", 1),
    ("voice-budget-2", "predicted", 1),
    ("voice-budget-3", "predicted", 1),
]


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=SEED)
    schedulers = []

    def factory(name, link):
        sched = UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=2)
        )
        schedulers.append(sched)
        return sched

    net = single_link_topology(sim, factory, rate_bps=LINK_BPS)
    meter = UsageMeter(TARIFF)
    meter.attach(net.port_for_link("A->B"))

    sinks = {}
    for flow_id, kind, parameter in POPULATION:
        if kind == "guaranteed":
            schedulers[0].install_guaranteed_flow(flow_id, parameter)
            meter.open_reservation(flow_id, parameter, now=0.0)
            service_class, priority = ServiceClass.GUARANTEED, 0
            rate_pps = 170.0
        else:
            service_class, priority = ServiceClass.PREDICTED, parameter
            rate_pps = 85.0
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(flow_id),
            average_rate_pps=rate_pps,
            service_class=service_class,
            priority_class=priority,
        )
        sinks[flow_id] = DelayRecordingSink(
            sim, net.hosts["dst-host"], flow_id, warmup=5.0
        )

    # Background bulk transfer: 100 datagrams a second, price floor.
    bulk = UdpSender(sim, net.hosts["src-host"], "bulk", "dst-host")
    def send_bulk():
        bulk.send()
        sim.schedule(0.01, send_bulk)
    sim.schedule(0.0, send_bulk)
    sinks["bulk"] = DelayRecordingSink(
        sim, net.hosts["dst-host"], "bulk", warmup=5.0
    )

    print(f"simulating {DURATION:.0f} s of a priced integrated-services "
          "link ...\n")
    sim.run(until=DURATION)
    meter.settle(now=DURATION)

    print(f"{'flow':>16} {'service':>18} {'mean':>6} {'99.9%':>7} "
          f"{'Mbit':>6} {'usage':>7} {'resv':>6} {'total':>7}")
    kind_of = {flow_id: kind for flow_id, kind, __ in POPULATION}
    label = {
        ("predicted", 0): "predicted class 0",
        ("predicted", 1): "predicted class 1",
    }
    for flow_id, kind, parameter in POPULATION + [("bulk", "datagram", 0)]:
        invoice = meter.invoice_of(flow_id)
        sink = sinks[flow_id]
        service = (
            "guaranteed" if kind == "guaranteed"
            else "datagram" if kind == "datagram"
            else label[(kind, parameter)]
        )
        print(
            f"{flow_id:>16} {service:>18} "
            f"{sink.mean_queueing(TX):>6.2f} "
            f"{sink.percentile_queueing(99.9, TX):>7.2f} "
            f"{invoice.usage_bits / 1e6:>6.2f} "
            f"{invoice.usage_charge:>7.2f} "
            f"{invoice.reservation_charge:>6.2f} "
            f"{invoice.total:>7.2f}"
        )
    print(f"\ntotal revenue: {meter.total_revenue():.2f} units")
    print("\nshape to notice: better delay tails cost strictly more per "
          "megabit, and\nthe guaranteed flow pays for its reservation even "
          "when its bursts are idle\n— the incentive structure that makes "
          "clients choose predicted service.")


if __name__ == "__main__":
    main()
