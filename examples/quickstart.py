#!/usr/bin/env python3
"""Quickstart: the paper's core claim on one shared link in ~40 lines.

Ten bursty voice-like sources share a 1 Mbit/s link at ~83.5 % load.  We
run the identical arrival process under WFQ (isolation) and FIFO (sharing)
and print each discipline's mean and 99.9th-percentile queueing delay.

Expected shape (Table 1 of the paper): the means match, but FIFO's tail is
far smaller — when every client is in the same boat, sharing the jitter
beats isolating it.

Run:  python examples/quickstart.py
"""

from repro import (
    DelayRecordingSink,
    FifoScheduler,
    OnOffMarkovSource,
    RandomStreams,
    Simulator,
    WfqScheduler,
    single_link_topology,
)

NUM_FLOWS = 10
LINK_BPS = 1_000_000
TX_TIME = 1000 / LINK_BPS  # one packet transmission time = 1 ms
DURATION = 120.0  # simulated seconds
SEED = 42


def run(discipline: str) -> tuple[float, float]:
    """Simulate one discipline; returns (mean, p99.9) in tx-time units."""
    sim = Simulator()
    streams = RandomStreams(seed=SEED)  # same seed -> same arrivals

    if discipline == "WFQ":
        factory = lambda name, link: WfqScheduler(
            link.rate_bps, auto_register_rate=link.rate_bps / NUM_FLOWS
        )
    else:
        factory = lambda name, link: FifoScheduler()

    net = single_link_topology(sim, factory, rate_bps=LINK_BPS)
    sinks = []
    for i in range(NUM_FLOWS):
        flow_id = f"voice-{i}"
        # The paper's source: two-state Markov, A = 85 pkt/s, bursts of
        # mean 5 packets at twice the average rate, (A, 50) token bucket.
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(flow_id),
        )
        sinks.append(
            DelayRecordingSink(sim, net.hosts["dst-host"], flow_id, warmup=5.0)
        )
    sim.run(until=DURATION)
    sample = sinks[0]
    return (
        sample.mean_queueing(TX_TIME),
        sample.percentile_queueing(99.9, TX_TIME),
    )


def main() -> None:
    print(f"10 bursty flows on one 1 Mbit/s link, {DURATION:.0f} s simulated")
    print(f"{'discipline':>10}  {'mean':>6}  {'99.9 %ile':>9}   (tx times)")
    for discipline in ("WFQ", "FIFO"):
        mean, p999 = run(discipline)
        print(f"{discipline:>10}  {mean:6.2f}  {p999:9.2f}")
    print("\npaper (Table 1):  WFQ 3.16 / 53.86   FIFO 3.17 / 34.72")
    print("shape to notice: equal means, but FIFO's tail is much smaller.")


if __name__ == "__main__":
    main()
