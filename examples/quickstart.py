#!/usr/bin/env python3
"""Quickstart: the paper's core claim on one shared link, declaratively.

Ten bursty voice-like sources share a 1 Mbit/s link at ~83.5 % load.  The
whole experiment is one :class:`ScenarioSpec` — topology, flows, and both
disciplines; the runner executes the identical arrival process under WFQ
(isolation) and FIFO (sharing) and returns structured per-flow results.

Expected shape (Table 1 of the paper): the means match, but FIFO's tail is
far smaller — when every client is in the same boat, sharing the jitter
beats isolating it.

Run:  python examples/quickstart.py
"""

from repro import DisciplineSpec, ScenarioBuilder, ScenarioRunner

NUM_FLOWS = 10
TX_TIME = 0.001  # one packet transmission time on a 1 Mbit/s link
DURATION = 120.0  # simulated seconds
SEED = 42

# The paper's workload in one declaration: the Table-1 bottleneck link and
# ten Appendix sources (two-state Markov, A = 85 pkt/s, bursts of mean 5
# packets at twice the average rate, (A, 50) token bucket).
SPEC = (
    ScenarioBuilder("quickstart")
    .single_link()
    .paper_flows(NUM_FLOWS, prefix="voice-")
    .disciplines(
        DisciplineSpec.wfq(equal_share_flows=NUM_FLOWS),
        DisciplineSpec.fifo(),
    )
    .duration(DURATION)
    .seed(SEED)  # same seed -> same arrivals under every discipline
    .build()
)


def main(duration: float = DURATION) -> None:
    spec = SPEC.replace(duration=duration)
    print(f"10 bursty flows on one 1 Mbit/s link, {duration:.0f} s simulated")
    print(f"{'discipline':>10}  {'mean':>6}  {'99.9 %ile':>9}   (tx times)")
    result = ScenarioRunner(spec).run()
    for run in result.runs:
        sample = run.flow("voice-0")
        print(
            f"{run.discipline:>10}  {sample.mean_in(TX_TIME):6.2f}  "
            f"{sample.percentile_in(99.9, TX_TIME):9.2f}"
        )
    print("\npaper (Table 1):  WFQ 3.16 / 53.86   FIFO 3.17 / 34.72")
    print("shape to notice: equal means, but FIFO's tail is much smaller.")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=DURATION,
                        help="simulated seconds (default 120)")
    main(parser.parse_args().duration)
