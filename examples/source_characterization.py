#!/usr/bin/env python3
"""A client sizes its own guaranteed-service request (Sections 2.3, 4, 8).

The Section 8 division of labour: for guaranteed service "the source only
needs to specify the needed clock rate r ... The source uses its known
value for b(r) to compute its worst case queueing delay."  The network
never sees the bucket; all the characterization math is client-side.

This example walks that client-side workflow end to end:

1. answer the Section 2.3 taxonomy questions -> guaranteed service;
2. record the application's own packet trace (a bursty screen-share-like
   process);
3. compute the b(r) curve from the trace and print it — the menu of
   (clock rate, worst-case delay) pairs the client can buy;
4. pick the cheapest rate meeting a 100 ms target;
5. request exactly that clock rate and run against hostile cross traffic.

The battlefield is a declarative :class:`~repro.scenario.ScenarioSpec`:
bottleneck link, unified CSZ scheduler, admission control, and six
misbehaving unfiltered predicted flows.  The screen-share itself is a
recorded :class:`~repro.traffic.trace.TraceSource` — a source kind the
flow spec deliberately does not model — so it is established and attached
through the live :class:`~repro.scenario.ScenarioContext`: only r crosses
the service interface, exactly as in the paper.

Expected shape: the measured worst case respects the self-computed b(r)/r
bound no matter what the other traffic does.

Run:  python examples/source_characterization.py [--duration 60]
"""

import argparse

from repro import (
    DelayRecordingSink,
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioRunner,
    ServiceClass,
)
from repro.core.taxonomy import classify_client, recommend_service
from repro.scenario import FlowSpec, GuaranteedRequest
from repro.traffic.characterize import SourceCharacterization, choose_rate
from repro.traffic.trace import TraceSource

PACKET_BITS = 1000
LINK_BPS = 1_000_000
TX = PACKET_BITS / LINK_BPS
TARGET_DELAY = 0.100  # 100 ms queueing budget
DURATION = 60.0
SEED = 17
NUM_HOSTILE = 6


def record_application_trace(seed: int) -> list:
    """The application profiles itself: a bursty frame-update process
    (think screen sharing: quiet cursor moves, then a window redraw)."""
    import random

    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    while t < 30.0:
        if rng.random() < 0.15:
            # A redraw: 8-20 packets nearly back-to-back.
            for __ in range(rng.randint(8, 20)):
                arrivals.append((t, float(PACKET_BITS)))
                t += 0.0015
        else:
            arrivals.append((t, float(PACKET_BITS)))
        t += rng.expovariate(1 / 0.02)  # ~50 events/s
    return arrivals


def hostile_spec(duration: float):
    """One bottleneck under admission control, soaked by six misbehaving
    flows (heavy bursts, no token bucket, no service request)."""
    builder = (
        ScenarioBuilder("source-characterization")
        .single_link(rate_bps=LINK_BPS)
        .discipline(DisciplineSpec.unified(num_predicted_classes=1))
        .admission(realtime_quota=0.9)
        .duration(duration)
        .seed(SEED)
    )
    for i in range(NUM_HOSTILE):
        builder.add_flow(
            f"hostile-{i}",
            "src-host",
            "dst-host",
            average_rate_pps=120.0,
            mean_burst_packets=40.0,
            peak_rate_pps=900.0,
            bucket_packets=None,
            service_class=ServiceClass.PREDICTED,
            record=False,
        )
    return builder.build()


def main(duration: float = DURATION) -> None:
    # --- 1. taxonomy -> service class -----------------------------------
    axes = classify_client(
        moves_playback_point=False,  # hardware codec, fixed buffer
        survives_brief_disruption=False,  # live assistance session
    )
    rec = recommend_service(*axes)
    print(f"client corner: {axes[0].value} + {axes[1].value}")
    print(f"recommended service: {rec.service_class.value}")
    print(f"  ({rec.rationale})\n")

    # --- 2-3. self-characterization --------------------------------------
    trace = record_application_trace(SEED)
    grid = [20_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0, 800_000.0]
    profile = SourceCharacterization.from_trace(trace, grid)
    print("the application's own b(r) curve (bounds in tx times of 1 ms):")
    print(profile.render(unit_seconds=TX))

    # --- 4. pick the cheapest sufficient rate ----------------------------
    rate, bound = choose_rate(trace, TARGET_DELAY, grid)
    print(f"\ntarget {TARGET_DELAY * 1e3:.0f} ms -> buy r = "
          f"{rate / 1000:.0f} kbit/s (self-computed bound "
          f"{bound * 1e3:.1f} ms)\n")

    # --- 5. request it and verify under fire -----------------------------
    context = ScenarioRunner(hostile_spec(duration)).build()
    # Only r crosses the service interface: the request goes through the
    # scenario's real signaling/admission machinery...
    context.establish(
        FlowSpec(
            name="screen-share",
            source_host="src-host",
            dest_host="dst-host",
            request=GuaranteedRequest(clock_rate_bps=rate),
        )
    )
    # ...and the traffic replays the application's own trace.
    span = trace[-1][0] - trace[0][0]
    TraceSource(
        context.sim,
        context.net.hosts["src-host"],
        "screen-share",
        "dst-host",
        schedule=[(t, int(size)) for t, size in trace],
        service_class=ServiceClass.GUARANTEED,
        repeat_every=span + 0.1,
    )
    sink = DelayRecordingSink(
        context.sim, context.net.hosts["dst-host"], "screen-share", warmup=0.0
    )
    context.run()

    worst = sink.max_queueing(1.0)
    print(f"simulated {duration:.0f}s against {NUM_HOSTILE} misbehaving "
          "flows:")
    print(f"  measured worst queueing delay: {worst * 1e3:.2f} ms")
    print(f"  self-computed b(r)/r bound:    {bound * 1e3:.2f} ms")
    assert worst <= bound, "the client's private math was violated!"
    print("\nshape to notice: the network never saw the trace or the "
          "bucket — just r —\nyet the client's privately computed bound "
          "held against arbitrary cross traffic.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION,
                        help="simulated seconds (default 60)")
    main(parser.parse_args().duration)
