#!/usr/bin/env python3
"""A client sizes its own guaranteed-service request (Sections 2.3, 4, 8).

The Section 8 division of labour: for guaranteed service "the source only
needs to specify the needed clock rate r ... The source uses its known
value for b(r) to compute its worst case queueing delay."  The network
never sees the bucket; all the characterization math is client-side.

This example walks that client-side workflow end to end:

1. answer the Section 2.3 taxonomy questions -> guaranteed service;
2. record the application's own packet trace (a bursty screen-share-like
   process);
3. compute the b(r) curve from the trace and print it — the menu of
   (clock rate, worst-case delay) pairs the client can buy;
4. pick the cheapest rate meeting a 100 ms target;
5. request exactly that clock rate, run against hostile cross traffic,
   and verify the measured worst case respects the self-computed bound.

Run:  python examples/source_characterization.py
"""

from repro import (
    AdmissionConfig,
    AdmissionController,
    DelayRecordingSink,
    FlowSpec,
    GuaranteedServiceSpec,
    OnOffMarkovSource,
    OnOffParams,
    RandomStreams,
    ServiceClass,
    SignalingAgent,
    Simulator,
    UnifiedConfig,
    UnifiedScheduler,
    single_link_topology,
)
from repro.core.taxonomy import classify_client, recommend_service
from repro.traffic.characterize import SourceCharacterization, choose_rate
from repro.traffic.trace import TraceSource

PACKET_BITS = 1000
LINK_BPS = 1_000_000
TX = PACKET_BITS / LINK_BPS
TARGET_DELAY = 0.100  # 100 ms queueing budget
DURATION = 60.0
SEED = 17


def record_application_trace(seed: int) -> list:
    """The application profiles itself: a bursty frame-update process
    (think screen sharing: quiet cursor moves, then a window redraw)."""
    import random

    rng = random.Random(seed)
    arrivals = []
    t = 0.0
    while t < 30.0:
        if rng.random() < 0.15:
            # A redraw: 8-20 packets nearly back-to-back.
            for __ in range(rng.randint(8, 20)):
                arrivals.append((t, float(PACKET_BITS)))
                t += 0.0015
        else:
            arrivals.append((t, float(PACKET_BITS)))
        t += rng.expovariate(1 / 0.02)  # ~50 events/s
    return arrivals


def main() -> None:
    # --- 1. taxonomy -> service class -----------------------------------
    axes = classify_client(
        moves_playback_point=False,  # hardware codec, fixed buffer
        survives_brief_disruption=False,  # live assistance session
    )
    rec = recommend_service(*axes)
    print(f"client corner: {axes[0].value} + {axes[1].value}")
    print(f"recommended service: {rec.service_class.value}")
    print(f"  ({rec.rationale})\n")

    # --- 2-3. self-characterization --------------------------------------
    trace = record_application_trace(SEED)
    grid = [20_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0, 800_000.0]
    profile = SourceCharacterization.from_trace(trace, grid)
    print("the application's own b(r) curve (bounds in tx times of 1 ms):")
    print(profile.render(unit_seconds=TX))

    # --- 4. pick the cheapest sufficient rate ----------------------------
    rate, bound = choose_rate(trace, TARGET_DELAY, grid)
    print(f"\ntarget {TARGET_DELAY * 1e3:.0f} ms -> buy r = "
          f"{rate / 1000:.0f} kbit/s (self-computed bound "
          f"{bound * 1e3:.1f} ms)\n")

    # --- 5. request it and verify under fire -----------------------------
    sim = Simulator()
    streams = RandomStreams(seed=SEED)
    net = single_link_topology(
        sim,
        lambda name, link: UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=1)
        ),
        rate_bps=LINK_BPS,
    )
    signaling = SignalingAgent(
        net, AdmissionController(AdmissionConfig(realtime_quota=0.9))
    )
    signaling.establish(
        FlowSpec(
            flow_id="screen-share",
            source="src-host",
            destination="dst-host",
            spec=GuaranteedServiceSpec(clock_rate_bps=rate),
        )
    )
    span = trace[-1][0] - trace[0][0]
    TraceSource(
        sim,
        net.hosts["src-host"],
        "screen-share",
        "dst-host",
        schedule=[(t, int(size)) for t, size in trace],
        service_class=ServiceClass.GUARANTEED,
        repeat_every=span + 0.1,
    )
    sink = DelayRecordingSink(
        sim, net.hosts["dst-host"], "screen-share", warmup=0.0
    )
    # Hostile, unfiltered cross traffic soaking the residual bandwidth.
    for i in range(6):
        OnOffMarkovSource(
            sim,
            net.hosts["src-host"],
            f"hostile-{i}",
            "dst-host",
            OnOffParams(
                average_rate_pps=120.0,
                mean_burst_packets=40.0,
                peak_rate_pps=900.0,
            ),
            streams.stream(f"hostile-{i}"),
            service_class=ServiceClass.PREDICTED,
        )
        net.hosts["dst-host"].default_handler = lambda packet: None
    sim.run(until=DURATION)

    worst = sink.max_queueing(1.0)
    print(f"simulated {DURATION:.0f}s against 6 misbehaving flows:")
    print(f"  measured worst queueing delay: {worst * 1e3:.2f} ms")
    print(f"  self-computed b(r)/r bound:    {bound * 1e3:.2f} ms")
    assert worst <= bound, "the client's private math was violated!"
    print("\nshape to notice: the network never saw the trace or the "
          "bucket — just r —\nyet the client's privately computed bound "
          "held against arbitrary cross traffic.")


if __name__ == "__main__":
    main()
