#!/usr/bin/env python3
"""A remote-surgery video feed over guaranteed service.

The paper's intolerant-and-rigid client: "a video conference allowing one
surgeon to remotely assist another during an operation will not be
tolerant of any interruption of service."  Such a client needs an a priori
worst-case bound, so it requests *guaranteed* service.  Declared through
the scenario API:

1. the spec carries the Figure-1 chain, unified CSZ schedulers, admission
   control, and 12 hostile background flows (heavy unfiltered predicted
   bursts) that overload every link;
2. the source knows its own token bucket characterization b(r) and picks a
   clock rate r from the delay target using the Parekh-Gallager bound
   b/r (Section 8: the network never sees b for guaranteed flows);
3. the video flow joins via the live :class:`ScenarioContext` with a
   :class:`GuaranteedRequest` — signaling installs the WFQ clock rate at
   every switch on the path — and a RigidPlayback receiver parked at the
   bound.

Expected shape (Section 4): the video's measured worst-case delay stays
below the computed P-G bound *no matter what the other traffic does*, and
the rigid client loses nothing.

Run:  python examples/video_guaranteed.py [--duration 120]
"""

import argparse

from repro import (
    DisciplineSpec,
    GuaranteedRequest,
    RigidPlayback,
    ScenarioBuilder,
    ScenarioRunner,
    ServiceClass,
)
from repro.scenario import FlowSpec
from repro.core.bounds import (
    parekh_gallager_packet_bound,
    required_clock_rate,
)

PACKET_BITS = 1000
LINK_BPS = 1_000_000
TX_TIME = PACKET_BITS / LINK_BPS

# The video source: 170 pkt/s average (~170 kbit/s), bursty, with a
# 20-packet token bucket the *source* has measured for itself.
VIDEO_RATE_PPS = 170.0
VIDEO_BUCKET_BITS = 20 * PACKET_BITS
TARGET_QUEUEING_DELAY = 0.080  # 80 ms end-to-end queueing budget

DURATION = 120.0
SEED = 99
HOPS = 4  # Host-1 -> Host-5


def hostile_spec(duration: float) -> "ScenarioBuilder":
    """The battlefield: Figure 1 overloaded by 12 uncommitted bursters."""
    builder = (
        ScenarioBuilder("video-guaranteed")
        .paper_chain()
        .discipline(DisciplineSpec.unified(num_predicted_classes=2))
        .admission(realtime_quota=0.9)
        .duration(duration)
        .seed(SEED)
    )
    # Hostile background: heavy bursts, NO traffic commitment.  Guaranteed
    # service must hold regardless; these flows are deliberately unfiltered
    # (no token bucket) and overload every link.
    for i in range(12):
        builder.add_flow(
            f"hostile-{i}",
            f"Host-{1 + i % 4}",
            f"Host-{2 + i % 4}",
            average_rate_pps=95.0,
            mean_burst_packets=40.0,
            peak_rate_pps=900.0,
            bucket_packets=None,
            service_class=ServiceClass.PREDICTED,
            priority_class=0,
            record=False,
        )
    return builder


def main(duration: float = DURATION) -> None:
    # --- the surgeon sizes the request (all client-side math) ----------
    clock_rate = max(
        required_clock_rate(VIDEO_BUCKET_BITS, TARGET_QUEUEING_DELAY),
        VIDEO_RATE_PPS * PACKET_BITS,  # at least the average rate
    )
    bound = parekh_gallager_packet_bound(
        VIDEO_BUCKET_BITS, clock_rate, PACKET_BITS, [LINK_BPS] * HOPS
    )
    print(f"video flow: b = {VIDEO_BUCKET_BITS} bits, chosen r = "
          f"{clock_rate / 1000:.0f} kbit/s")
    print(f"Parekh-Gallager end-to-end bound: {bound * 1e3:.1f} ms "
          f"({bound / TX_TIME:.1f} tx times)")

    context = ScenarioRunner(hostile_spec(duration).build()).build()

    # --- establish: only r crosses the service interface ----------------
    # The receiver both plays back and records delays (one handler per
    # flow): the rigid play-back point sits exactly at the P-G bound.
    def rigid_receiver(ctx, flow):
        return RigidPlayback(
            ctx.sim, ctx.net.hosts[flow.dest_host], flow.name,
            a_priori_bound=bound,
        )

    context.add_flow(
        FlowSpec(
            name="surgery-video",
            source_host="Host-1",
            dest_host="Host-5",
            average_rate_pps=VIDEO_RATE_PPS,
            mean_burst_packets=10.0,
            bucket_packets=None,
            request=GuaranteedRequest(clock_rate_bps=clock_rate),
        ),
        sink_factory=rigid_receiver,
    )

    print(f"\nsimulating {duration:.0f} s against 12 misbehaving "
          "background flows ...")
    context.run()

    # --- verdict ---------------------------------------------------------
    stats = context.receivers["surgery-video"].stats()
    worst = stats.max_delay  # end-to-end seconds (queueing + store/forward)
    print(f"\nvideo packets received:   {stats.received}")
    print(f"measured worst delay:     {worst * 1e3:.2f} ms")
    print(f"a priori P-G bound:       {bound * 1e3:.2f} ms")
    print(f"packets past play-back:   {stats.late}  "
          f"(loss {stats.loss_fraction:.3%})")
    assert worst <= bound, "guarantee violated!"
    assert stats.late == 0
    print("\nshape to notice: the measured worst case stays below the "
          "bound and the\nrigid client never misses — isolation holds "
          "against arbitrary cross traffic.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION,
                        help="simulated seconds (default 120)")
    main(parser.parse_args().duration)
