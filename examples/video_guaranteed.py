#!/usr/bin/env python3
"""A remote-surgery video feed over guaranteed service.

The paper's intolerant-and-rigid client: "a video conference allowing one
surgeon to remotely assist another during an operation will not be
tolerant of any interruption of service."  Such a client needs an a priori
worst-case bound, so it requests *guaranteed* service:

1. the source knows its own token bucket characterization b(r) and picks a
   clock rate r from the delay target using the Parekh-Gallager bound
   b/r (Section 8: the network never sees b for guaranteed flows);
2. signaling installs the WFQ clock rate at every switch on the path;
3. a RigidPlayback receiver parks its play-back point at the bound;
4. hostile background traffic (heavy predicted bursts + datagram load)
   tries to disturb the feed.

Expected shape (Section 4): the video's measured worst-case delay stays
below the computed P-G bound *no matter what the other traffic does*, and
the rigid client loses nothing.

Run:  python examples/video_guaranteed.py
"""

from repro import (
    AdmissionConfig,
    AdmissionController,
    FlowSpec,
    GuaranteedServiceSpec,
    OnOffMarkovSource,
    OnOffParams,
    RandomStreams,
    RigidPlayback,
    ServiceClass,
    SignalingAgent,
    Simulator,
    UnifiedConfig,
    UnifiedScheduler,
    paper_figure1_topology,
)
from repro.core.bounds import (
    parekh_gallager_packet_bound,
    required_clock_rate,
)

PACKET_BITS = 1000
LINK_BPS = 1_000_000
TX_TIME = PACKET_BITS / LINK_BPS

# The video source: 170 pkt/s average (~170 kbit/s), bursty, with a
# 20-packet token bucket the *source* has measured for itself.
VIDEO_RATE_PPS = 170.0
VIDEO_BUCKET_BITS = 20 * PACKET_BITS
TARGET_QUEUEING_DELAY = 0.080  # 80 ms end-to-end queueing budget

DURATION = 120.0
SEED = 99


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=SEED)

    net = paper_figure1_topology(
        sim,
        lambda name, link: UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=2)
        ),
    )
    admission = AdmissionController(AdmissionConfig(realtime_quota=0.9))
    signaling = SignalingAgent(net, admission)

    # --- the surgeon sizes the request (all client-side math) ----------
    clock_rate = max(
        required_clock_rate(VIDEO_BUCKET_BITS, TARGET_QUEUEING_DELAY),
        VIDEO_RATE_PPS * PACKET_BITS,  # at least the average rate
    )
    hops = 4  # Host-1 -> Host-5
    bound = parekh_gallager_packet_bound(
        VIDEO_BUCKET_BITS, clock_rate, PACKET_BITS, [LINK_BPS] * hops
    )
    print(f"video flow: b = {VIDEO_BUCKET_BITS} bits, chosen r = "
          f"{clock_rate / 1000:.0f} kbit/s")
    print(f"Parekh-Gallager end-to-end bound: {bound * 1e3:.1f} ms "
          f"({bound / TX_TIME:.1f} tx times)")

    # --- establish: only r crosses the service interface ----------------
    signaling.establish(
        FlowSpec(
            flow_id="surgery-video",
            source="Host-1",
            destination="Host-5",
            spec=GuaranteedServiceSpec(clock_rate_bps=clock_rate),
        )
    )

    # --- the video traffic + rigid receiver -----------------------------
    OnOffMarkovSource(
        sim,
        net.hosts["Host-1"],
        "surgery-video",
        "Host-5",
        OnOffParams(average_rate_pps=VIDEO_RATE_PPS, mean_burst_packets=10.0),
        streams.stream("video"),
        service_class=ServiceClass.GUARANTEED,
    )
    # The receiver both plays back and records delays (one handler per
    # flow): the rigid play-back point sits exactly at the P-G bound.
    receiver = RigidPlayback(
        sim, net.hosts["Host-5"], "surgery-video", a_priori_bound=bound
    )

    # --- hostile background: heavy bursts, NO traffic commitment --------
    # Guaranteed service must hold regardless; these flows are deliberately
    # unfiltered (no token bucket) and overload every link.
    for i in range(12):
        src = f"Host-{1 + i % 4}"
        dst = f"Host-{2 + i % 4}"
        OnOffMarkovSource(
            sim,
            net.hosts[src],
            f"hostile-{i}",
            dst,
            OnOffParams(
                average_rate_pps=95.0,
                mean_burst_packets=40.0,
                peak_rate_pps=900.0,
            ),
            streams.stream(f"hostile-{i}"),
            service_class=ServiceClass.PREDICTED,
            priority_class=0,
        )
        net.hosts[dst].default_handler = lambda packet: None

    print(f"\nsimulating {DURATION:.0f} s against 12 misbehaving "
          "background flows ...")
    sim.run(until=DURATION)

    # --- verdict ---------------------------------------------------------
    stats = receiver.stats()
    worst = stats.max_delay  # end-to-end seconds (queueing + store/forward)
    print(f"\nvideo packets received:   {stats.received}")
    print(f"measured worst delay:     {worst * 1e3:.2f} ms")
    print(f"a priori P-G bound:       {bound * 1e3:.2f} ms")
    print(f"packets past play-back:   {stats.late}  "
          f"(loss {stats.loss_fraction:.3%})")
    assert worst <= bound, "guarantee violated!"
    assert stats.late == 0
    print("\nshape to notice: the measured worst case stays below the "
          "bound and the\nrigid client never misses — isolation holds "
          "against arbitrary cross traffic.")


if __name__ == "__main__":
    main()
