#!/usr/bin/env python3
"""An adaptive packet-voice conference over predicted service.

The scenario the paper's introduction motivates: tolerant, adaptive
clients (think the 1992 VAT packet-voice tool) request *predicted* service
instead of guaranteed, and set their play-back point from measured delays
rather than the network's a priori bound.

This example drives the full architecture end to end:

1. build the Figure-1 five-switch chain with unified CSZ schedulers;
2. establish 8 predicted-service voice flows through measurement-based
   admission control (token bucket declared, (D, L) target requested,
   conformance filter installed at each flow's first switch);
3. attach an AdaptivePlayback receiver to each flow and a RigidPlayback
   receiver to one control flow that ignores measurements and sits at the
   network's advertised a priori bound;
4. report, per flow: the advertised bound, the adaptive play-back point it
   converged to, and the fraction of packets that missed it.

Expected shape (Sections 2-3): the adaptive play-back points settle far
below the advertised a priori bounds — that gap is the latency the
adaptive client wins back — with losses near the requested 1 %.

Run:  python examples/voice_conference.py
"""

from repro import (
    AdaptivePlayback,
    AdmissionConfig,
    AdmissionController,
    FlowSpec,
    OnOffMarkovSource,
    PredictedServiceSpec,
    RandomStreams,
    RigidPlayback,
    ServiceClass,
    SignalingAgent,
    Simulator,
    UnifiedConfig,
    UnifiedScheduler,
    paper_figure1_topology,
)
from repro.core.measurement import SwitchMeasurement

PACKET_BITS = 1000
VOICE_RATE_PPS = 85.0  # the paper's A
BUCKET_PACKETS = 50.0
CLASS_BOUNDS = (0.15, 1.5)  # per-switch D_i, widely spaced
DURATION = 120.0
SEED = 7

# (flow id, source host, destination host, hops)
CALLS = [
    ("alice->bob", "Host-1", "Host-5", 4),
    ("carol->dan", "Host-1", "Host-3", 2),
    ("erin->frank", "Host-2", "Host-5", 3),
    ("grace->henry", "Host-3", "Host-4", 1),
    ("ivan->judy", "Host-1", "Host-2", 1),
    ("kim->leo", "Host-2", "Host-3", 1),
    ("mia->nick", "Host-3", "Host-5", 2),
    ("olga->pete", "Host-4", "Host-5", 1),
]


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(seed=SEED)

    net = paper_figure1_topology(
        sim,
        lambda name, link: UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=2)
        ),
    )

    admission = AdmissionController(
        AdmissionConfig(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
    )
    for link_name, port in net.ports.items():
        admission.attach_measurement(link_name, SwitchMeasurement(port))
    signaling = SignalingAgent(net, admission)

    # --- establish every call through admission control ---------------
    grants = {}
    for flow_id, src, dst, hops in CALLS:
        grants[flow_id] = signaling.establish(
            FlowSpec(
                flow_id=flow_id,
                source=src,
                destination=dst,
                spec=PredictedServiceSpec(
                    token_rate_bps=VOICE_RATE_PPS * PACKET_BITS,
                    bucket_depth_bits=BUCKET_PACKETS * PACKET_BITS,
                    target_delay_seconds=0.15 * hops,  # ride the high class
                    target_loss_rate=0.01,
                ),
            )
        )

    # --- traffic + receivers -------------------------------------------
    receivers = {}
    for flow_id, src, dst, hops in CALLS:
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts[src],
            flow_id,
            dst,
            streams.stream(flow_id),
            average_rate_pps=VOICE_RATE_PPS,
            service_class=ServiceClass.PREDICTED,
            priority_class=grants[flow_id].priority_class,
        )
        receivers[flow_id] = AdaptivePlayback(
            sim,
            net.hosts[dst],
            flow_id,
            target_loss=0.01,
            initial_offset=grants[flow_id].advertised_bound_seconds,
        )

    # A rigid control client on an identical extra flow: parks its
    # play-back point at the advertised bound and never moves.
    control_id = "rigid-control"
    control_grant = signaling.establish(
        FlowSpec(
            flow_id=control_id,
            source="Host-1",
            destination="Host-5",
            spec=PredictedServiceSpec(
                token_rate_bps=VOICE_RATE_PPS * PACKET_BITS,
                bucket_depth_bits=BUCKET_PACKETS * PACKET_BITS,
                target_delay_seconds=0.6,
            ),
        )
    )
    OnOffMarkovSource.paper_source(
        sim,
        net.hosts["Host-1"],
        control_id,
        "Host-5",
        streams.stream(control_id),
        average_rate_pps=VOICE_RATE_PPS,
        service_class=ServiceClass.PREDICTED,
        priority_class=control_grant.priority_class,
    )
    rigid = RigidPlayback(
        sim,
        net.hosts["Host-5"],
        control_id,
        a_priori_bound=control_grant.advertised_bound_seconds,
    )

    print(f"established {len(grants) + 1} predicted-service voice flows; "
          f"simulating {DURATION:.0f} s ...")
    sim.run(until=DURATION)

    # --- report ----------------------------------------------------------
    print(f"\n{'call':>14} {'hops':>4} {'advertised':>11} {'play-back':>10} "
          f"{'saved':>6} {'loss':>6}")
    for flow_id, __, __, hops in CALLS:
        app = receivers[flow_id]
        stats = app.stats()
        advertised = grants[flow_id].advertised_bound_seconds
        saved = advertised - stats.final_offset
        print(
            f"{flow_id:>14} {hops:>4} {advertised * 1e3:>9.0f}ms "
            f"{stats.final_offset * 1e3:>8.1f}ms {saved * 1e3:>5.0f}ms "
            f"{stats.loss_fraction:>6.2%}"
        )
    rigid_stats = rigid.stats()
    print(
        f"{control_id:>14} {4:>4} "
        f"{control_grant.advertised_bound_seconds * 1e3:>9.0f}ms "
        f"{rigid_stats.final_offset * 1e3:>8.1f}ms {0:>5.0f}ms "
        f"{rigid_stats.loss_fraction:>6.2%}   (rigid: never adapts)"
    )
    print(
        "\nshape to notice: adaptive play-back points sit far below the "
        "advertised\na priori bounds (the latency adaptive clients win), "
        "with ~1% losses;\nthe rigid client never misses but carries the "
        "full bound as latency."
    )


if __name__ == "__main__":
    main()
