#!/usr/bin/env python3
"""An adaptive packet-voice conference over predicted service.

The scenario the paper's introduction motivates: tolerant, adaptive
clients (think the 1992 VAT packet-voice tool) request *predicted* service
instead of guaranteed, and set their play-back point from measured delays
rather than the network's a priori bound.

This example drives the full architecture end to end through the scenario
API:

1. declare the Figure-1 five-switch chain with unified CSZ schedulers and
   measurement-based admission control as a :class:`ScenarioSpec`;
2. admit 8 predicted-service voice flows through the live
   :class:`ScenarioContext` — each carries a :class:`PredictedRequest`
   (token bucket declared, (D, L) target requested), and the conformance
   filter lands at its first switch;
3. attach an AdaptivePlayback receiver to each flow and a RigidPlayback
   receiver to one control flow that ignores measurements and sits at the
   network's advertised a priori bound;
4. report, per flow: the advertised bound, the adaptive play-back point it
   converged to, and the fraction of packets that missed it.

Expected shape (Sections 2-3): the adaptive play-back points settle far
below the advertised a priori bounds — that gap is the latency the
adaptive client wins back — with losses near the requested 1 %.

Run:  python examples/voice_conference.py
"""

from repro import (
    AdaptivePlayback,
    DisciplineSpec,
    PredictedRequest,
    RigidPlayback,
    ScenarioBuilder,
    ScenarioRunner,
)
from repro.scenario import FlowSpec

PACKET_BITS = 1000
VOICE_RATE_PPS = 85.0  # the paper's A
BUCKET_PACKETS = 50.0
CLASS_BOUNDS = (0.15, 1.5)  # per-switch D_i, widely spaced
DURATION = 120.0
SEED = 7

# (flow id, source host, destination host, hops)
CALLS = [
    ("alice->bob", "Host-1", "Host-5", 4),
    ("carol->dan", "Host-1", "Host-3", 2),
    ("erin->frank", "Host-2", "Host-5", 3),
    ("grace->henry", "Host-3", "Host-4", 1),
    ("ivan->judy", "Host-1", "Host-2", 1),
    ("kim->leo", "Host-2", "Host-3", 1),
    ("mia->nick", "Host-3", "Host-5", 2),
    ("olga->pete", "Host-4", "Host-5", 1),
]


def call_spec(flow_id: str, src: str, dst: str, target_delay: float) -> FlowSpec:
    """One voice call: the Appendix source plus a predicted-service request."""
    return FlowSpec(
        name=flow_id,
        source_host=src,
        dest_host=dst,
        request=PredictedRequest(
            token_rate_bps=VOICE_RATE_PPS * PACKET_BITS,
            bucket_depth_bits=BUCKET_PACKETS * PACKET_BITS,
            target_delay_seconds=target_delay,
            target_loss_rate=0.01,
        ),
    )


def main(duration: float = DURATION) -> None:
    spec = (
        ScenarioBuilder("voice-conference")
        .paper_chain()
        .discipline(DisciplineSpec.unified(num_predicted_classes=2))
        .admission(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
        .duration(duration)
        .seed(SEED)
        .build()
    )
    context = ScenarioRunner(spec).build()

    def adaptive_receiver(ctx, flow):
        return AdaptivePlayback(
            ctx.sim,
            ctx.net.hosts[flow.dest_host],
            flow.name,
            target_loss=0.01,
            initial_offset=ctx.grants[flow.name].advertised_bound_seconds,
        )

    # --- establish every call through admission control ---------------
    for flow_id, src, dst, hops in CALLS:
        context.add_flow(
            call_spec(flow_id, src, dst, 0.15 * hops),  # ride the high class
            sink_factory=adaptive_receiver,
        )

    # A rigid control client on an identical extra flow: parks its
    # play-back point at the advertised bound and never moves.
    def rigid_receiver(ctx, flow):
        return RigidPlayback(
            ctx.sim,
            ctx.net.hosts[flow.dest_host],
            flow.name,
            a_priori_bound=ctx.grants[flow.name].advertised_bound_seconds,
        )

    control_id = "rigid-control"
    context.add_flow(
        call_spec(control_id, "Host-1", "Host-5", 0.6),
        sink_factory=rigid_receiver,
    )

    print(f"established {len(CALLS) + 1} predicted-service voice flows; "
          f"simulating {duration:.0f} s ...")
    context.run()

    # --- report ----------------------------------------------------------
    print(f"\n{'call':>14} {'hops':>4} {'advertised':>11} {'play-back':>10} "
          f"{'saved':>6} {'loss':>6}")
    for flow_id, __, __, hops in CALLS:
        app = context.receivers[flow_id]
        stats = app.stats()
        advertised = context.grants[flow_id].advertised_bound_seconds
        saved = advertised - stats.final_offset
        print(
            f"{flow_id:>14} {hops:>4} {advertised * 1e3:>9.0f}ms "
            f"{stats.final_offset * 1e3:>8.1f}ms {saved * 1e3:>5.0f}ms "
            f"{stats.loss_fraction:>6.2%}"
        )
    rigid_stats = context.receivers[control_id].stats()
    control_bound = context.grants[control_id].advertised_bound_seconds
    print(
        f"{control_id:>14} {4:>4} "
        f"{control_bound * 1e3:>9.0f}ms "
        f"{rigid_stats.final_offset * 1e3:>8.1f}ms {0:>5.0f}ms "
        f"{rigid_stats.loss_fraction:>6.2%}   (rigid: never adapts)"
    )
    print(
        "\nshape to notice: adaptive play-back points sit far below the "
        "advertised\na priori bounds (the latency adaptive clients win), "
        "with ~1% losses;\nthe rigid client never misses but carries the "
        "full bound as latency."
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION,
                        help="simulated seconds (default 120)")
    main(parser.parse_args().duration)
