"""Setuptools shim for environments whose pip cannot build PEP 517 wheels
(the metadata of record lives in pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of Clark/Shenker/Zhang SIGCOMM'92: real-time services "
        "in an ISPN"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
