"""Setuptools shim for environments whose pip cannot build PEP 517 wheels
(the metadata of record lives in pyproject.toml).

Also builds the optional compiled engine core (``repro.sim._engine_c``):
the extension is marked optional, so a missing C toolchain degrades to the
authoritative pure-Python engine instead of failing the install.  Build it
in place with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Reproduction of Clark/Shenker/Zhang SIGCOMM'92: real-time services "
        "in an ISPN"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    ext_modules=[
        Extension(
            "repro.sim._engine_c",
            sources=["src/repro/sim/_engine_c.c"],
            extra_compile_args=["-O2"],
            optional=True,
        )
    ],
)
