"""repro — reproduction of Clark, Shenker & Zhang, SIGCOMM 1992.

"Supporting Real-Time Applications in an Integrated Services Packet
Network: Architecture and Mechanism."

The library provides, from scratch:

* a deterministic discrete-event packet-network simulator
  (:mod:`repro.sim`, :mod:`repro.net`);
* the paper's traffic model — two-state Markov on/off sources behind token
  bucket filters (:mod:`repro.traffic`);
* every scheduling discipline the paper builds or compares — FIFO, WFQ
  (packetized GPS), FIFO+, strict priority, the unified CSZ scheduler, and
  the related-work baselines (:mod:`repro.sched`);
* the ISPN architecture — service interface, Parekh-Gallager bounds,
  measurement-based admission control, signaling, rigid/adaptive playback
  applications (:mod:`repro.core`);
* a simplified TCP for datagram load (:mod:`repro.transport`);
* runnable experiments regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro.experiments import table1
    result = table1.run(duration=60.0, seed=1)
    print(result.render())
"""

from repro.sim import Simulator, RandomStreams
from repro.net import (
    Packet,
    ServiceClass,
    Network,
    single_link_topology,
    paper_figure1_topology,
)
from repro.sched import (
    FifoScheduler,
    WfqScheduler,
    FifoPlusScheduler,
    PriorityScheduler,
    UnifiedScheduler,
    UnifiedConfig,
)
from repro.traffic import OnOffMarkovSource, OnOffParams, TokenBucket, DelayRecordingSink
from repro.core import (
    FlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
    AdmissionController,
    AdmissionConfig,
    SignalingAgent,
    RigidPlayback,
    AdaptivePlayback,
    parekh_gallager_fluid_bound,
    parekh_gallager_packet_bound,
)
from repro.transport import TcpConnection

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "RandomStreams",
    "Packet",
    "ServiceClass",
    "Network",
    "single_link_topology",
    "paper_figure1_topology",
    "FifoScheduler",
    "WfqScheduler",
    "FifoPlusScheduler",
    "PriorityScheduler",
    "UnifiedScheduler",
    "UnifiedConfig",
    "OnOffMarkovSource",
    "OnOffParams",
    "TokenBucket",
    "DelayRecordingSink",
    "FlowSpec",
    "GuaranteedServiceSpec",
    "PredictedServiceSpec",
    "AdmissionController",
    "AdmissionConfig",
    "SignalingAgent",
    "RigidPlayback",
    "AdaptivePlayback",
    "parekh_gallager_fluid_bound",
    "parekh_gallager_packet_bound",
    "TcpConnection",
    "__version__",
]
