"""repro — reproduction of Clark, Shenker & Zhang, SIGCOMM 1992.

"Supporting Real-Time Applications in an Integrated Services Packet
Network: Architecture and Mechanism."

The library provides, from scratch:

* a deterministic discrete-event packet-network simulator
  (:mod:`repro.sim`, :mod:`repro.net`);
* the paper's traffic model — two-state Markov on/off sources behind token
  bucket filters (:mod:`repro.traffic`);
* every scheduling discipline the paper builds or compares — FIFO, WFQ
  (packetized GPS), FIFO+, strict priority, the unified CSZ scheduler, and
  the related-work baselines (:mod:`repro.sched`);
* the ISPN architecture — service interface, Parekh-Gallager bounds,
  measurement-based admission control, signaling, rigid/adaptive playback
  applications (:mod:`repro.core`);
* a simplified TCP for datagram load (:mod:`repro.transport`);
* a declarative scenario API — one frozen spec describes topology, flows,
  service commitments, and disciplines; a runner builds and executes it
  with paired arrivals and returns structured, JSON-exportable results;
  sweeps fan out across processes; seeded generators sample random /
  scale-free / WAN / access-core scenarios deterministically
  (:mod:`repro.scenario`);
* opt-in simulation-invariant validation — packet conservation, per-flow
  FIFO order, P-G delay-bound compliance, queue bounds, clock
  monotonicity — via an audit tap that leaves results bit-identical
  (:mod:`repro.validate`);
* runnable experiments regenerating every table and figure, founded on
  the scenario API (:mod:`repro.experiments`).

Quickstart — declare a scenario, run it under two disciplines (identical
arrivals), and read structured results::

    from repro import DisciplineSpec, ScenarioBuilder, ScenarioRunner

    spec = (ScenarioBuilder("quickstart")
            .single_link()                  # the Table-1 bottleneck
            .paper_flows(10)                # ten Appendix on/off sources
            .disciplines(DisciplineSpec.wfq(equal_share_flows=10),
                         DisciplineSpec.fifo())
            .duration(60.0).seed(1)
            .build())
    result = ScenarioRunner(spec).run()
    unit = 0.001  # one packet transmission time
    for run in result.runs:
        sample = run.flow("flow-0")
        print(run.discipline, sample.mean_in(unit),
              sample.percentile_in(99.9, unit))

Sweep the same spec over seeds, in parallel, with paired arrivals::

    from repro import sweep
    results = sweep(spec, seeds=range(8), workers=4)

Or regenerate a paper table directly::

    from repro.experiments import table1
    print(table1.run(duration=60.0, seed=1).render())
"""

from repro.sim import Simulator, RandomStreams
from repro.net import (
    Packet,
    ServiceClass,
    Network,
    single_link_topology,
    paper_figure1_topology,
)
from repro.sched import (
    FifoScheduler,
    WfqScheduler,
    FifoPlusScheduler,
    PriorityScheduler,
    UnifiedScheduler,
    UnifiedConfig,
)
from repro.traffic import OnOffMarkovSource, OnOffParams, TokenBucket, DelayRecordingSink
from repro.core import (
    FlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
    AdmissionController,
    AdmissionConfig,
    SignalingAgent,
    RigidPlayback,
    AdaptivePlayback,
    parekh_gallager_fluid_bound,
    parekh_gallager_packet_bound,
)
from repro.scenario import (
    AdmissionSpec,
    DisciplineSpec,
    GuaranteedRequest,
    HostAttachment,
    LinkSpec,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    TcpSpec,
    TopologySpec,
    sweep,
)
from repro.transport import TcpConnection
from repro.validate import (
    InvariantCheck,
    InvariantViolation,
    assert_clean,
    check_invariants,
)

__version__ = "1.2.0"

__all__ = [
    "Simulator",
    "RandomStreams",
    "Packet",
    "ServiceClass",
    "Network",
    "single_link_topology",
    "paper_figure1_topology",
    "FifoScheduler",
    "WfqScheduler",
    "FifoPlusScheduler",
    "PriorityScheduler",
    "UnifiedScheduler",
    "UnifiedConfig",
    "OnOffMarkovSource",
    "OnOffParams",
    "TokenBucket",
    "DelayRecordingSink",
    "FlowSpec",
    "GuaranteedServiceSpec",
    "PredictedServiceSpec",
    "AdmissionController",
    "AdmissionConfig",
    "SignalingAgent",
    "RigidPlayback",
    "AdaptivePlayback",
    "parekh_gallager_fluid_bound",
    "parekh_gallager_packet_bound",
    "AdmissionSpec",
    "DisciplineSpec",
    "GuaranteedRequest",
    "HostAttachment",
    "LinkSpec",
    "PredictedRequest",
    "ScenarioBuilder",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TcpSpec",
    "TopologySpec",
    "sweep",
    "TcpConnection",
    "InvariantCheck",
    "InvariantViolation",
    "assert_clean",
    "check_invariants",
    "__version__",
]
