"""Control plane: link-state view, failures, rerouting, re-establishment.

CSZ'92 scopes routing out ("we assume the route is fixed"); this package
is the repo's dynamic-network extension on top of the static data plane:
a central :class:`LinkStateController` consumes link up/down events from
a seeded :class:`OutageProcess`, recomputes routes with Dijkstra SPF
(:mod:`repro.control.spf`), swaps fresh forwarding tables into the
network, and re-establishes admission-controlled flows on their new
paths — with every packet caught on a dead wire ledgered so the
:mod:`repro.validate` conservation invariants close across failovers.

Scenario-level entry points: put an
:class:`~repro.scenario.spec.OutageSpec` on a ``ScenarioSpec`` (or use
the ``gen:outage`` generator family); the runner wires this package up
and attaches a :class:`ControlPlaneStats` summary to the run result.
"""

from repro.control.controller import (
    ControlPlaneStats,
    FlowRerouteStats,
    LinkStateController,
)
from repro.control.outages import (
    LinkTransition,
    OutageProcess,
    compute_outage_schedule,
)
from repro.control.spf import SpfRouting, spf_from_network, spf_from_topology

__all__ = [
    "ControlPlaneStats",
    "FlowRerouteStats",
    "LinkStateController",
    "LinkTransition",
    "OutageProcess",
    "SpfRouting",
    "compute_outage_schedule",
    "spf_from_network",
    "spf_from_topology",
]
