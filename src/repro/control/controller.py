"""The central link-state controller.

:class:`LinkStateController` owns a live up/down view of every link,
reacts to failures and repairs by killing/flushing what sat on the dead
wire (ledgered, so conservation closes), recomputing routes via Dijkstra
SPF (:mod:`repro.control.spf`), swapping the fresh tables into the
network, and re-establishing admission-controlled flows whose paths
moved — teardown of the old reservations, then a fresh signaling
establishment over the new path.  A re-establishment the network refuses
is an *accounted teardown*: the flow's reservations are released, its
source is stopped through the ``on_torn_down`` callback, and the
refusal is recorded in the per-flow stats.

Policies, kept deliberately simple and explicit:

* Forwarding is destination-based, so when SPF moves a flow's shortest
  path — even if its old path is still alive — its packets follow the
  new tables; the controller migrates the reservation along with them.
* A flow torn down after a refused re-establishment stays down: sources
  cannot be deterministically restarted mid-run, so re-admitting a dead
  sender would book reservations nothing uses.
* Best-effort flows (no service request) reroute implicitly through the
  table swap; while their destination is unreachable their packets
  become ledgered no-route drops at the partition edge.

The fluid engine replays these exact policies without a clock:
:mod:`repro.fluid.control` compiles the outage schedule into per-
transition reroute/re-admission/teardown decisions over the same
admission state, so :class:`ControlPlaneStats` comes out of either
engine in the same shape with matching discrete counters.
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Optional,
    Tuple,
)

from repro.core.signaling import FlowEstablishmentError
from repro.net.routing import RoutingError
from repro.control.spf import spf_from_network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.service import FlowSpec as CoreFlowSpec
    from repro.core.signaling import SignalingAgent
    from repro.net.network import Network


@dataclasses.dataclass(frozen=True)
class FlowRerouteStats:
    """Per-flow control-plane outcome over one run."""

    name: str
    reroutes: int = 0
    readmissions: int = 0
    refusals: int = 0
    torn_down: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ControlPlaneStats:
    """Controller + ledger summary attached to a validated run result.

    Attributes:
        outages: link failures processed.
        restores: link repairs processed.
        recomputes: SPF table recomputations (one per state change).
        flushed_packets: packets flushed from dead ports' queues
            (ledgered as port drops).
        wire_killed: per-link packets killed mid-wire by failures,
            ``(link_name, count)`` sorted by name, zero entries omitted.
        no_route_drops: per-flow packets dropped for lack of any route,
            ``(flow_id, count)`` sorted by flow, zero entries omitted.
        flows: per-tracked-flow reroute/re-admission outcomes, in
            establishment order.
    """

    outages: int
    restores: int
    recomputes: int
    flushed_packets: int
    wire_killed: Tuple[Tuple[str, int], ...]
    no_route_drops: Tuple[Tuple[str, int], ...]
    flows: Tuple[FlowRerouteStats, ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "outages": self.outages,
            "restores": self.restores,
            "recomputes": self.recomputes,
            "flushed_packets": self.flushed_packets,
            "wire_killed": [list(item) for item in self.wire_killed],
            "no_route_drops": [list(item) for item in self.no_route_drops],
            "flows": [flow.to_dict() for flow in self.flows],
        }


class _TrackedFlow:
    """Mutable control-plane record of one flow."""

    __slots__ = (
        "name",
        "src",
        "dst",
        "core_spec",
        "links",
        "reroutes",
        "readmissions",
        "refusals",
        "torn_down",
    )

    def __init__(self, name, src, dst, core_spec, links):
        self.name = name
        self.src = src
        self.dst = dst
        self.core_spec = core_spec
        self.links = links
        self.reroutes = 0
        self.readmissions = 0
        self.refusals = 0
        self.torn_down = False


class LinkStateController:
    """Central controller: link-state view, SPF rerouting, flow repair.

    Args:
        net: the live network whose links/routes it governs.
        signaling: the signaling agent used to tear down and re-establish
            admission-controlled flows; None for best-effort-only runs.
        on_rerouted: called ``(flow_name, grant)`` after a flow is
            re-admitted on a new path (the scenario layer refreshes its
            grant table here).
        on_torn_down: called ``(flow_name)`` when a flow's
            re-establishment was refused (or no path exists) — the
            scenario layer stops the source, making the teardown an
            accounted one.
    """

    def __init__(
        self,
        net: "Network",
        signaling: Optional["SignalingAgent"] = None,
        on_rerouted: Optional[Callable[[str, Any], None]] = None,
        on_torn_down: Optional[Callable[[str], None]] = None,
    ):
        self.net = net
        self.signaling = signaling
        self.on_rerouted = on_rerouted
        self.on_torn_down = on_torn_down
        self.link_state: Dict[str, bool] = {name: True for name in net.links}
        self.outages = 0
        self.restores = 0
        self.recomputes = 0
        self.flushed_packets = 0
        self._tracked: Dict[str, _TrackedFlow] = {}

    # ------------------------------------------------------------------
    # Flow registry
    # ------------------------------------------------------------------
    def track_flow(
        self,
        name: str,
        src_host: str,
        dst_host: str,
        core_spec: Optional["CoreFlowSpec"] = None,
    ) -> None:
        """Register a flow for reroute bookkeeping and (when ``core_spec``
        and signaling are present) admission-controlled re-establishment.
        Flows are repaired in registration (= establishment) order."""
        if name in self._tracked:
            raise ValueError(f"flow {name} is already tracked")
        self._tracked[name] = _TrackedFlow(
            name, src_host, dst_host, core_spec, self._route_of_hosts(src_host, dst_host)
        )

    def untrack_flow(self, name: str) -> None:
        """Forget a flow (scenario-level teardown). Unknown names no-op."""
        self._tracked.pop(name, None)

    # ------------------------------------------------------------------
    # Link-state events
    # ------------------------------------------------------------------
    def fail_link(self, name: str) -> None:
        """Process a link failure: kill the wire, flush the queue, SPF,
        repair flows.  Failing an already-down link is a no-op."""
        if not self.link_state.get(name, False):
            return
        self.link_state[name] = False
        self.outages += 1
        self.net.links[name].fail()
        self.flushed_packets += self.net.ports[name].flush_queue()
        self._reconverge()

    def restore_link(self, name: str) -> None:
        """Process a link repair: bring the wire up, SPF, repair flows.
        Restoring an up link is a no-op."""
        if self.link_state.get(name, True):
            return
        self.link_state[name] = True
        self.restores += 1
        self.net.links[name].restore()
        self._reconverge()

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def _reconverge(self) -> None:
        self.recomputes += 1
        self.net.install_routing(spf_from_network(self.net, self.link_state))
        for record in self._tracked.values():
            self._refresh_flow(record)

    def _route_of_hosts(self, src: str, dst: str) -> Optional[Tuple[str, ...]]:
        try:
            return tuple(self.net.link_names_on_path(src, dst))
        except RoutingError:
            return None

    def _refresh_flow(self, record: _TrackedFlow) -> None:
        if record.torn_down:
            return  # stays down: its source is stopped (see module doc)
        new_links = self._route_of_hosts(record.src, record.dst)
        if record.core_spec is None or self.signaling is None:
            # Best-effort: follows the swapped tables; just count moves.
            if new_links is not None and new_links != record.links:
                record.reroutes += 1
            record.links = new_links
            return
        if new_links == record.links:
            return  # commitment intact on an unchanged, live path
        # The flow's path moved (or vanished): migrate the reservation.
        if record.name in self.signaling.grants:
            self.signaling.teardown(record.name)
        if new_links is None:
            record.refusals += 1
            self._tear_down(record)
            return
        try:
            grant = self.signaling.establish(record.core_spec)
        except FlowEstablishmentError:
            record.refusals += 1
            self._tear_down(record)
            return
        record.reroutes += 1
        record.readmissions += 1
        record.links = new_links
        if self.on_rerouted is not None:
            self.on_rerouted(record.name, grant)

    def _tear_down(self, record: _TrackedFlow) -> None:
        record.torn_down = True
        record.links = None
        if self.on_torn_down is not None:
            self.on_torn_down(record.name)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> ControlPlaneStats:
        """Snapshot of controller activity and the failure ledgers."""
        wire_killed = tuple(
            (name, link.packets_failed)
            for name, link in sorted(self.net.links.items())
            if link.packets_failed
        )
        no_route: Dict[str, int] = {}
        for switch in self.net.switches.values():
            for flow, count in switch.no_route_drops.items():
                no_route[flow] = no_route.get(flow, 0) + count
        return ControlPlaneStats(
            outages=self.outages,
            restores=self.restores,
            recomputes=self.recomputes,
            flushed_packets=self.flushed_packets,
            wire_killed=wire_killed,
            no_route_drops=tuple(sorted(no_route.items())),
            flows=tuple(
                FlowRerouteStats(
                    name=record.name,
                    reroutes=record.reroutes,
                    readmissions=record.readmissions,
                    refusals=record.refusals,
                    torn_down=record.torn_down,
                )
                for record in self._tracked.values()
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        down = [name for name, ok in self.link_state.items() if not ok]
        return (
            f"<LinkStateController links={len(self.link_state)} "
            f"down={down} flows={len(self._tracked)}>"
        )
