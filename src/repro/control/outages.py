"""The seeded outage process: scheduled link failures and repairs.

:class:`OutageProcess` turns an outage specification into simulator
events driving a :class:`~repro.control.controller.LinkStateController`.
Two sources compose:

* **Explicit events** — ``(link, at, duration)`` tuples, for
  deterministic experiments (the failover flagship pins one mid-run
  failure this way).
* **A sampled process** — outages arrive Poisson at ``rate_per_second``
  after ``start_after``; each takes down ``correlated_links`` currently-
  up candidate links at once (correlated multi-link failure) and repairs
  them together after an exponential ``mean_duration_seconds`` holding
  time.  All draws come from the single RNG handed in — the scenario
  layer passes a dedicated named stream, so the outage schedule is
  identical across paired discipline runs.

Every timer goes through ``schedule_handle`` so :meth:`OutageProcess.stop`
can cancel cleanly, and a failure scheduled for a link that is already
down (overlapping windows) merges into the earlier outage: the
controller's ``fail_link``/``restore_link`` are idempotent.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.control.controller import LinkStateController
    from repro.sim.engine import Simulator
    from repro.sim.events import EventHandle
    from repro.sim.randomness import StreamRandom


@dataclasses.dataclass(frozen=True)
class LinkTransition:
    """One link-state change of a replayed outage schedule: ``link``
    goes down (``up=False``) or comes back (``up=True``) at ``time``."""

    time: float
    link: str
    up: bool


def compute_outage_schedule(
    spec,
    link_names: Iterable[str],
    rng: Optional["StreamRandom"],
    horizon: float,
) -> Tuple[LinkTransition, ...]:
    """Replay an outage spec without a simulator clock.

    Produces the exact sequence of link-state changes an
    :class:`OutageProcess` driving a
    :class:`~repro.control.controller.LinkStateController` would apply
    over ``[0, horizon]`` — same draws, same order, same idempotent
    merging of overlapping windows.  The fluid engine compiles this
    schedule into epoch boundaries; because the draws come from the same
    named stream the packet engine uses (``"outage:process"``), failure
    schedules pair across disciplines *and* engines.

    Fidelity notes, each load-bearing for cross-engine pairing:

    * The arming order mirrors ``OutageProcess.__init__``: explicit
      events first (spec order), then the first sampled arrival.  Ties
      resolve by arming sequence, exactly like the simulator's
      ``(time, priority, seq)`` heap with uniform priority.
    * Per sampled firing the draw order is ``sample(up, count)`` →
      ``exponential(mean_duration)`` — skipped entirely when no
      candidate link is up — then the ``max_outages`` check, then the
      ``exponential(1/rate)`` gap; explicit events count toward
      ``max_outages`` just as ``OutageProcess.outages_fired`` does.
    * Events scheduled exactly at ``horizon`` still fire
      (``Simulator.run(until=horizon)`` semantics); anything later is
      never drawn or applied.

    Returns the *effective* transitions only: failing an already-down
    link or restoring an up link is a no-op, as in the controller.
    """
    state = {name: True for name in link_names}
    candidates: Tuple[str, ...] = (
        tuple(spec.links) if spec.links is not None
        else tuple(sorted(state))
    )
    transitions: List[LinkTransition] = []
    heap: List[Tuple[float, int, int, object]] = []
    seq = 0
    _EXPLICIT, _RESTORE, _DUE = 0, 1, 2

    def arm(time: float, kind: int, payload=None) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, seq, kind, payload))
        seq += 1

    for event in spec.events:
        arm(event.at, _EXPLICIT, event)
    if spec.rate_per_second > 0:
        if rng is None:
            raise ValueError(
                "a seeded rng is required for a sampled outage process"
            )
        arm(
            spec.start_after + rng.exponential(1.0 / spec.rate_per_second),
            _DUE,
        )

    def fail(link: str, time: float) -> None:
        if state.get(link, False):
            state[link] = False
            transitions.append(LinkTransition(time, link, up=False))

    def restore(link: str, time: float) -> None:
        if not state.get(link, True):
            state[link] = True
            transitions.append(LinkTransition(time, link, up=True))

    fired = 0
    while heap:
        time, _, kind, payload = heapq.heappop(heap)
        if time > horizon:
            break  # heap pops in time order: everything left is later
        if kind == _EXPLICIT:
            fired += 1
            fail(payload.link, time)
            arm(time + payload.duration, _RESTORE, (payload.link,))
        elif kind == _RESTORE:
            for name in payload:
                restore(name, time)
        else:  # sampled outage due
            up = [n for n in candidates if state.get(n, False)]
            count = min(spec.correlated_links, len(up))
            if count:
                victims = rng.sample(up, count)
                fired += 1
                for name in victims:
                    fail(name, time)
                duration = rng.exponential(spec.mean_duration_seconds)
                arm(time + duration, _RESTORE, tuple(victims))
            if spec.max_outages is not None and fired >= spec.max_outages:
                continue
            gap = rng.exponential(1.0 / spec.rate_per_second)
            arm(time + gap, _DUE)
    return tuple(transitions)


class OutageProcess:
    """Schedules link up/down events against a controller.

    Args:
        sim: the simulator.
        controller: receives ``fail_link`` / ``restore_link`` calls.
        spec: an outage specification
            (:class:`repro.scenario.spec.OutageSpec` or anything with its
            fields).
        rng: seeded random stream for the sampled process (may be None
            when the spec is explicit-events-only).
    """

    def __init__(
        self,
        sim: "Simulator",
        controller: "LinkStateController",
        spec,
        rng: Optional["StreamRandom"] = None,
    ):
        self.sim = sim
        self.controller = controller
        self.spec = spec
        self.rng = rng
        self.outages_fired = 0
        self._stopped = False
        self._handles: List["EventHandle"] = []
        # Candidate links for the sampled process, in deterministic order.
        if spec.links is not None:
            self._candidates: Tuple[str, ...] = tuple(spec.links)
        else:
            self._candidates = tuple(sorted(controller.link_state))
        for event in spec.events:
            self._arm_at(event.at, self._explicit_fail(event))
        if spec.rate_per_second > 0:
            if rng is None:
                raise ValueError(
                    "a seeded rng is required for a sampled outage process"
                )
            self._arm_at(
                spec.start_after + rng.exponential(1.0 / spec.rate_per_second),
                self._on_outage_due,
            )

    # ------------------------------------------------------------------
    def _arm_at(self, time: float, action) -> None:
        self._handles.append(self.sim.schedule_handle_at(time, action))

    def _explicit_fail(self, event):
        def fire() -> None:
            self.outages_fired += 1
            self.controller.fail_link(event.link)
            self._arm_at(
                event.at + event.duration,
                lambda: self.controller.restore_link(event.link),
            )

        return fire

    # ------------------------------------------------------------------
    def _on_outage_due(self) -> None:
        spec = self.spec
        rng = self.rng
        up = [
            name
            for name in self._candidates
            if self.controller.link_state.get(name, False)
        ]
        count = min(spec.correlated_links, len(up))
        if count:
            victims = rng.sample(up, count)
            self.outages_fired += 1
            for name in victims:
                self.controller.fail_link(name)
            duration = rng.exponential(spec.mean_duration_seconds)
            self._arm_at(
                self.sim.now + duration, self._restorer(tuple(victims))
            )
        if (
            spec.max_outages is not None
            and self.outages_fired >= spec.max_outages
        ):
            return
        gap = rng.exponential(1.0 / spec.rate_per_second)
        self._arm_at(self.sim.now + gap, self._on_outage_due)

    def _restorer(self, names: Tuple[str, ...]):
        def fire() -> None:
            for name in names:
                self.controller.restore_link(name)

        return fire

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Cancel every pending outage/repair timer."""
        self._stopped = True
        for handle in self._handles:
            if handle.active:
                handle.cancel()
        self._handles.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<OutageProcess fired={self.outages_fired} "
            f"pending={sum(1 for h in self._handles if h.active)}>"
        )
