"""The seeded outage process: scheduled link failures and repairs.

:class:`OutageProcess` turns an outage specification into simulator
events driving a :class:`~repro.control.controller.LinkStateController`.
Two sources compose:

* **Explicit events** — ``(link, at, duration)`` tuples, for
  deterministic experiments (the failover flagship pins one mid-run
  failure this way).
* **A sampled process** — outages arrive Poisson at ``rate_per_second``
  after ``start_after``; each takes down ``correlated_links`` currently-
  up candidate links at once (correlated multi-link failure) and repairs
  them together after an exponential ``mean_duration_seconds`` holding
  time.  All draws come from the single RNG handed in — the scenario
  layer passes a dedicated named stream, so the outage schedule is
  identical across paired discipline runs.

Every timer goes through ``schedule_handle`` so :meth:`OutageProcess.stop`
can cancel cleanly, and a failure scheduled for a link that is already
down (overlapping windows) merges into the earlier outage: the
controller's ``fail_link``/``restore_link`` are idempotent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.control.controller import LinkStateController
    from repro.sim.engine import Simulator
    from repro.sim.events import EventHandle
    from repro.sim.randomness import StreamRandom


class OutageProcess:
    """Schedules link up/down events against a controller.

    Args:
        sim: the simulator.
        controller: receives ``fail_link`` / ``restore_link`` calls.
        spec: an outage specification
            (:class:`repro.scenario.spec.OutageSpec` or anything with its
            fields).
        rng: seeded random stream for the sampled process (may be None
            when the spec is explicit-events-only).
    """

    def __init__(
        self,
        sim: "Simulator",
        controller: "LinkStateController",
        spec,
        rng: Optional["StreamRandom"] = None,
    ):
        self.sim = sim
        self.controller = controller
        self.spec = spec
        self.rng = rng
        self.outages_fired = 0
        self._stopped = False
        self._handles: List["EventHandle"] = []
        # Candidate links for the sampled process, in deterministic order.
        if spec.links is not None:
            self._candidates: Tuple[str, ...] = tuple(spec.links)
        else:
            self._candidates = tuple(sorted(controller.link_state))
        for event in spec.events:
            self._arm_at(event.at, self._explicit_fail(event))
        if spec.rate_per_second > 0:
            if rng is None:
                raise ValueError(
                    "a seeded rng is required for a sampled outage process"
                )
            self._arm_at(
                spec.start_after + rng.exponential(1.0 / spec.rate_per_second),
                self._on_outage_due,
            )

    # ------------------------------------------------------------------
    def _arm_at(self, time: float, action) -> None:
        self._handles.append(self.sim.schedule_handle_at(time, action))

    def _explicit_fail(self, event):
        def fire() -> None:
            self.outages_fired += 1
            self.controller.fail_link(event.link)
            self._arm_at(
                event.at + event.duration,
                lambda: self.controller.restore_link(event.link),
            )

        return fire

    # ------------------------------------------------------------------
    def _on_outage_due(self) -> None:
        spec = self.spec
        rng = self.rng
        up = [
            name
            for name in self._candidates
            if self.controller.link_state.get(name, False)
        ]
        count = min(spec.correlated_links, len(up))
        if count:
            victims = rng.sample(up, count)
            self.outages_fired += 1
            for name in victims:
                self.controller.fail_link(name)
            duration = rng.exponential(spec.mean_duration_seconds)
            self._arm_at(
                self.sim.now + duration, self._restorer(tuple(victims))
            )
        if (
            spec.max_outages is not None
            and self.outages_fired >= spec.max_outages
        ):
            return
        gap = rng.exponential(1.0 / spec.rate_per_second)
        self._arm_at(self.sim.now + gap, self._on_outage_due)

    def _restorer(self, names: Tuple[str, ...]):
        def fire() -> None:
            for name in names:
                self.controller.restore_link(name)

        return fire

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Cancel every pending outage/repair timer."""
        self._stopped = True
        for handle in self._handles:
            if handle.active:
                handle.cancel()
        self._handles.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<OutageProcess fired={self.outages_fired} "
            f"pending={sum(1 for h in self._handles if h.active)}>"
        )
