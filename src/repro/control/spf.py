"""Dijkstra shortest-path-first route computation.

The control plane recomputes all-pairs next-hop tables from its live
link-state view on every topology change.  The computation is Dijkstra
SPF (heap keyed by ``(distance, insertion-sequence)``), with neighbours
relaxed in sorted name order and strict-``<`` relaxation.

Under the default unit link costs this reproduces the build-time BFS
tables of :class:`repro.net.routing.StaticRouting` *exactly*: each node
is pushed once, at first discovery, so heap pop order equals BFS FIFO
order and the parent of every node is its first discoverer.  That
equivalence is load-bearing — when a failed link is restored, the
recomputed routes return bit-for-bit to the pre-failure ones — and is
pinned by tests.  Non-unit costs are supported for weighted topologies.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.net.routing import RoutingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.network import Network


class SpfRouting:
    """All-pairs next hops computed once, by Dijkstra, at construction.

    Drop-in for :class:`~repro.net.routing.StaticRouting` on the read
    side (``next_hop`` / ``path``); unlike it, the graph is fixed at
    construction — the control plane builds a fresh instance per
    link-state change and swaps it in via
    :meth:`repro.net.network.Network.install_routing`.

    Args:
        adjacency: node -> iterable of neighbour names (directed edges).
        costs: optional ``(src, dst) -> cost`` mapping; edges default to
            cost 1.0 (hop-count shortest paths, BFS-equivalent).
    """

    def __init__(
        self,
        adjacency: Mapping[str, Iterable[str]],
        costs: Optional[Mapping[Tuple[str, str], float]] = None,
    ):
        self._adj: Dict[str, List[str]] = {
            node: sorted(neighbors) for node, neighbors in adjacency.items()
        }
        for neighbors in self._adj.values():
            for neighbor in neighbors:
                if neighbor not in self._adj:
                    raise ValueError(f"edge to undeclared node {neighbor}")
        self._costs = dict(costs or {})
        for edge, cost in self._costs.items():
            if cost <= 0:
                raise ValueError(f"cost of edge {edge} must be positive")
        self._next_hop: Dict[Tuple[str, str], str] = {}
        for src in sorted(self._adj):
            self._single_source(src)

    def _single_source(self, src: str) -> None:
        costs = self._costs
        dist: Dict[str, float] = {src: 0.0}
        parent: Dict[str, str] = {}
        heap: List[Tuple[float, int, str]] = [(0.0, 0, src)]
        seq = 1
        done = set()
        while heap:
            d, __, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v in self._adj[u]:
                nd = d + costs.get((u, v), 1.0)
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, seq, v))
                    seq += 1
        next_hop = self._next_hop
        for dst in done:
            if dst == src:
                continue
            hop = dst
            while parent[hop] != src:
                hop = parent[hop]
            next_hop[(src, dst)] = hop

    # -- read interface (StaticRouting-compatible) ---------------------
    def next_hop(self, here: str, destination: str) -> str:
        """Neighbour to forward to from ``here`` toward ``destination``.

        Raises:
            RoutingError: if no path exists in the current link state.
        """
        try:
            return self._next_hop[(here, destination)]
        except KeyError:
            raise RoutingError(
                f"no route from {here} to {destination}"
            ) from None

    def path(self, src: str, dst: str) -> List[str]:
        """Full node path src..dst (inclusive)."""
        if src == dst:
            return [src]
        path = [src]
        here = src
        seen = {src}
        while here != dst:
            here = self.next_hop(here, dst)
            if here in seen:  # pragma: no cover - defensive
                raise RoutingError(f"routing loop from {src} to {dst}")
            seen.add(here)
            path.append(here)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpfRouting nodes={len(self._adj)} "
            f"entries={len(self._next_hop)}>"
        )


def spf_from_topology(
    topology, down: Iterable[str] = ()
) -> SpfRouting:
    """Build SPF routes over a :class:`~repro.scenario.spec.TopologySpec`
    with the ``down`` links removed — no network, no simulator clock.

    The fluid engine's control plane reroutes through this: the graph is
    the switch-level subset of what :func:`spf_from_network` sees (hosts
    are leaves — they never transit, and within one BFS level their
    presence cannot reorder switch discovery, so switch-to-switch paths
    are identical with or without them).  Host endpoints are re-attached
    by the caller via the topology's attachment map.  With ``down``
    empty the unit-cost equivalence to the build-time BFS tables applies
    unchanged, so restoring the last failed link returns every path
    bit-identically to the pre-failure routes.
    """
    dead = frozenset(down)
    adjacency: Dict[str, List[str]] = {n: [] for n in topology.nodes}
    for link in topology.links:
        if link.name not in dead:
            adjacency[link.src].append(link.dst)
    return SpfRouting(adjacency)


def spf_from_network(
    net: "Network", link_state: Mapping[str, bool]
) -> SpfRouting:
    """Build SPF routes over a network's *live* links.

    The graph mirrors what :class:`~repro.net.network.Network` declares
    to its build-time routing — switch-switch edges for every link whose
    ``link_state`` entry is True, plus bidirectional host-switch edges
    (hosts attach over infinitely fast links that never fail).
    """
    adjacency: Dict[str, List[str]] = {name: [] for name in net.switches}
    for host in net.hosts.values():
        adjacency[host.name] = [host.attached_switch.name]
        adjacency[host.attached_switch.name].append(host.name)
    for name in net.links:
        if not link_state.get(name, True):
            continue
        src, dst = name.split("->", 1)
        adjacency[src].append(dst)
    return SpfRouting(adjacency)
