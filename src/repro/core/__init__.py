"""The paper's architecture: service commitments, interface, bounds,
measurement-based admission control, signaling, and playback applications.

This is the layer that turns the scheduling *mechanism* (:mod:`repro.sched`)
into the ISPN *architecture* of Sections 3, 8, and 9.
"""

from repro.core.service import (
    GuaranteedServiceSpec,
    PredictedServiceSpec,
    DatagramServiceSpec,
    FlowSpec,
)
from repro.core.bounds import (
    parekh_gallager_fluid_bound,
    parekh_gallager_packet_bound,
    predicted_path_bound,
)
from repro.core.measurement import SwitchMeasurement, MeasurementConfig
from repro.core.admission import AdmissionController, AdmissionConfig, AdmissionDecision
from repro.core.signaling import SignalingAgent, FlowEstablishmentError
from repro.core.playback import (
    PlaybackApplication,
    RigidPlayback,
    AdaptivePlayback,
    PlaybackStats,
)
from repro.core.pricing import Tariff, UsageMeter, Invoice
from repro.core.taxonomy import (
    Adaptivity,
    Tolerance,
    Recommendation,
    classify_client,
    recommend_service,
)

__all__ = [
    "GuaranteedServiceSpec",
    "PredictedServiceSpec",
    "DatagramServiceSpec",
    "FlowSpec",
    "parekh_gallager_fluid_bound",
    "parekh_gallager_packet_bound",
    "predicted_path_bound",
    "SwitchMeasurement",
    "MeasurementConfig",
    "AdmissionController",
    "AdmissionConfig",
    "AdmissionDecision",
    "SignalingAgent",
    "FlowEstablishmentError",
    "PlaybackApplication",
    "RigidPlayback",
    "AdaptivePlayback",
    "PlaybackStats",
    "Tariff",
    "UsageMeter",
    "Invoice",
    "Adaptivity",
    "Tolerance",
    "Recommendation",
    "classify_client",
    "recommend_service",
]
