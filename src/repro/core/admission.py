"""Measurement-based admission control (Section 9).

The paper's example criteria, implemented literally.  A predicted-service
flow declaring token bucket (r, b) may be admitted at priority level i on a
link of speed mu iff

  (1)  r + nu_hat < 0.9 * mu                       (the 10 % datagram quota)
  (2)  b < (D_j - d_hat_j) * (mu - nu_hat - r)     for every class j of
       lower or equal priority (j >= i in our numbering, 0 = highest)

where nu_hat is the measured real-time utilization and d_hat_j the measured
maximal delay of class j at this switch.  Criterion (2) is the paper's
heuristic that even a worst-case burst b from the new flow, drained by the
residual capacity (mu - nu_hat - r), must not push any equal-or-lower class
past its bound D_j.

For a guaranteed request the network knows only the clock rate r (Section
8: no bucket size is declared), so criterion (2) cannot be evaluated; the
controller applies criterion (1) plus the structural WFQ constraint that
the sum of all guaranteed clock rates on the link stays within the 90 %
real-time quota.  Guaranteed commitments are treated as higher priority
than every predicted class — their load reaches criterion (2) for later
requests through the measured nu_hat and d_hat_j, exactly the
"measure the existing traffic, worst-case only the newcomer" philosophy the
paper advocates.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence

from repro.core.measurement import SwitchMeasurement
from repro.net.port import OutputPort


class AdmissionVerdict(enum.Enum):
    ACCEPT = "accept"
    REJECT_UTILIZATION = "reject: r + nu_hat exceeds the real-time quota"
    REJECT_DELAY_IMPACT = "reject: burst would violate a class delay bound"
    REJECT_NO_CAPACITY = "reject: guaranteed clock rates would exceed quota"
    REJECT_INFEASIBLE = "reject: no priority class can meet the target"


@dataclasses.dataclass
class AdmissionDecision:
    """Outcome of one admission check at one link."""

    verdict: AdmissionVerdict
    link_name: str
    detail: str = ""

    @property
    def accepted(self) -> bool:
        return self.verdict is AdmissionVerdict.ACCEPT


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Policy knobs.

    Attributes:
        realtime_quota: fraction of the link reservable by real-time
            traffic; the paper argues for 0.9, leaving >= 10 % to datagram
            service "to ensure that the datagram service remains
            operational at all times".
        class_bounds_seconds: the K widely spaced per-switch target delay
            bounds D_i for predicted classes, index 0 = highest priority =
            tightest bound.  The paper suggests spacing them "no closer
            than an order of magnitude".
    """

    realtime_quota: float = 0.9
    class_bounds_seconds: Sequence[float] = (0.02, 0.2)

    def __post_init__(self):
        if not 0.0 < self.realtime_quota < 1.0:
            raise ValueError("quota must be a fraction in (0, 1)")
        if not self.class_bounds_seconds:
            raise ValueError("need at least one predicted class bound")
        previous = 0.0
        for bound in self.class_bounds_seconds:
            if bound <= previous:
                raise ValueError(
                    "class bounds must be positive and strictly increasing "
                    "(class 0 = highest priority = tightest)"
                )
            previous = bound

    @property
    def num_classes(self) -> int:
        return len(self.class_bounds_seconds)


class AdmissionController:
    """Admission logic for one network; tracks guaranteed reservations.

    The controller holds, per link, the book of guaranteed clock-rate
    reservations (which it must know exactly — they are commitments, not
    measurements) and consults a :class:`SwitchMeasurement` for everything
    else.
    """

    def __init__(self, config: AdmissionConfig | None = None):
        self.config = config or AdmissionConfig()
        self._guaranteed_reservations: Dict[str, Dict[str, float]] = {}
        self._measurements: Dict[str, SwitchMeasurement] = {}
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------
    def attach_measurement(self, link_name: str, measurement: SwitchMeasurement) -> None:
        self._measurements[link_name] = measurement

    def reserved_guaranteed_bps(self, link_name: str) -> float:
        return sum(self._guaranteed_reservations.get(link_name, {}).values())

    def record_guaranteed(self, link_name: str, flow_id: str, rate_bps: float) -> None:
        self._guaranteed_reservations.setdefault(link_name, {})[flow_id] = rate_bps

    def release_guaranteed(self, link_name: str, flow_id: str) -> None:
        self._guaranteed_reservations.get(link_name, {}).pop(flow_id, None)

    def decisions_for(self, link_name: str) -> List[AdmissionDecision]:
        """All decisions taken at one link, in order.

        On merge topologies one link sits on many paths; this is the
        per-link view of how the converging requests fared there.
        """
        return [d for d in self.decisions if d.link_name == link_name]

    # ------------------------------------------------------------------
    def choose_class(self, per_switch_target: float) -> Optional[int]:
        """Lowest-priority class whose per-switch bound meets the target.

        Returns None when even class 0 is too slow (infeasible request —
        the client should ask for guaranteed service instead).
        """
        chosen = None
        for idx, bound in enumerate(self.config.class_bounds_seconds):
            if bound <= per_switch_target:
                chosen = idx  # keep walking: later = lower priority = cheaper
        return chosen

    # ------------------------------------------------------------------
    def check_predicted(
        self,
        link_name: str,
        port: OutputPort,
        priority_class: int,
        token_rate_bps: float,
        bucket_depth_bits: float,
        now: float,
    ) -> AdmissionDecision:
        """Apply criteria (1) and (2) for a predicted flow at one link."""
        mu = port.link.rate_bps
        measurement = self._measurements.get(link_name)
        nu_hat = (
            measurement.realtime_utilization_bps(now) if measurement else 0.0
        )
        # Measured utilization can momentarily under-count just-reserved
        # guaranteed flows that have not started sending; take the max of
        # measurement and the reservation book to stay conservative.
        nu_hat = max(nu_hat, self.reserved_guaranteed_bps(link_name))
        # Criterion (1): r + nu_hat < quota * mu.
        if token_rate_bps + nu_hat >= self.config.realtime_quota * mu:
            decision = AdmissionDecision(
                AdmissionVerdict.REJECT_UTILIZATION,
                link_name,
                detail=(
                    f"r={token_rate_bps:.0f} + nu_hat={nu_hat:.0f} >= "
                    f"{self.config.realtime_quota:.0%} of mu={mu:.0f}"
                ),
            )
            self.decisions.append(decision)
            return decision
        # Criterion (2): for every class of lower or equal priority.
        residual = mu - nu_hat - token_rate_bps
        for j in range(priority_class, self.config.num_classes):
            d_j = self.config.class_bounds_seconds[j]
            d_hat_j = (
                measurement.class_delay_bound(j, now) if measurement else 0.0
            )
            headroom = (d_j - d_hat_j) * residual
            if bucket_depth_bits >= headroom:
                decision = AdmissionDecision(
                    AdmissionVerdict.REJECT_DELAY_IMPACT,
                    link_name,
                    detail=(
                        f"class {j}: b={bucket_depth_bits:.0f} >= "
                        f"(D_j={d_j:.4f} - d_hat={d_hat_j:.4f}) * "
                        f"residual={residual:.0f}"
                    ),
                )
                self.decisions.append(decision)
                return decision
        decision = AdmissionDecision(AdmissionVerdict.ACCEPT, link_name)
        self.decisions.append(decision)
        return decision

    def check_guaranteed(
        self,
        link_name: str,
        port: OutputPort,
        clock_rate_bps: float,
        now: float,
    ) -> AdmissionDecision:
        """Criterion (1) + structural clock-rate feasibility for one link."""
        mu = port.link.rate_bps
        quota_bps = self.config.realtime_quota * mu
        reserved = self.reserved_guaranteed_bps(link_name)
        if reserved + clock_rate_bps > quota_bps:
            decision = AdmissionDecision(
                AdmissionVerdict.REJECT_NO_CAPACITY,
                link_name,
                detail=(
                    f"reserved={reserved:.0f} + r={clock_rate_bps:.0f} > "
                    f"quota={quota_bps:.0f}"
                ),
            )
            self.decisions.append(decision)
            return decision
        measurement = self._measurements.get(link_name)
        nu_hat = (
            measurement.realtime_utilization_bps(now) if measurement else 0.0
        )
        nu_hat = max(nu_hat, reserved)
        if clock_rate_bps + nu_hat >= quota_bps:
            decision = AdmissionDecision(
                AdmissionVerdict.REJECT_UTILIZATION,
                link_name,
                detail=(
                    f"r={clock_rate_bps:.0f} + nu_hat={nu_hat:.0f} >= "
                    f"quota={quota_bps:.0f}"
                ),
            )
            self.decisions.append(decision)
            return decision
        decision = AdmissionDecision(AdmissionVerdict.ACCEPT, link_name)
        self.decisions.append(decision)
        return decision
