"""Delay bound computations (Section 4; Table 3's "P-G bound" column).

The Parekh-Gallager result: in a network of arbitrary topology, a flow that
(a) conforms to an (r, b) token bucket, (b) receives the same WFQ clock rate
r at every switch, and (c) traverses only switches where the clock rates sum
to at most the link speed, has total queueing delay bounded by

    D_fluid = b / r                                  (fluid GPS)

independent of all other traffic.  For the packetized system (PGPS/WFQ) the
bound acquires per-hop packetization terms (Parekh's thesis, simplified to
the uniform-packet-size case the paper simulates):

    D_packet = b/r + (K-1) * p/r + sum_k p_max/C_k

where K is the number of hops, p the flow's packet size, and C_k the speed
of the k-th link.  The p/r term reflects that a packet may finish behind its
fluid finish time by one packet service at its own rate per hop; the
p_max/C_k term is the one-packet non-preemption slack at each link.

The experiments report the *fluid* b/r bound as "the P-G bound" plus the
packetized refinement; measured delays must fall below both for guaranteed
flows (Table 3's shape criterion).
"""

from __future__ import annotations

from typing import Sequence


def parekh_gallager_fluid_bound(bucket_depth_bits: float, clock_rate_bps: float) -> float:
    """The fluid GPS worst-case queueing delay b/r (seconds)."""
    if bucket_depth_bits <= 0:
        raise ValueError("bucket depth must be positive")
    if clock_rate_bps <= 0:
        raise ValueError("clock rate must be positive")
    return bucket_depth_bits / clock_rate_bps


def parekh_gallager_packet_bound(
    bucket_depth_bits: float,
    clock_rate_bps: float,
    packet_size_bits: float,
    link_rates_bps: Sequence[float],
) -> float:
    """Packetized PGPS end-to-end queueing delay bound (seconds).

    Args:
        bucket_depth_bits: b of the flow's token bucket.
        clock_rate_bps: r, the flow's clock rate at every hop.
        packet_size_bits: the flow's (maximum) packet size.
        link_rates_bps: the speed of each traversed link, one per hop.
    """
    if packet_size_bits <= 0:
        raise ValueError("packet size must be positive")
    if not link_rates_bps:
        raise ValueError("need at least one hop")
    for rate in link_rates_bps:
        if rate <= 0:
            raise ValueError("link rates must be positive")
        if clock_rate_bps > rate + 1e-9:
            raise ValueError(
                "clock rate exceeds a link speed; the P-G theorem requires "
                "sum of clock rates <= link speed at every hop"
            )
    hops = len(link_rates_bps)
    fluid = parekh_gallager_fluid_bound(bucket_depth_bits, clock_rate_bps)
    packetization = (hops - 1) * packet_size_bits / clock_rate_bps
    store_forward = sum(packet_size_bits / rate for rate in link_rates_bps)
    return fluid + packetization + store_forward


def parekh_gallager_paper_bound(
    bucket_depth_bits: float,
    clock_rate_bps: float,
    packet_size_bits: float,
    hops: int,
) -> float:
    """The P-G bound exactly as Table 3 computes it.

    Table 3's "P-G bound" column equals ``b(r)/r + (hops-1) * p/r`` in
    transmission-time units — the fluid bound plus one per-hop
    packetization term at the flow's own clock rate, with the per-link
    store-and-forward term omitted (the paper reports *queueing* delay,
    and a packet's own transmission time is not queueing).  Verifiable
    against the paper's numbers: a Guaranteed-Average flow (b = 50
    packets, r = 85 pkt/s) over 1 hop gives 588.24 tx-times and over 3
    hops 611.76; a Guaranteed-Peak flow (b = 1 packet at r = 170 pkt/s)
    gives 5.88 per hop — 11.76 at 2 hops, 23.53 at 4.
    """
    if hops < 1:
        raise ValueError("need at least one hop")
    if packet_size_bits <= 0:
        raise ValueError("packet size must be positive")
    fluid = parekh_gallager_fluid_bound(bucket_depth_bits, clock_rate_bps)
    return fluid + (hops - 1) * packet_size_bits / clock_rate_bps


def predicted_path_bound(per_switch_bounds: Sequence[float]) -> float:
    """A priori bound advertised to a predicted flow: sum of the class
    bounds D_i at each switch on its path (Section 7).

    The paper notes the true post facto bound over a long path will be well
    below this sum, but — predicted service being deliberately imprecise —
    the network "should just use the sum of the D_i's as the advertised
    bound".
    """
    if not per_switch_bounds:
        raise ValueError("need at least one switch bound")
    for bound in per_switch_bounds:
        if bound <= 0:
            raise ValueError("per-switch bounds must be positive")
    return float(sum(per_switch_bounds))


def required_clock_rate(
    bucket_depth_bits: float, target_delay_seconds: float
) -> float:
    """Invert the fluid bound: the clock rate needed for a delay target.

    Section 4: "The means by which the source can improve the worst case
    bound is to increase its r parameter."  Given b and a target D, the
    minimal guaranteed-service clock rate is b / D.  (Strictly b(r) itself
    shrinks as r grows, so this — using a fixed measured b — is
    conservative.)
    """
    if target_delay_seconds <= 0:
        raise ValueError("target delay must be positive")
    if bucket_depth_bits <= 0:
        raise ValueError("bucket depth must be positive")
    return bucket_depth_bits / target_delay_seconds
