"""Section 10 service extensions.

Three "other service qualities" the paper shows fit naturally into the CSZ
mechanism; two are implemented (the third — in-network buffering of *early*
packets — the paper itself argues against, and we follow that judgement,
documenting the rejection here).

1. **Drop-preference layering.**  A source separates its packets into
   importance levels so overload sheds the right ones.  The paper's recipe:
   "creating several priority classes with the same target D_i" — less
   important packets ride one priority level lower, arriving "just behind
   the more important packets, but with higher priority than the classes
   with larger D_i".  :func:`layered_class_bounds` builds such a class
   table, and :func:`importance_to_priority` maps (base class, importance)
   to the concrete priority index.

2. **Stale-packet discard.**  Packets already so late they will miss any
   reasonable play-back point should be dropped inside the network rather
   than delivered; the FIFO+ jitter offset "provides precisely the needed
   information".  Implemented in
   :class:`~repro.sched.fifoplus.FifoPlusScheduler` via
   ``stale_offset_threshold``; :func:`stale_threshold_for` derives a
   sensible threshold from a class's delay bound.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def layered_class_bounds(
    base_bounds: Sequence[float], importance_levels: int
) -> List[float]:
    """Expand per-class bounds D_i into drop-preference layers.

    Each original class is replicated ``importance_levels`` times with the
    *same* target bound; within a replicated group, lower importance sits
    at a lower priority index + epsilon ordering is positional.

    Returns the expanded, still non-decreasing, bound list whose index is
    the concrete priority level fed to the unified scheduler.

    Note: the admission controller's criterion (2) treats equal-bound
    classes identically, which is correct — they share a target.
    """
    if importance_levels < 1:
        raise ValueError("need at least one importance level")
    previous = 0.0
    for bound in base_bounds:
        if bound <= previous:
            raise ValueError("base bounds must be positive and increasing")
        previous = bound
    expanded: List[float] = []
    for bound in base_bounds:
        expanded.extend([bound] * importance_levels)
    return expanded


def importance_to_priority(
    base_class: int, importance: int, importance_levels: int
) -> int:
    """Concrete priority index for (base class, importance).

    Importance 0 is the most important; it gets the highest priority slot
    of its class group.
    """
    if not 0 <= importance < importance_levels:
        raise ValueError(
            f"importance must be in [0, {importance_levels}), got {importance}"
        )
    if base_class < 0:
        raise ValueError("base class cannot be negative")
    return base_class * importance_levels + importance


def stale_threshold_for(
    class_bound_seconds: float, hops_remaining: int, slack_factor: float = 2.0
) -> float:
    """A stale-discard threshold from a class bound (Section 10, item 2).

    A packet whose accumulated jitter offset already exceeds the class's
    total remaining budget (bound per hop x hops remaining, stretched by a
    slack factor so only hopeless packets die) is a candidate for
    in-network discard.
    """
    if class_bound_seconds <= 0:
        raise ValueError("class bound must be positive")
    if hops_remaining < 1:
        raise ValueError("need at least one remaining hop")
    if slack_factor < 1.0:
        raise ValueError("slack factor must be >= 1")
    return class_bound_seconds * hops_remaining * slack_factor


def unbundle_priority(priority: int, importance_levels: int) -> Tuple[int, int]:
    """Inverse of :func:`importance_to_priority`: (base_class, importance)."""
    if importance_levels < 1:
        raise ValueError("need at least one importance level")
    return divmod(priority, importance_levels)
