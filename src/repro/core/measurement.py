"""Per-switch measurement for admission control (Section 9).

The paper's admission heuristic consumes two measured quantities per output
port, with the "hat" denoting measurement rather than declaration:

* **nu-hat** — the measured utilization of the link due to *real-time*
  traffic (guaranteed + predicted), in bits/s.
* **d-hat_j** — the measured maximal queueing delay of each predicted
  class j at this switch.

"The key to making the predictive service commitments reliable is to choose
appropriately conservative measures": we use sliding-window estimators (a
windowed rate for nu-hat, a windowed maximum for d-hat) with an optional
multiplicative safety factor, both configurable so the admission bench can
explore the conservatism trade-off.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.net.packet import Packet, ServiceClass
from repro.net.port import OutputPort
from repro.stats.timeseries import RateMeter
from repro.stats.windowed import SlidingWindowMax


@dataclasses.dataclass(frozen=True)
class MeasurementConfig:
    """Estimator tuning.

    Attributes:
        utilization_window: trailing window (s) for the real-time bit rate.
        delay_window: trailing window (s) for per-class max delay.
        utilization_safety: multiplier applied to measured utilization
            before use in admission (>= 1 is conservative).
        delay_safety: multiplier applied to measured max delays.
    """

    utilization_window: float = 10.0
    delay_window: float = 30.0
    utilization_safety: float = 1.0
    delay_safety: float = 1.0

    def __post_init__(self):
        if self.utilization_window <= 0 or self.delay_window <= 0:
            raise ValueError("windows must be positive")
        if self.utilization_safety < 1.0 or self.delay_safety < 1.0:
            raise ValueError("safety factors must be >= 1 (conservative)")


class SwitchMeasurement:
    """Attaches to an output port and maintains nu-hat and d-hat_j.

    Wire-up is listener based: departures feed both the real-time rate
    meter (bits of guaranteed/predicted packets) and the per-class delay
    maxima (predicted packets only — guaranteed delay does not define any
    D_j, and datagram delay is uncommitted).
    """

    def __init__(self, port: OutputPort, config: MeasurementConfig | None = None):
        self.port = port
        self.config = config or MeasurementConfig()
        self._rt_bits = RateMeter(window=self.config.utilization_window)
        self._class_delay: Dict[int, SlidingWindowMax] = {}
        port.on_depart.append(self._on_depart)

    def _on_depart(self, packet: Packet, now: float, wait: float) -> None:
        if packet.service_class.is_realtime:
            self._rt_bits.add(now, packet.size_bits)
        if packet.service_class is ServiceClass.PREDICTED:
            tracker = self._class_delay.get(packet.priority_class)
            if tracker is None:
                tracker = SlidingWindowMax(self.config.delay_window)
                self._class_delay[packet.priority_class] = tracker
            tracker.add(now, wait)

    # ------------------------------------------------------------------
    def realtime_utilization_bps(self, now: float) -> float:
        """nu-hat: measured real-time bits/s over the trailing window,
        scaled by the configured safety factor."""
        return self._rt_bits.windowed_rate(now) * self.config.utilization_safety

    def class_delay_bound(self, priority_class: int, now: float) -> float:
        """d-hat_j: recent maximal queueing delay of class j (seconds),
        scaled by the safety factor; 0 if the class has carried nothing
        recently (an empty class has no measured delay)."""
        tracker = self._class_delay.get(priority_class)
        if tracker is None:
            return 0.0
        return tracker.max(now, default=0.0) * self.config.delay_safety

    def observed_classes(self) -> list[int]:
        return sorted(self._class_delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SwitchMeasurement port={self.port.name}>"
