"""Play-back applications: rigid and adaptive receivers (Sections 2-3).

A play-back application buffers arriving packets and replays the signal at
a *play-back point*: a packet generated at time t is played at t + offset.
Data arriving after its play-back instant is useless (a "loss"); data
arriving before it just waits in the buffer (assumed ample, per the paper).

* :class:`RigidPlayback` fixes the offset at the network's a priori bound
  and never moves it — the intolerant-and-rigid client of the taxonomy,
  matched to guaranteed service.
* :class:`AdaptivePlayback` measures delivered delays and keeps the offset
  at (roughly) the minimal value whose recent loss rate stays under the
  target L — the tolerant-and-adaptive client, matched to predicted
  service.  It gambles that the recent past predicts the near future; when
  the network shifts, it suffers a brief loss burst and re-adapts, exactly
  the §3 narrative.

The *post facto* delay bound of §2 is simply the maximum (or a high
percentile) of observed delays; the adaptive client's offset tracks it.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Optional

from repro.net.node import Host
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.stats.percentile import PercentileTracker, exact_percentile
from repro.stats.summary import SummaryStats


@dataclasses.dataclass
class PlaybackStats:
    """Outcome summary of a playback session."""

    received: int = 0
    played: int = 0
    late: int = 0
    mean_offset: float = 0.0
    final_offset: float = 0.0
    mean_delay: float = 0.0
    max_delay: float = 0.0

    @property
    def loss_fraction(self) -> float:
        return self.late / self.received if self.received else 0.0


class PlaybackApplication:
    """Base class: delay accounting + late/played bookkeeping.

    Subclasses implement :meth:`current_offset` (and may adapt it as
    packets arrive via :meth:`observe`).
    """

    def __init__(self, sim: Simulator, host: Host, flow_id: str):
        self.sim = sim
        self.flow_id = flow_id
        self.delays = SummaryStats()
        self.delay_pct = PercentileTracker()
        self.received = 0
        self.played = 0
        self.late = 0
        self._offset_sum = 0.0
        self.offset_history: List[tuple] = []  # (time, offset) on change
        host.register_flow_handler(flow_id, self.on_packet)

    # -- subclass interface -------------------------------------------
    def current_offset(self) -> float:
        raise NotImplementedError

    def observe(self, delay: float) -> None:
        """Hook: called with each packet's end-to-end delay before the
        late/played decision (adaptive clients update state here)."""

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        now = self.sim.now
        delay = now - packet.created_at
        self.received += 1
        self.delays.add(delay)
        self.delay_pct.add(delay)
        self.observe(delay)
        offset = self.current_offset()
        self._offset_sum += offset
        playback_at = packet.created_at + offset
        if now <= playback_at:
            self.played += 1
        else:
            self.late += 1

    def stats(self) -> PlaybackStats:
        return PlaybackStats(
            received=self.received,
            played=self.played,
            late=self.late,
            mean_offset=self._offset_sum / self.received if self.received else 0.0,
            final_offset=self.current_offset(),
            mean_delay=self.delays.mean,
            max_delay=self.delays.max if self.received else 0.0,
        )

    @property
    def loss_fraction(self) -> float:
        return self.late / self.received if self.received else 0.0

    def post_facto_bound(self, pct: float = 100.0) -> float:
        """The observed delay bound (max, or a percentile of delays)."""
        if pct >= 100.0:
            return self.delays.max if self.received else 0.0
        return self.delay_pct.percentile(pct)


class RigidPlayback(PlaybackApplication):
    """Fixed play-back point at the advertised a priori bound."""

    def __init__(
        self, sim: Simulator, host: Host, flow_id: str, a_priori_bound: float
    ):
        if a_priori_bound <= 0:
            raise ValueError("a priori bound must be positive")
        super().__init__(sim, host, flow_id)
        self.a_priori_bound = a_priori_bound
        self.offset_history.append((sim.now, a_priori_bound))

    def current_offset(self) -> float:
        return self.a_priori_bound


class AdaptivePlayback(PlaybackApplication):
    """Percentile-tracking adaptive play-back point.

    Keeps a sliding window of recent delays and sets the offset to the
    (1 - target_loss) percentile of the window, times a safety margin.
    The offset is re-evaluated every ``adapt_every`` packets (adapting on
    every packet would be needlessly jumpy; the paper's clients adjust "as
    necessary").

    Args:
        target_loss: L, the tolerable fraction of late packets.
        window: number of recent delays retained.
        margin: multiplicative safety factor on the percentile.
        initial_offset: play-back point before any data arrives (a client
            would start from the advertised bound).
        adapt_every: packets between offset re-evaluations.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        target_loss: float = 0.01,
        window: int = 500,
        margin: float = 1.1,
        initial_offset: float = 0.5,
        adapt_every: int = 50,
    ):
        if not 0.0 < target_loss < 1.0:
            raise ValueError("target loss must be in (0, 1)")
        if window < 10:
            raise ValueError("window too small to estimate a percentile")
        if margin < 1.0:
            raise ValueError("margin must be >= 1")
        if adapt_every < 1:
            raise ValueError("adapt_every must be >= 1")
        super().__init__(sim, host, flow_id)
        self.target_loss = target_loss
        self.window = window
        self.margin = margin
        self.adapt_every = adapt_every
        self._recent: Deque[float] = deque(maxlen=window)
        self._offset = initial_offset
        self._since_adapt = 0
        self.adaptations = 0
        self.offset_history.append((sim.now, initial_offset))

    def observe(self, delay: float) -> None:
        self._recent.append(delay)
        self._since_adapt += 1
        if self._since_adapt >= self.adapt_every and len(self._recent) >= 10:
            self._since_adapt = 0
            self._adapt()

    def _adapt(self) -> None:
        ordered = sorted(self._recent)
        pct = 100.0 * (1.0 - self.target_loss)
        new_offset = exact_percentile(ordered, pct) * self.margin
        if new_offset != self._offset:
            self._offset = new_offset
            self.adaptations += 1
            self.offset_history.append((self.sim.now, new_offset))

    def current_offset(self) -> float:
        return self._offset
