"""Pricing and accounting (Section 12).

The paper closes on economics: "pricing must be a basic part of any
complete ISPN architecture.  If all services are free, there is no
incentive to request less than the best service the network can provide."
Predicted service is viable exactly because it can be priced below
guaranteed service, and within predicted service the lower-priority (higher
jitter) classes must be cheaper still, so that "some clients will request
higher jitter service because of its lower cost".

This module supplies the accounting machinery such a deployment needs:

* a :class:`Tariff` — per-class prices with the paper's required ordering
  (guaranteed > predicted class 0 > ... > predicted class K-1 > datagram);
* a :class:`UsageMeter` that attaches to output ports and meters delivered
  bits per flow (usage-based charging, the natural unit in a network whose
  commitments are about bandwidth and delay);
* an :class:`Invoice` per flow, combining a reservation charge (guaranteed
  clock rate x time, paid whether used or not — reserved capacity is real
  cost) with the usage charge.

Prices are in abstract "units per megabit" / "units per reserved
megabit-second"; the point is the *relative* structure, not currency.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.net.packet import Packet, ServiceClass
from repro.net.port import OutputPort

MEGABIT = 1_000_000.0


@dataclasses.dataclass(frozen=True)
class Tariff:
    """Per-class price schedule.

    Attributes:
        guaranteed_per_mbit: usage price of guaranteed bits.
        predicted_per_mbit: usage price per predicted class, index = class
            (0 = highest priority = most expensive predicted level).
        datagram_per_mbit: usage price of best-effort bits.
        reservation_per_mbit_second: standing charge per reserved megabit
            of guaranteed clock rate per second.
    """

    guaranteed_per_mbit: float = 10.0
    predicted_per_mbit: Sequence[float] = (6.0, 3.0)
    datagram_per_mbit: float = 1.0
    reservation_per_mbit_second: float = 2.0

    def __post_init__(self):
        if self.guaranteed_per_mbit <= 0 or self.datagram_per_mbit <= 0:
            raise ValueError("prices must be positive")
        if self.reservation_per_mbit_second < 0:
            raise ValueError("reservation price cannot be negative")
        if not self.predicted_per_mbit:
            raise ValueError("need at least one predicted class price")
        previous = self.guaranteed_per_mbit
        for price in self.predicted_per_mbit:
            if price <= 0:
                raise ValueError("prices must be positive")
            if price >= previous:
                raise ValueError(
                    "prices must strictly decrease from guaranteed through "
                    "the predicted classes (Section 12: lower jitter costs "
                    "more)"
                )
            previous = price
        if self.datagram_per_mbit >= previous:
            raise ValueError("datagram must be the cheapest service")

    def usage_price_per_mbit(
        self, service_class: ServiceClass, priority_class: int = 0
    ) -> float:
        """The per-megabit usage price of one delivered packet's class."""
        if service_class is ServiceClass.GUARANTEED:
            return self.guaranteed_per_mbit
        if service_class is ServiceClass.DATAGRAM:
            return self.datagram_per_mbit
        index = min(priority_class, len(self.predicted_per_mbit) - 1)
        return self.predicted_per_mbit[index]


@dataclasses.dataclass
class Invoice:
    """Charges accrued by one flow."""

    flow_id: str
    usage_bits: int = 0
    usage_charge: float = 0.0
    reservation_charge: float = 0.0

    @property
    def total(self) -> float:
        return self.usage_charge + self.reservation_charge


class UsageMeter:
    """Meters delivered bits per flow across a set of output ports.

    Bits are charged once per link traversed (transit pricing): a 4-hop
    guaranteed packet costs four times a 1-hop one, reflecting the
    resources it actually holds.  Attach the meter to whichever ports
    constitute the charging boundary to get edge pricing instead.
    """

    def __init__(self, tariff: Optional[Tariff] = None):
        self.tariff = tariff or Tariff()
        self._invoices: Dict[str, Invoice] = {}
        self._reservations: Dict[str, tuple] = {}  # flow -> (rate, since)

    # ------------------------------------------------------------------
    def attach(self, port: OutputPort) -> None:
        port.on_depart.append(self._on_depart)

    def _on_depart(self, packet: Packet, now: float, wait: float) -> None:
        invoice = self._invoice(packet.flow_id)
        invoice.usage_bits += packet.size_bits
        price = self.tariff.usage_price_per_mbit(
            packet.service_class, packet.priority_class
        )
        invoice.usage_charge += price * packet.size_bits / MEGABIT

    def _invoice(self, flow_id: str) -> Invoice:
        invoice = self._invoices.get(flow_id)
        if invoice is None:
            invoice = Invoice(flow_id=flow_id)
            self._invoices[flow_id] = invoice
        return invoice

    # ------------------------------------------------------------------
    def open_reservation(self, flow_id: str, rate_bps: float, now: float) -> None:
        """Start the standing charge for a guaranteed clock rate."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if flow_id in self._reservations:
            raise ValueError(f"flow {flow_id} already has an open reservation")
        self._reservations[flow_id] = (rate_bps, now)

    def close_reservation(self, flow_id: str, now: float) -> None:
        """Stop the standing charge, billing the elapsed interval."""
        rate_bps, since = self._reservations.pop(flow_id)
        self._bill_reservation(flow_id, rate_bps, since, now)

    def settle(self, now: float) -> None:
        """Bill all open reservations up to ``now`` (end of experiment)."""
        for flow_id, (rate_bps, since) in list(self._reservations.items()):
            self._bill_reservation(flow_id, rate_bps, since, now)
            self._reservations[flow_id] = (rate_bps, now)

    def _bill_reservation(
        self, flow_id: str, rate_bps: float, since: float, until: float
    ) -> None:
        if until < since:
            raise ValueError("cannot bill a negative interval")
        charge = (
            self.tariff.reservation_per_mbit_second
            * (rate_bps / MEGABIT)
            * (until - since)
        )
        self._invoice(flow_id).reservation_charge += charge

    # ------------------------------------------------------------------
    def invoice_of(self, flow_id: str) -> Invoice:
        return self._invoice(flow_id)

    def invoices(self) -> List[Invoice]:
        return sorted(self._invoices.values(), key=lambda inv: inv.flow_id)

    def total_revenue(self) -> float:
        return sum(invoice.total for invoice in self._invoices.values())
