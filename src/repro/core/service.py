"""The service interface (Section 8).

Two forms, exactly as the paper specifies:

* **Guaranteed**: the source specifies only its clock rate r.  The network
  guarantees the rate; the source uses its private knowledge of b(r) to
  compute its own worst-case delay (b/r).  No traffic characterization is
  passed, and the network performs **no conformance check** on guaranteed
  flows — the trac filter plays no role in scheduling them.
* **Predicted**: the source declares a token bucket (r, b) it promises to
  conform to, and requests a (D, L) service target — a delay bound and an
  acceptable loss rate.  The network maps (D, L) onto a priority class at
  each switch and enforces (r, b) at the network edge only.
* **Datagram**: no parameters; the network promises only not to delay or
  drop packets unnecessarily.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.net.packet import ServiceClass


@dataclasses.dataclass(frozen=True)
class GuaranteedServiceSpec:
    """Guaranteed-service request: just the WFQ clock rate r (bits/s)."""

    clock_rate_bps: float

    def __post_init__(self):
        if self.clock_rate_bps <= 0:
            raise ValueError("clock rate must be positive")

    @property
    def service_class(self) -> ServiceClass:
        return ServiceClass.GUARANTEED


@dataclasses.dataclass(frozen=True)
class PredictedServiceSpec:
    """Predicted-service request: traffic filter (r, b) + target (D, L).

    Attributes:
        token_rate_bps: r, the declared token bucket rate.
        bucket_depth_bits: b, the declared bucket depth.
        target_delay_seconds: D, the per-path delay the client can live
            with.  The network advertises the sum of the chosen per-switch
            class bounds D_i along the path as the a priori bound.
        target_loss_rate: L, the fraction of packets the client can afford
            to lose / have arrive late.
    """

    token_rate_bps: float
    bucket_depth_bits: float
    target_delay_seconds: float
    target_loss_rate: float = 0.01

    def __post_init__(self):
        if self.token_rate_bps <= 0:
            raise ValueError("token rate must be positive")
        if self.bucket_depth_bits <= 0:
            raise ValueError("bucket depth must be positive")
        if self.target_delay_seconds <= 0:
            raise ValueError("target delay must be positive")
        if not 0.0 <= self.target_loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")

    @property
    def service_class(self) -> ServiceClass:
        return ServiceClass.PREDICTED


@dataclasses.dataclass(frozen=True)
class DatagramServiceSpec:
    """Best-effort: no parameters, no commitments."""

    @property
    def service_class(self) -> ServiceClass:
        return ServiceClass.DATAGRAM


ServiceSpec = Union[GuaranteedServiceSpec, PredictedServiceSpec, DatagramServiceSpec]


@dataclasses.dataclass
class FlowSpec:
    """A flow's full service request as handed to signaling/admission.

    Attributes:
        flow_id: unique name.
        source / destination: host names.
        spec: one of the three service spec types above.
    """

    flow_id: str
    source: str
    destination: str
    spec: ServiceSpec

    @property
    def service_class(self) -> ServiceClass:
        return self.spec.service_class

    def advertised_bound(self, per_switch_bounds: list[float]) -> Optional[float]:
        """The a priori delay bound the network advertises (Section 7/8).

        For predicted service: the sum of the class bounds D_i at each
        switch on the path.  For guaranteed service the bound is computed
        by the *source* from b(r)/r, so the network returns None here;
        see :mod:`repro.core.bounds`.
        """
        if isinstance(self.spec, PredictedServiceSpec):
            return sum(per_switch_bounds)
        return None
