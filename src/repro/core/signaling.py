"""Flow establishment along a path (the last piece of Section 9's loop).

The paper does not fix a signaling protocol; it specifies *what must
happen*: the request visits every switch on the path, each applies the
admission criteria, and only if all accept are the commitments installed —
a WFQ clock rate at every hop for guaranteed flows, or a priority-class
assignment plus an **edge-only** token-bucket conformance check for
predicted flows ("after that initial check, conformance is never enforced
at later switches").  :class:`SignalingAgent` performs exactly that
sequence atomically within the simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.service import (
    FlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
)
from repro.net.network import Network
from repro.net.packet import Packet, ServiceClass
from repro.net.port import OutputPort
from repro.net.routing import RoutingError
from repro.sched.base import GuaranteedServiceUnsupported
from repro.traffic.token_bucket import NonconformingPolicy, TokenBucketFilter


class FlowEstablishmentError(RuntimeError):
    """Raised when a flow request is rejected; carries the decisions."""

    def __init__(self, message: str, decisions: List[AdmissionDecision]):
        super().__init__(message)
        self.decisions = decisions


@dataclasses.dataclass
class FlowGrant:
    """The network's answer to an accepted request.

    Attributes:
        flow_id: the granted flow.
        service_class: granted commitment level.
        priority_class: assigned predicted class (predicted flows only).
        advertised_bound_seconds: the a priori delay bound the network
            advertises — sum of per-switch D_i for predicted service; None
            for guaranteed service (the *source* computes b(r)/r itself,
            Section 8).
        path: node names from source host to destination host.
        link_names: the links (ports) the flow traverses.
    """

    flow_id: str
    service_class: ServiceClass
    priority_class: Optional[int]
    advertised_bound_seconds: Optional[float]
    path: List[str]
    link_names: List[str]


class SignalingAgent:
    """Establishes and tears down service commitments over a network."""

    def __init__(self, network: Network, admission: AdmissionController):
        self.network = network
        self.admission = admission
        self.grants: Dict[str, FlowGrant] = {}
        # flow_id -> (edge port, installed filter callable, bucket filter)
        self._edge_filters: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def establish(self, flow: FlowSpec) -> FlowGrant:
        """Run admission along the path and install the commitment.

        Works over any routed graph: on merge topologies the same link
        appears in many flows' paths, and each request's admission check
        at that link sees the commitments (and measured load) the earlier
        flows left there.

        Raises:
            FlowEstablishmentError: if any link rejects — or if no route
                exists at all; nothing is installed in that case
                (all-or-nothing).
        """
        if flow.flow_id in self.grants:
            raise ValueError(f"flow {flow.flow_id} is already established")
        now = self.network.sim.now
        try:
            path = self.network.path(flow.source, flow.destination)
        except RoutingError as exc:
            raise FlowEstablishmentError(
                f"flow {flow.flow_id}: {exc}", []
            ) from None
        link_names = self.network.link_names_on_path(
            flow.source, flow.destination
        )
        if not link_names:
            raise FlowEstablishmentError(
                f"no inter-switch links between {flow.source} and "
                f"{flow.destination}",
                [],
            )
        if isinstance(flow.spec, GuaranteedServiceSpec):
            return self._establish_guaranteed(flow, path, link_names, now)
        if isinstance(flow.spec, PredictedServiceSpec):
            return self._establish_predicted(flow, path, link_names, now)
        # Datagram flows need no establishment; grant trivially.
        grant = FlowGrant(
            flow_id=flow.flow_id,
            service_class=ServiceClass.DATAGRAM,
            priority_class=None,
            advertised_bound_seconds=None,
            path=path,
            link_names=link_names,
        )
        self.grants[flow.flow_id] = grant
        return grant

    def _establish_guaranteed(
        self, flow: FlowSpec, path: List[str], link_names: List[str], now: float
    ) -> FlowGrant:
        spec = flow.spec
        assert isinstance(spec, GuaranteedServiceSpec)
        decisions = []
        for name in link_names:
            port = self.network.port_for_link(name)
            decision = self.admission.check_guaranteed(
                name, port, spec.clock_rate_bps, now
            )
            decisions.append(decision)
            if not decision.accepted:
                raise FlowEstablishmentError(
                    f"guaranteed flow {flow.flow_id} rejected at {name}: "
                    f"{decision.verdict.value} ({decision.detail})",
                    decisions,
                )
        # All links accepted: install the clock rate everywhere.
        for name in link_names:
            port = self.network.port_for_link(name)
            self._install_clock_rate(port, flow.flow_id, spec.clock_rate_bps)
            self.admission.record_guaranteed(name, flow.flow_id, spec.clock_rate_bps)
        grant = FlowGrant(
            flow_id=flow.flow_id,
            service_class=ServiceClass.GUARANTEED,
            priority_class=None,
            advertised_bound_seconds=None,
            path=path,
            link_names=link_names,
        )
        self.grants[flow.flow_id] = grant
        return grant

    @staticmethod
    def _install_clock_rate(port: OutputPort, flow_id: str, rate_bps: float) -> None:
        """Install a guaranteed clock rate through the explicit capability
        interface (:meth:`repro.sched.base.Scheduler.install_guaranteed`).

        Disciplines that reserve in other units (e.g. HRR slots/frame)
        refuse instead of silently reinterpreting bits/s, so the old
        ``register_flow`` duck-typing mixup cannot recur.
        """
        try:
            port.scheduler.install_guaranteed(flow_id, rate_bps)
        except GuaranteedServiceUnsupported as exc:
            raise FlowEstablishmentError(
                f"scheduler on {port.name} cannot host guaranteed flows: "
                f"{exc}",
                [],
            ) from exc

    def _establish_predicted(
        self, flow: FlowSpec, path: List[str], link_names: List[str], now: float
    ) -> FlowGrant:
        spec = flow.spec
        assert isinstance(spec, PredictedServiceSpec)
        per_switch_target = spec.target_delay_seconds / len(link_names)
        priority_class = self.admission.choose_class(per_switch_target)
        decisions: List[AdmissionDecision] = []
        if priority_class is None:
            raise FlowEstablishmentError(
                f"predicted flow {flow.flow_id}: target delay "
                f"{spec.target_delay_seconds}s over {len(link_names)} hops is "
                f"tighter than the tightest class bound — request guaranteed "
                f"service instead",
                decisions,
            )
        for name in link_names:
            port = self.network.port_for_link(name)
            decision = self.admission.check_predicted(
                name,
                port,
                priority_class,
                spec.token_rate_bps,
                spec.bucket_depth_bits,
                now,
            )
            decisions.append(decision)
            if not decision.accepted:
                raise FlowEstablishmentError(
                    f"predicted flow {flow.flow_id} rejected at {name}: "
                    f"{decision.verdict.value} ({decision.detail})",
                    decisions,
                )
        # Install the edge conformance check at the first switch only.
        edge_port = self.network.port_for_link(link_names[0])
        edge_filter = TokenBucketFilter(
            spec.token_rate_bps,
            spec.bucket_depth_bits,
            policy=NonconformingPolicy.DROP,
        )
        flow_id = flow.flow_id

        def conformance_check(packet: Packet, t: float) -> bool:
            if packet.flow_id != flow_id:
                return True
            return edge_filter.check(packet, t)

        edge_port.filters.append(conformance_check)
        self._edge_filters[flow.flow_id] = (edge_port, conformance_check, edge_filter)
        bound = sum(
            self.admission.config.class_bounds_seconds[priority_class]
            for __ in link_names
        )
        grant = FlowGrant(
            flow_id=flow.flow_id,
            service_class=ServiceClass.PREDICTED,
            priority_class=priority_class,
            advertised_bound_seconds=bound,
            path=path,
            link_names=link_names,
        )
        self.grants[flow.flow_id] = grant
        return grant

    # ------------------------------------------------------------------
    def teardown(self, flow_id: str) -> None:
        """Release a flow's commitments (guaranteed rates, reservations)."""
        grant = self.grants.pop(flow_id, None)
        if grant is None:
            raise KeyError(f"flow {flow_id} is not established")
        if grant.service_class is ServiceClass.GUARANTEED:
            for name in grant.link_names:
                port = self.network.port_for_link(name)
                remove = getattr(port.scheduler, "remove_guaranteed_flow", None)
                if remove is not None:
                    remove(flow_id)
                self.admission.release_guaranteed(name, flow_id)
        installed = self._edge_filters.pop(flow_id, None)
        if installed is not None:
            edge_port, conformance_check, __ = installed
            edge_port.filters.remove(conformance_check)

    def edge_filter_of(self, flow_id: str) -> Optional[TokenBucketFilter]:
        """The installed edge conformance filter (predicted flows)."""
        installed = self._edge_filters.get(flow_id)
        return installed[2] if installed is not None else None
