"""The client taxonomy (Section 2.3) and its mapping to service classes.

The paper characterizes network clients along two axes:

* **adaptive vs rigid** — does the receiver move its play-back point with
  measured delays, or park it at the a priori bound?
* **tolerant vs intolerant** — can the application ride out a brief
  service disruption (the family-reunion video call) or not (the remote
  surgeon)?

and argues two corners dominate: *intolerant-and-rigid* clients, which
need guaranteed service, and *tolerant-and-adaptive* clients, which are
served better and cheaper by predicted service.  The off-diagonal corners
are unstable: an intolerant adaptive client will be disrupted by its own
re-adaptation; a tolerant rigid client is "merely losing the chance to
improve its delay".

:func:`recommend_service` encodes that argument so applications (and
tests) can go from client properties to a service request, and
:func:`classify_client` inverts common application descriptions to the
axes for the examples.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.net.packet import ServiceClass


class Adaptivity(enum.Enum):
    ADAPTIVE = "adaptive"
    RIGID = "rigid"


class Tolerance(enum.Enum):
    TOLERANT = "tolerant"
    INTOLERANT = "intolerant"


@dataclasses.dataclass(frozen=True)
class Recommendation:
    """Service guidance for one client corner.

    Attributes:
        service_class: the commitment level to request.
        stable: False for the paper's off-diagonal corners — workable but
            leaving value on the table (see ``rationale``).
        rationale: the paper's one-line argument for this corner.
    """

    service_class: ServiceClass
    stable: bool
    rationale: str


_RECOMMENDATIONS = {
    (Adaptivity.RIGID, Tolerance.INTOLERANT): Recommendation(
        ServiceClass.GUARANTEED,
        stable=True,
        rationale=(
            "intolerant and rigid clients need absolute assurances about "
            "the service they receive"
        ),
    ),
    (Adaptivity.ADAPTIVE, Tolerance.TOLERANT): Recommendation(
        ServiceClass.PREDICTED,
        stable=True,
        rationale=(
            "adaptive clients gamble that the recent past predicts the "
            "near future; predicted service makes the same gamble at a "
            "lower price and a lower play-back point"
        ),
    ),
    (Adaptivity.ADAPTIVE, Tolerance.INTOLERANT): Recommendation(
        ServiceClass.GUARANTEED,
        stable=False,
        rationale=(
            "adaptation itself causes brief disruptions when conditions "
            "shift, which an intolerant client cannot accept — request "
            "guaranteed service and stop adapting"
        ),
    ),
    (Adaptivity.RIGID, Tolerance.TOLERANT): Recommendation(
        ServiceClass.PREDICTED,
        stable=False,
        rationale=(
            "a tolerant rigid client is merely losing the chance to "
            "improve its delay; predicted service still fits, but adding "
            "adaptivity would reclaim latency"
        ),
    ),
}


def recommend_service(
    adaptivity: Adaptivity, tolerance: Tolerance
) -> Recommendation:
    """The Section 2.3 mapping from client properties to a service class."""
    return _RECOMMENDATIONS[(adaptivity, tolerance)]


def classify_client(
    moves_playback_point: bool, survives_brief_disruption: bool
) -> tuple:
    """Convenience: behavioural yes/no questions to taxonomy axes."""
    adaptivity = (
        Adaptivity.ADAPTIVE if moves_playback_point else Adaptivity.RIGID
    )
    tolerance = (
        Tolerance.TOLERANT
        if survives_brief_disruption
        else Tolerance.INTOLERANT
    )
    return adaptivity, tolerance
