"""Experiment harness: one module per table/figure of the paper.

* :mod:`repro.experiments.table1` — Table 1 (WFQ vs FIFO, single link).
* :mod:`repro.experiments.table2` — Table 2 (WFQ/FIFO/FIFO+ vs path length).
* :mod:`repro.experiments.table3` — Table 3 (unified scheduler, mixed
  commitments, TCP datagram load, P-G bounds).
* :mod:`repro.experiments.topology` — Figure 1 (the network itself).
* :mod:`repro.experiments.dynamics` — the dynamic-environment validation
  of predicted service with adaptive clients (Sections 3/7).
* :mod:`repro.experiments.distributions` — the full delay CDFs behind
  Table 1's summary percentiles, plus tail-fairness (Section 5).
* :mod:`repro.experiments.parkinglot` — the parking-lot merge network
  (cross traffic at every hop), FIFO+'s multi-hop jitter story on a
  topology only the graph-form :class:`~repro.scenario.TopologySpec` can
  express.
* :mod:`repro.experiments.generated` — FIFO vs FIFO+ vs CSZ across a
  fleet of seeded random multi-bottleneck graphs
  (:mod:`repro.scenario.generators`), with the :mod:`repro.validate`
  invariant checks on for every run.

Each module exposes ``run(...) -> result`` with a ``render()`` string that
prints the same rows the paper reports, and the module is runnable via
``python -m repro.experiments <name>``.

Every experiment is founded on :mod:`repro.scenario`: its workload is one
declarative :class:`~repro.scenario.ScenarioSpec` (exposed as the module's
``scenario_spec(...)``), executed by :class:`~repro.scenario.ScenarioRunner`
with paired arrivals across disciplines; ``run()`` wraps the structured
:class:`~repro.scenario.ScenarioResult` in the historical result types.
"""

from repro.experiments import (
    common,
    distributions,
    dynamics,
    generated,
    parkinglot,
    table1,
    table2,
    table3,
    topology,
)

__all__ = [
    "common",
    "distributions",
    "dynamics",
    "generated",
    "parkinglot",
    "table1",
    "table2",
    "table3",
    "topology",
]
