"""CLI: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments fig1
    python -m repro.experiments table1 [--duration 600] [--seed 1]
    python -m repro.experiments table2 [--duration 600] [--seed 1]
    python -m repro.experiments table3 [--duration 600] [--seed 1]
    python -m repro.experiments dynamics [--duration 600] [--seed 1]
    python -m repro.experiments all [--duration 600] [--seed 1]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    common,
    distributions,
    dynamics,
    table1,
    table2,
    table3,
    topology,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figure of Clark/Shenker/Zhang "
        "SIGCOMM'92.",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig1", "table1", "table2", "table3", "dynamics",
            "distributions", "all",
        ],
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=common.PAPER_DURATION_SECONDS,
        help="simulated seconds (paper: 600)",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    todo = (
        ["fig1", "table1", "table2", "table3", "dynamics", "distributions"]
        if args.experiment == "all"
        else [args.experiment]
    )
    for name in todo:
        started = time.monotonic()
        if name == "fig1":
            print(topology.run().render())
        elif name == "table1":
            print(table1.run(duration=args.duration, seed=args.seed).render())
        elif name == "table2":
            print(table2.run(duration=args.duration, seed=args.seed).render())
        elif name == "table3":
            print(table3.run(duration=args.duration, seed=args.seed).render())
        elif name == "distributions":
            print(
                distributions.run(
                    duration=args.duration, seed=args.seed
                ).render()
            )
        elif name == "dynamics":
            print(
                dynamics.run(
                    phase_seconds=args.duration / 3.0, seed=args.seed
                ).render()
            )
        print(f"[{name} regenerated in {time.monotonic() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
