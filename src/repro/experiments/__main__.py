"""CLI: regenerate any table/figure of the paper, or run any scenario.

Usage::

    python -m repro.experiments fig1
    python -m repro.experiments table1 [--duration 600] [--seed 1]
    python -m repro.experiments table2 [--duration 600] [--seed 1]
    python -m repro.experiments table3 [--duration 600] [--seed 1]
    python -m repro.experiments dynamics [--duration 600] [--seed 1]
    python -m repro.experiments parkinglot [--duration 600] [--seed 1]
    python -m repro.experiments failover [--duration 600] [--seed 1]
    python -m repro.experiments scale [--duration 60] [--seed 1]
    python -m repro.experiments all [--duration 600] [--seed 1]

    python -m repro.experiments --spec scenario.json     # serialized spec
    python -m repro.experiments --spec parking_lot       # registered name
    python -m repro.experiments --list-scenarios

    # sweep a registered scenario: 8 seeds x 2 durations on 4 workers
    python -m repro.experiments --spec table1 \\
        --sweep-seeds 1..8 --sweep-over duration=20,40 --workers 4

    # generated scenarios: seeded random topologies with invariants on
    python -m repro.experiments --spec gen:random-graph --gen-seed 7
    python -m repro.experiments generated --gen-seeds 1..3 --duration 20
    python -m repro.experiments --spec table1 --validate   # opt any spec in

    # engine seam: run any spec on the flow-level fluid model
    python -m repro.experiments --spec gen:fat-tree --engine fluid
    python -m repro.experiments --spec parking_lot --engine fluid

    # the failover flagship's fabric-scale leg on the fluid engine
    python -m repro.experiments failover --engine fluid

``--spec`` runs one declarative :class:`~repro.scenario.ScenarioSpec`
loaded from a JSON file (``ScenarioSpec.to_dict`` payload) or built from
the scenario registry, and prints a generic per-flow / per-link report.
``--workers N`` fans the per-discipline simulations of an experiment out
over N processes; ``--json PATH`` writes the structured
``ScenarioResult.to_dict()`` payloads alongside the rendered tables.

``--sweep-seeds`` / ``--sweep-over`` / ``--budget-seconds`` turn a
``--spec`` run into a sweep executed by the
:class:`~repro.scenario.SweepExecutor`: seeds are a comma list or an
inclusive ``lo..hi`` range, each (repeatable) ``--sweep-over`` flag is
``field=v1,v2,...`` and the fields cross-multiply, and the optional
budget bounds every run's wall clock.  Progress streams one line per
finished run; ``--json`` then writes the full ``SweepOutcome`` payload
(statuses included).

``gen:`` scenario names (``gen:random-graph``, ``gen:scale-free``,
``gen:wan-path``, ``gen:access-core``, ``gen:wan-guaranteed``,
``gen:outage``) resolve
through :mod:`repro.scenario.generators`: ``--gen-seed`` selects the
sampled topology/population, and the generated spec runs with the
:mod:`repro.validate` invariant checks on.  ``--validate`` opts *any*
``--spec`` run into the same checks; ``generated`` runs the
random-graph flagship across ``--gen-seeds`` topologies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import (
    common,
    distributions,
    dynamics,
    failover,
    generated,
    parkinglot,
    scale,
    table1,
    table2,
    table3,
    topology,
)
from repro.scenario import ScenarioRunner, ScenarioSpec, registry

EXPERIMENTS = (
    "fig1",
    "table1",
    "table2",
    "table3",
    "dynamics",
    "distributions",
    "parkinglot",
    "generated",
    "failover",
    "scale",
)


def _parse_sweep_seeds(text: str) -> list:
    """``"1,2,5"`` or an inclusive ``"1..8"`` range."""
    text = text.strip()
    if ".." in text:
        lo, hi = text.split("..", 1)
        lo, hi = int(lo), int(hi)
        if hi < lo:
            raise ValueError(f"empty seed range {text!r}")
        return list(range(lo, hi + 1))
    return [int(part) for part in text.split(",") if part.strip()]


def _parse_sweep_over(entries: list) -> list:
    """Repeated ``field=v1,v2,...`` flags -> cross-product override dicts.

    Values are parsed as JSON scalars where possible (numbers, booleans,
    null) and fall back to plain strings.
    """
    import itertools

    fields = []
    for entry in entries:
        if "=" not in entry:
            raise ValueError(
                f"--sweep-over expects field=v1,v2,... (got {entry!r})"
            )
        field, values_text = entry.split("=", 1)
        values = []
        for part in values_text.split(","):
            part = part.strip()
            if not part:
                continue  # "field=" or a trailing comma
            try:
                values.append(json.loads(part))
            except json.JSONDecodeError:
                values.append(part)
        if not values:
            raise ValueError(f"--sweep-over {field.strip()}= names no values")
        fields.append((field.strip(), values))
    return [
        dict(zip((name for name, _ in fields), combo))
        for combo in itertools.product(*(values for _, values in fields))
    ]


def _parse_sweep_plan(spec: ScenarioSpec, args) -> tuple:
    """Resolve the --sweep-* flags into (over, seeds, total runs).

    Expands eagerly so malformed seeds/overrides fail before simulating.
    """
    from repro.scenario.sweep import expand

    seeds = _parse_sweep_seeds(args.sweep_seeds) if args.sweep_seeds else None
    over = _parse_sweep_over(args.sweep_over) if args.sweep_over else None
    return over, seeds, len(expand(spec, over=over, seeds=seeds))


def _run_sweep_cli(spec: ScenarioSpec, sweep_plan: tuple, args) -> tuple:
    """Execute the parsed sweep plan over one spec.

    Returns ``(payload, invariants_ok)``: the ``SweepOutcome`` payload
    plus whether every completed validated run's invariants held (always
    True for unvalidated specs).
    """
    from repro.scenario import SweepExecutor

    over, seeds, total = sweep_plan
    finished = [0]

    def progress(run) -> None:
        finished[0] += 1
        print(
            f"  [{finished[0]}/{total}] seed={run.spec.seed} "
            f"duration={run.spec.duration:g}s {run.status} "
            f"({run.wall_seconds:.2f}s wall)"
        )

    started = time.monotonic()
    with SweepExecutor(
        workers=args.workers, budget_seconds=args.budget_seconds
    ) as executor:
        outcome = executor.run_sweep(
            spec, over=over, seeds=seeds, on_result=progress
        )
    counts = outcome.counts
    print(
        f"[swept {spec.name}: {counts['completed']} completed, "
        f"{counts['budget_expired']} budget-expired, "
        f"{counts['stopped']} stopped in {time.monotonic() - started:.1f}s]"
    )
    invariants_ok = all(
        run.invariants is None or run.invariants_clean
        for result in outcome.results
        for run in result.runs
    )
    return outcome.to_dict(), invariants_ok


def _load_spec(
    name_or_path: str, duration, seed, gen_seed=None, validate=False,
    engine=None,
) -> ScenarioSpec:
    """Resolve ``--spec``: a registered scenario name or a JSON file."""
    if os.path.isfile(name_or_path):
        with open(name_or_path) as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
        overrides = {}
        if duration is not None:
            overrides["duration"] = duration
        if seed is not None:
            overrides["seed"] = seed
        if validate:
            overrides["validate"] = True
    else:
        kwargs = {}
        if duration is not None:
            kwargs["duration"] = duration
        if seed is not None:
            kwargs["seed"] = seed
        if gen_seed is not None:
            kwargs["gen_seed"] = gen_seed
        spec = registry.build(name_or_path, **kwargs)
        overrides = {"validate": True} if validate else {}
    # --engine is a plain spec-field override, applied after building so
    # it works identically for JSON files and registered names (most
    # builders don't take an engine kwarg).
    if engine is not None:
        overrides["engine"] = engine
    return spec.replace(**overrides) if overrides else spec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figure of Clark/Shenker/Zhang "
        "SIGCOMM'92, or run any declarative scenario.",
    )
    parser.add_argument(
        "experiment", nargs="?", choices=EXPERIMENTS + ("all",)
    )
    parser.add_argument(
        "--spec",
        metavar="NAME_OR_PATH",
        default=None,
        help="run one scenario: a registered name or a ScenarioSpec JSON file",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenario names and exit",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds (paper: 600)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--gen-seed",
        type=int,
        default=None,
        help="with --spec gen:*: the seed the topology/population is "
        "sampled from (distinct from --seed, the traffic seed)",
    )
    parser.add_argument(
        "--gen-seeds",
        metavar="SEEDS",
        default=None,
        help="with the 'generated' experiment: generator seeds to sweep "
        "('1,2,5' or inclusive '1..20'; default 1..20)",
    )
    parser.add_argument(
        "--engine",
        choices=("packet", "fluid"),
        default=None,
        help="with --spec: override the simulation engine (the "
        "packet-level simulator or the flow-level fluid model); "
        "defaults to the spec's own engine field",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="with --spec: run the repro.validate invariant checks on "
        "every simulation (gen: scenarios enable this by themselves)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for per-discipline fan-out (default: serial)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="write structured ScenarioResult payloads to this file",
    )
    parser.add_argument(
        "--sweep-seeds",
        metavar="SEEDS",
        default=None,
        help="with --spec: sweep these seeds ('1,2,5' or inclusive '1..8')",
    )
    parser.add_argument(
        "--sweep-over",
        metavar="FIELD=V1,V2,...",
        action="append",
        default=None,
        help="with --spec: sweep a spec field over values (repeatable; "
        "fields cross-multiply)",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="with --spec sweeps: wall-clock budget per discipline "
        "simulation; runs with an over-budget simulation are reported "
        "budget_expired",
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in registry.names():
            print(name)
        return 0
    if args.spec is not None and args.experiment is not None:
        parser.error("give either an experiment name or --spec, not both")
    if args.spec is None and args.experiment is None:
        parser.error("an experiment name or --spec is required")
    sweep_mode = (
        args.sweep_seeds is not None
        or args.sweep_over is not None
        or args.budget_seconds is not None
    )
    if sweep_mode and args.spec is None:
        parser.error("--sweep-seeds/--sweep-over/--budget-seconds need --spec")

    if args.gen_seeds is not None and args.experiment not in ("generated", "all"):
        parser.error("--gen-seeds applies to the 'generated' experiment")
    if args.gen_seed is not None and args.spec is None:
        parser.error(
            "--gen-seed applies to --spec gen:* scenarios (use --gen-seeds "
            "with the 'generated' experiment)"
        )
    if (
        args.engine is not None
        and args.spec is None
        and args.experiment not in ("failover", "all")
    ):
        parser.error(
            "--engine applies to --spec runs and the 'failover' experiment "
            "(other experiments pick their own engine; 'scale' is fluid by "
            "construction)"
        )
    if args.validate and args.spec is None:
        parser.error(
            "--validate applies to --spec runs (the 'generated' experiment "
            "and gen: scenarios validate by themselves)"
        )
    if args.gen_seeds is not None:
        try:
            gen_seed_list = _parse_sweep_seeds(args.gen_seeds)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        gen_seed_list = None

    # Invariant violations flip the exit code but must not suppress the
    # --json payload: the per-check records are the debugging artifact.
    exit_code = 0
    payloads: dict = {}
    if args.spec is not None:
        try:
            spec = _load_spec(
                args.spec,
                args.duration,
                args.seed,
                gen_seed=args.gen_seed,
                validate=args.validate,
                engine=args.engine,
            )
            if sweep_mode:
                # Parse and expand up front so flag mistakes surface as
                # CLI errors before any simulation starts.
                sweep_plan = _parse_sweep_plan(spec, args)
        except (
            KeyError, ValueError, TypeError, OSError, json.JSONDecodeError
        ) as exc:
            # KeyError stringifies as the repr of its argument; unwrap it.
            message = (
                exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            )
            print(f"error: {message}", file=sys.stderr)
            return 2
        if sweep_mode:
            payloads[spec.name], invariants_ok = _run_sweep_cli(
                spec, sweep_plan, args
            )
            if not invariants_ok:
                print("error: invariant violations detected", file=sys.stderr)
                exit_code = 1
        else:
            started = time.monotonic()
            result = ScenarioRunner(spec).run(workers=args.workers)
            print(common.render_scenario_result(result))
            print(f"[{spec.name} ran in {time.monotonic() - started:.1f}s]")
            payloads[spec.name] = result.to_dict()
            if spec.validate and not all(
                run.invariants_clean for run in result.runs
            ):
                print("error: invariant violations detected", file=sys.stderr)
                exit_code = 1
    else:
        duration = (
            args.duration
            if args.duration is not None
            else common.PAPER_DURATION_SECONDS
        )
        seed = args.seed if args.seed is not None else 1
        todo = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in todo:
            started = time.monotonic()
            if name == "fig1":
                result = topology.run()
                print(result.render())
                payloads[name] = result.to_dict()
            elif name == "table1":
                result = table1.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "table2":
                result = table2.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "table3":
                result = table3.run(duration=duration, seed=seed)
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "distributions":
                result = distributions.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "parkinglot":
                result = parkinglot.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "generated":
                result = generated.run(
                    duration=duration,
                    seed=seed,
                    gen_seeds=gen_seed_list or generated.DEFAULT_GEN_SEEDS,
                    workers=args.workers,
                )
                print(result.render())
                payloads[name] = result.to_dict()
                if not result.all_invariants_clean:
                    print("error: invariant violations detected", file=sys.stderr)
                    exit_code = 1
            elif name == "dynamics":
                result = dynamics.run(phase_seconds=duration / 3.0, seed=seed)
                print(result.render())
                payloads[name] = result.to_dict()
            elif name == "failover":
                result = failover.run(
                    duration=duration, seed=seed,
                    engine=args.engine or "packet",
                )
                print(result.render())
                payloads[name] = result.to_dict()
                if not all(row.invariants_clean for row in result.rows):
                    print("error: invariant violations detected", file=sys.stderr)
                    exit_code = 1
            elif name == "scale":
                # The fluid flagship sizes its own duration (60s); the
                # 600s paper default is a packet-experiment convention.
                result = scale.run(duration=args.duration, seed=seed)
                print(result.render())
                payloads[name] = result.to_dict()
                if not result.all_invariants_clean:
                    print("error: invariant violations detected", file=sys.stderr)
                    exit_code = 1
            print(f"[{name} regenerated in {time.monotonic() - started:.1f}s]\n")

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump({"experiments": payloads}, handle, indent=1)
        print(f"[structured results written to {args.json_path}]")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
