"""CLI: regenerate any table/figure of the paper, or run any scenario.

Usage::

    python -m repro.experiments fig1
    python -m repro.experiments table1 [--duration 600] [--seed 1]
    python -m repro.experiments table2 [--duration 600] [--seed 1]
    python -m repro.experiments table3 [--duration 600] [--seed 1]
    python -m repro.experiments dynamics [--duration 600] [--seed 1]
    python -m repro.experiments parkinglot [--duration 600] [--seed 1]
    python -m repro.experiments all [--duration 600] [--seed 1]

    python -m repro.experiments --spec scenario.json     # serialized spec
    python -m repro.experiments --spec parking_lot       # registered name
    python -m repro.experiments --list-scenarios

``--spec`` runs one declarative :class:`~repro.scenario.ScenarioSpec`
loaded from a JSON file (``ScenarioSpec.to_dict`` payload) or built from
the scenario registry, and prints a generic per-flow / per-link report.
``--workers N`` fans the per-discipline simulations of an experiment out
over N processes; ``--json PATH`` writes the structured
``ScenarioResult.to_dict()`` payloads alongside the rendered tables.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import (
    common,
    distributions,
    dynamics,
    parkinglot,
    table1,
    table2,
    table3,
    topology,
)
from repro.scenario import ScenarioRunner, ScenarioSpec, registry

EXPERIMENTS = (
    "fig1",
    "table1",
    "table2",
    "table3",
    "dynamics",
    "distributions",
    "parkinglot",
)


def _load_spec(name_or_path: str, duration, seed) -> ScenarioSpec:
    """Resolve ``--spec``: a registered scenario name or a JSON file."""
    if os.path.isfile(name_or_path):
        with open(name_or_path) as handle:
            spec = ScenarioSpec.from_dict(json.load(handle))
        overrides = {}
        if duration is not None:
            overrides["duration"] = duration
        if seed is not None:
            overrides["seed"] = seed
        return spec.replace(**overrides) if overrides else spec
    kwargs = {}
    if duration is not None:
        kwargs["duration"] = duration
    if seed is not None:
        kwargs["seed"] = seed
    return registry.build(name_or_path, **kwargs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figure of Clark/Shenker/Zhang "
        "SIGCOMM'92, or run any declarative scenario.",
    )
    parser.add_argument(
        "experiment", nargs="?", choices=EXPERIMENTS + ("all",)
    )
    parser.add_argument(
        "--spec",
        metavar="NAME_OR_PATH",
        default=None,
        help="run one scenario: a registered name or a ScenarioSpec JSON file",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the registered scenario names and exit",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds (paper: 600)",
    )
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for per-discipline fan-out (default: serial)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="write structured ScenarioResult payloads to this file",
    )
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for name in registry.names():
            print(name)
        return 0
    if args.spec is not None and args.experiment is not None:
        parser.error("give either an experiment name or --spec, not both")
    if args.spec is None and args.experiment is None:
        parser.error("an experiment name or --spec is required")

    payloads: dict = {}
    if args.spec is not None:
        try:
            spec = _load_spec(args.spec, args.duration, args.seed)
        except (KeyError, ValueError, OSError, json.JSONDecodeError) as exc:
            # KeyError stringifies as the repr of its argument; unwrap it.
            message = (
                exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
            )
            print(f"error: {message}", file=sys.stderr)
            return 2
        started = time.monotonic()
        result = ScenarioRunner(spec).run(workers=args.workers)
        print(common.render_scenario_result(result))
        print(f"[{spec.name} ran in {time.monotonic() - started:.1f}s]")
        payloads[spec.name] = result.to_dict()
    else:
        duration = (
            args.duration
            if args.duration is not None
            else common.PAPER_DURATION_SECONDS
        )
        seed = args.seed if args.seed is not None else 1
        todo = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in todo:
            started = time.monotonic()
            if name == "fig1":
                result = topology.run()
                print(result.render())
                payloads[name] = result.to_dict()
            elif name == "table1":
                result = table1.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "table2":
                result = table2.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "table3":
                result = table3.run(duration=duration, seed=seed)
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "distributions":
                result = distributions.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "parkinglot":
                result = parkinglot.run(
                    duration=duration, seed=seed, workers=args.workers
                )
                print(result.render())
                payloads[name] = result.scenario.to_dict()
            elif name == "dynamics":
                result = dynamics.run(phase_seconds=duration / 3.0, seed=seed)
                print(result.render())
                payloads[name] = result.to_dict()
            print(f"[{name} regenerated in {time.monotonic() - started:.1f}s]\n")

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump({"experiments": payloads}, handle, indent=1)
        print(f"[structured results written to {args.json_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
