"""CLI: regenerate any table/figure of the paper.

Usage::

    python -m repro.experiments fig1
    python -m repro.experiments table1 [--duration 600] [--seed 1]
    python -m repro.experiments table2 [--duration 600] [--seed 1]
    python -m repro.experiments table3 [--duration 600] [--seed 1]
    python -m repro.experiments dynamics [--duration 600] [--seed 1]
    python -m repro.experiments all [--duration 600] [--seed 1]

``--workers N`` fans the per-discipline simulations of an experiment out
over N processes; ``--json PATH`` writes the structured
``ScenarioResult.to_dict()`` payloads alongside the rendered tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments import (
    common,
    distributions,
    dynamics,
    table1,
    table2,
    table3,
    topology,
)

EXPERIMENTS = ("fig1", "table1", "table2", "table3", "dynamics", "distributions")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figure of Clark/Shenker/Zhang "
        "SIGCOMM'92.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument(
        "--duration",
        type=float,
        default=common.PAPER_DURATION_SECONDS,
        help="simulated seconds (paper: 600)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for per-discipline fan-out (default: serial)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="write structured ScenarioResult payloads to this file",
    )
    args = parser.parse_args(argv)

    todo = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    payloads: dict = {}
    for name in todo:
        started = time.monotonic()
        if name == "fig1":
            result = topology.run()
            print(result.render())
            payloads[name] = result.to_dict()
        elif name == "table1":
            result = table1.run(
                duration=args.duration, seed=args.seed, workers=args.workers
            )
            print(result.render())
            payloads[name] = result.scenario.to_dict()
        elif name == "table2":
            result = table2.run(
                duration=args.duration, seed=args.seed, workers=args.workers
            )
            print(result.render())
            payloads[name] = result.scenario.to_dict()
        elif name == "table3":
            result = table3.run(duration=args.duration, seed=args.seed)
            print(result.render())
            payloads[name] = result.scenario.to_dict()
        elif name == "distributions":
            result = distributions.run(
                duration=args.duration, seed=args.seed, workers=args.workers
            )
            print(result.render())
            payloads[name] = result.scenario.to_dict()
        elif name == "dynamics":
            result = dynamics.run(
                phase_seconds=args.duration / 3.0, seed=args.seed
            )
            print(result.render())
            payloads[name] = result.to_dict()
        print(f"[{name} regenerated in {time.monotonic() - started:.1f}s]\n")

    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump({"experiments": payloads}, handle, indent=1)
        print(f"[structured results written to {args.json_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
