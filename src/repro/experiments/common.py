"""Shared workload recipes and reporting helpers (the paper's Appendix).

The constants live in :mod:`repro.scenario.paper` (the scenario subsystem
is the single source of truth); this module re-exports them under their
historical names and keeps the placement/reporting helpers the experiment
and benchmark layers use.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.net.network import Network
from repro.net.packet import ServiceClass
from repro.scenario import paper
from repro.scenario.paper import (  # noqa: F401  (re-exported Appendix constants)
    AVERAGE_RATE_PPS,
    BUCKET_PACKETS,
    BUFFER_PACKETS,
    DEFAULT_WARMUP_SECONDS,
    GUARANTEED_AVERAGE_FLOWS,
    GUARANTEED_PEAK_FLOWS,
    LINK_RATE_BPS,
    PACKET_BITS,
    PAPER_DURATION_SECONDS,
    PREDICTED_HIGH_FLOWS,
    PREDICTED_LOW_FLOWS,
    TABLE3_SAMPLES,
    TX_TIME_SECONDS,
    in_tx_units,
)
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink


@dataclasses.dataclass(frozen=True)
class FlowPlacement:
    """One real-time flow of the Figure-1 workload."""

    name: str
    source_host: str
    dest_host: str
    hops: int  # inter-switch links traversed


def figure1_flow_placements() -> List[FlowPlacement]:
    """The 22-flow layout: each inter-switch link is shared by 10 flows."""
    return [
        FlowPlacement(name=name, source_host=src, dest_host=dst, hops=hops)
        for name, src, dst, hops in paper.FIGURE1_PLACEMENTS
    ]


def attach_paper_flows(
    sim: Simulator,
    net: Network,
    streams: RandomStreams,
    placements: Sequence[FlowPlacement],
    warmup: float,
    service_class: ServiceClass = ServiceClass.DATAGRAM,
    priority_of: Optional[Dict[str, int]] = None,
    class_of: Optional[Dict[str, ServiceClass]] = None,
) -> Dict[str, DelayRecordingSink]:
    """Create the paper's on/off source + recording sink for each placement.

    Kept for benchmarks that wire networks by hand; spec-driven code uses
    :class:`repro.scenario.ScenarioRunner` instead.

    Args:
        priority_of: optional per-flow predicted priority class.
        class_of: optional per-flow service class override (Table 3 mixes
            guaranteed / predicted flows in one placement list).

    Returns:
        flow name -> sink.
    """
    sinks: Dict[str, DelayRecordingSink] = {}
    for placement in placements:
        flow_class = (class_of or {}).get(placement.name, service_class)
        priority = (priority_of or {}).get(placement.name, 0)
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts[placement.source_host],
            placement.name,
            placement.dest_host,
            streams.stream(f"source:{placement.name}"),
            average_rate_pps=AVERAGE_RATE_PPS,
            bucket_packets=BUCKET_PACKETS,
            packet_size_bits=PACKET_BITS,
            service_class=flow_class,
            priority_class=priority,
        )
        sinks[placement.name] = DelayRecordingSink(
            sim, net.hosts[placement.dest_host], placement.name, warmup=warmup
        )
    return sinks


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table renderer for experiment output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    rule = "  ".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_scenario_result(result) -> str:
    """Generic report for any :class:`~repro.scenario.ScenarioResult`.

    The ``--spec`` CLI path runs arbitrary serialized scenarios, so this
    renderer assumes nothing about the workload: per discipline it tables
    every recorded flow (delays in ms) and the per-link utilization /
    mean-wait / drop profile.
    """
    lines = [f"scenario: {result.scenario}   seed: {result.seed}   "
             f"duration: {result.duration:.0f}s"]
    for run in result.runs:
        lines.append("")
        lines.append(f"[{run.discipline}]")
        if run.flows:
            def p999_cell(stats) -> str:
                try:
                    return f"{stats.percentile_in(99.9) * 1e3:.2f}"
                except KeyError:  # spec collected different points
                    return "-"

            lines.append(format_table(
                ["flow", "recorded", "mean ms", "p99.9 ms", "jitter ms"],
                [
                    [
                        stats.name,
                        str(stats.recorded),
                        f"{stats.mean_seconds * 1e3:.2f}",
                        p999_cell(stats),
                        f"{stats.jitter_seconds * 1e3:.2f}",
                    ]
                    for stats in run.flows
                ],
            ))
        link_rows = []
        drops = dict(run.link_drops)
        disciplines = dict(run.port_disciplines)
        for name, utilization in run.link_utilizations:
            link_rows.append([
                name,
                disciplines.get(name, run.discipline),
                f"{utilization:.1%}",
                f"{run.queueing(name) * 1e3:.2f}",
                str(drops.get(name, 0)),
            ])
        lines.append("")
        lines.append(format_table(
            ["link", "discipline", "utilization", "mean wait ms", "drops"],
            link_rows,
        ))
        if run.tcp_stats:
            lines.append("")
            lines.append(format_table(
                ["tcp", "segments", "acks", "goodput kbit/s"],
                [
                    [t.name, str(t.segments_sent), str(t.acks_sent),
                     f"{t.goodput_bps / 1e3:.1f}"]
                    for t in run.tcp_stats
                ],
            ))
        if run.invariants is not None:
            lines.append("")
            lines.append(format_table(
                ["invariant", "status", "checked", "violations"],
                [
                    [
                        check.name,
                        "ok" if check.ok else "FAIL",
                        str(check.checked),
                        str(check.violations),
                    ]
                    for check in run.invariants
                ],
            ))
            for check in run.invariants:
                if not check.ok and check.detail:
                    lines.append(f"  {check.name}: {check.detail}")
    return "\n".join(lines)
