"""Shared workload recipes and reporting helpers (the paper's Appendix).

Constants here are the Appendix's exactly: 1000-bit packets, 1 Mbit/s
inter-switch links (so the delay unit — one packet transmission time — is
1 ms), 200-packet switch buffers, on/off sources with A = 85 packets/s,
B = 5, P = 2A, an (A, 50) token bucket at each source, and 10-minute runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.network import Network
from repro.net.packet import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink

PACKET_BITS = 1000
LINK_RATE_BPS = 1_000_000
TX_TIME_SECONDS = PACKET_BITS / LINK_RATE_BPS  # 1 ms, the paper's delay unit
BUFFER_PACKETS = 200
AVERAGE_RATE_PPS = 85.0
BUCKET_PACKETS = 50.0
PAPER_DURATION_SECONDS = 600.0  # "10 minutes of simulated time"
DEFAULT_WARMUP_SECONDS = 5.0

# ----------------------------------------------------------------------
# The Table 2 / Table 3 flow layout on the Figure 1 chain.
#
# 22 flows chosen so each of the four inter-switch links carries exactly
# 10: 12 one-hop, 4 two-hop, 4 three-hop, 2 four-hop (Appendix).  "Hops"
# counts inter-switch links, the paper's path length.
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FlowPlacement:
    """One real-time flow of the Figure-1 workload."""

    name: str
    source_host: str
    dest_host: str
    hops: int  # inter-switch links traversed


def figure1_flow_placements() -> List[FlowPlacement]:
    """The 22-flow layout: each inter-switch link is shared by 10 flows."""
    placements = []

    def add(count: int, prefix: str, src: int, dst: int) -> None:
        hops = dst - src
        for k in range(count):
            placements.append(
                FlowPlacement(
                    name=f"{prefix}{k + 1}",
                    source_host=f"Host-{src}",
                    dest_host=f"Host-{dst}",
                    hops=hops,
                )
            )

    add(4, "a", 1, 2)  # one-hop on link 1
    add(2, "b", 2, 3)  # one-hop on link 2
    add(2, "c", 3, 4)  # one-hop on link 3
    add(4, "d", 4, 5)  # one-hop on link 4
    add(2, "e", 1, 3)  # two-hop (links 1-2)
    add(2, "f", 3, 5)  # two-hop (links 3-4)
    add(2, "g", 1, 4)  # three-hop (links 1-3)
    add(2, "h", 2, 5)  # three-hop (links 2-4)
    add(2, "i", 1, 5)  # four-hop (links 1-4)
    assert len(placements) == 22
    return placements


# Table 3's commitment assignment.  Chosen so that every link carries
# exactly 2 Guaranteed-Peak, 1 Guaranteed-Average, 3 Predicted-High, and
# 4 Predicted-Low flows — the per-link census the paper states — and so
# that the sampled (type, path length) combinations of Table 3 all exist:
# Peak/4, Peak/2, Avg/3, Avg/1, High/4, High/2, Low/3, Low/1.
GUARANTEED_PEAK_FLOWS = ("e1", "f1", "i1")
GUARANTEED_AVERAGE_FLOWS = ("g1", "d1")
PREDICTED_HIGH_FLOWS = ("i2", "e2", "f2", "a1", "b1", "c1", "d2")
PREDICTED_LOW_FLOWS = ("a2", "a3", "a4", "b2", "c2", "d3", "d4", "g2", "h1", "h2")

# The Table 3 sample rows, exactly as the paper lists them.
TABLE3_SAMPLES: Tuple[Tuple[str, str, int], ...] = (
    ("Peak", "i1", 4),
    ("Peak", "e1", 2),
    ("Average", "g1", 3),
    ("Average", "d1", 1),
    ("High", "i2", 4),
    ("High", "e2", 2),
    ("Low", "h1", 3),
    ("Low", "a2", 1),
)


def attach_paper_flows(
    sim: Simulator,
    net: Network,
    streams: RandomStreams,
    placements: Sequence[FlowPlacement],
    warmup: float,
    service_class: ServiceClass = ServiceClass.DATAGRAM,
    priority_of: Optional[Dict[str, int]] = None,
    class_of: Optional[Dict[str, ServiceClass]] = None,
) -> Dict[str, DelayRecordingSink]:
    """Create the paper's on/off source + recording sink for each placement.

    Args:
        priority_of: optional per-flow predicted priority class.
        class_of: optional per-flow service class override (Table 3 mixes
            guaranteed / predicted flows in one placement list).

    Returns:
        flow name -> sink.
    """
    sinks: Dict[str, DelayRecordingSink] = {}
    for placement in placements:
        flow_class = (class_of or {}).get(placement.name, service_class)
        priority = (priority_of or {}).get(placement.name, 0)
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts[placement.source_host],
            placement.name,
            placement.dest_host,
            streams.stream(f"source:{placement.name}"),
            average_rate_pps=AVERAGE_RATE_PPS,
            bucket_packets=BUCKET_PACKETS,
            packet_size_bits=PACKET_BITS,
            service_class=flow_class,
            priority_class=priority,
        )
        sinks[placement.name] = DelayRecordingSink(
            sim, net.hosts[placement.dest_host], placement.name, warmup=warmup
        )
    return sinks


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def in_tx_units(seconds: float) -> float:
    """Convert seconds to the paper's unit (packet transmission times)."""
    return seconds / TX_TIME_SECONDS


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table renderer for experiment output."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    rule = "  ".join("-" * w for w in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
