"""Delay-distribution views of the Table 1 comparison.

The paper summarizes each discipline with two numbers (mean, 99.9 %ile);
this module exposes the whole curve behind them: the per-flow queueing
delay CDF under each scheduler on the Table-1 workload, rendered as an
ASCII plot, plus Jain's fairness index over the per-flow 99.9th
percentiles — a compact statement of §5's isolation/sharing contrast
(FIFO: jitter shared evenly, high fairness; WFQ: jitter pinned on the
flows that caused it).

Runs the same :class:`~repro.scenario.ScenarioSpec` as Table 1 — only the
collected percentile points differ.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments import common, table1
from repro.scenario import ScenarioResult, ScenarioRunner
from repro.stats.fairness import jain_index

CDF_POINTS = (50.0, 90.0, 99.0, 99.9, 99.99)


@dataclasses.dataclass
class DistributionRow:
    scheduling: str
    percentiles: Dict[float, float]  # pct -> delay (tx units), sample flow
    flow_p999s: List[float]

    @property
    def tail_fairness(self) -> float:
        """Jain's index over per-flow 99.9 %ile delays."""
        return jain_index(self.flow_p999s)


@dataclasses.dataclass
class DistributionsResult:
    rows: List[DistributionRow]
    duration: float
    seed: int
    scenario: Optional[ScenarioResult] = None

    def row(self, scheduling: str) -> DistributionRow:
        for row in self.rows:
            if row.scheduling == scheduling:
                return row
        raise KeyError(scheduling)

    def render(self) -> str:
        headers = ["scheduling"] + [f"p{pct:g}" for pct in CDF_POINTS] + [
            "tail fairness"
        ]
        body = []
        for row in self.rows:
            cells = [row.scheduling]
            cells += [f"{row.percentiles[pct]:.2f}" for pct in CDF_POINTS]
            cells.append(f"{row.tail_fairness:.3f}")
            body.append(cells)
        table = common.format_table(headers, body)
        return (
            "Queueing-delay distribution, Table-1 workload "
            "(tx times; sample flow)\n"
            f"{table}\n"
            f"{self._ascii_cdf()}\n"
            f"duration: {self.duration:.0f}s  seed: {self.seed}"
        )

    def _ascii_cdf(self, width: int = 52) -> str:
        """A log-ish tail plot: one bar per (discipline, percentile)."""
        peak = max(
            value for row in self.rows for value in row.percentiles.values()
        )
        if peak <= 0:
            return ""
        lines = ["tail profile (each bar spans 0..max):"]
        for row in self.rows:
            for pct in CDF_POINTS:
                value = row.percentiles[pct]
                bar = "#" * max(1, round(width * value / peak))
                lines.append(
                    f"  {row.scheduling:>5} p{pct:<5g} |{bar:<{width}}| "
                    f"{value:.2f}"
                )
        return "\n".join(lines)


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    disciplines: Sequence[str] = ("WFQ", "FIFO"),
    workers: Optional[int] = None,
    sample_flow: int = 0,
) -> DistributionsResult:
    """Run the Table-1 workload once per discipline and expose the full
    delay distributions (paired arrivals across disciplines, same seed)."""
    spec = table1.scenario_spec(
        duration, seed, disciplines=tuple(disciplines)
    ).replace(percentile_points=CDF_POINTS)
    result = ScenarioRunner(spec).run(workers=workers)
    unit = common.TX_TIME_SECONDS
    rows = []
    for name in disciplines:
        run_result = result.run(name)
        sample = run_result.flow(f"flow-{sample_flow}")
        rows.append(
            DistributionRow(
                scheduling=name,
                percentiles={
                    pct: sample.percentile_in(pct, unit) for pct in CDF_POINTS
                },
                flow_p999s=[
                    run_result.flow(f"flow-{i}").percentile_in(99.9, unit)
                    for i in range(table1.NUM_FLOWS)
                ],
            )
        )
    return DistributionsResult(
        rows=rows, duration=duration, seed=seed, scenario=result
    )
