"""Dynamic-environment validation of predicted service (Sections 3 and 7).

The paper closes its evaluation admitting that "much of the novelty of our
unified scheduling algorithm is our provision for predicted service, which
can only be meaningfully tested in a dynamic environment with adaptive
clients."  This experiment supplies that environment:

* Phase A — a base population of adaptive packet-voice clients runs over
  predicted service on one bottleneck link; their play-back points settle
  at the (low) post facto delay bound.
* Phase B — a wave of extra flows is admitted mid-run.  Delays rise; the
  adaptive clients gamble on the recent past and lose for a moment (the
  Section 3 loss burst), then re-adapt upward.
* Phase C — the wave departs.  Delays fall; the clients ratchet their
  play-back points back down, recovering latency a rigid client would
  keep paying until renegotiation.

The static part of the workload is a :class:`~repro.scenario.ScenarioSpec`;
the phase orchestration uses the live :class:`~repro.scenario.ScenarioContext`
(``add_flow`` / ``remove_flow``) to admit and tear down the wave through
the real signaling machinery mid-run.

The result records, per phase: the sample client's loss rate, mean
play-back offset, and the measured post facto delay bound — enough to
verify the narrative quantitatively (losses concentrate in the transition
into Phase B; offsets track the delivered service in both directions).
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.playback import AdaptivePlayback
from repro.experiments import common
from repro.scenario import (
    DisciplineSpec,
    FlowSpec,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioRunner,
    ScenarioSpec,
)

BASE_FLOWS = 6
WAVE_FLOWS = 4
CLASS_BOUNDS = (0.15, 1.5)
TARGET_LOSS = 0.01


@dataclasses.dataclass
class PhaseStats:
    """One client's fortunes during one load phase."""

    name: str
    start: float
    end: float
    received: int
    late: int
    mean_offset_seconds: float

    @property
    def loss_rate(self) -> float:
        return self.late / self.received if self.received else 0.0


@dataclasses.dataclass
class DynamicsResult:
    phases: List[PhaseStats]
    offset_history: List[tuple]  # (time, offset) of the sample client
    adaptations: int
    duration: float
    seed: int

    def phase(self, name: str) -> PhaseStats:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(name)

    def offset_at(self, time: float) -> float:
        """The sample client's play-back offset in force at ``time``."""
        current = self.offset_history[0][1]
        for when, offset in self.offset_history:
            if when > time:
                break
            current = offset
        return current

    def to_dict(self) -> dict:
        return {
            "phases": [dataclasses.asdict(p) for p in self.phases],
            "offset_history": [list(entry) for entry in self.offset_history],
            "adaptations": self.adaptations,
            "duration": self.duration,
            "seed": self.seed,
        }

    def render(self) -> str:
        body = [
            [
                phase.name,
                f"{phase.start:.0f}-{phase.end:.0f}s",
                str(phase.received),
                f"{phase.loss_rate:.2%}",
                f"{phase.mean_offset_seconds * 1e3:.1f}ms",
            ]
            for phase in self.phases
        ]
        table = common.format_table(
            ["phase", "interval", "packets", "loss", "mean offset"], body
        )
        return (
            "Dynamic adaptation — sample adaptive client under load shifts\n"
            f"{table}\n"
            f"play-back point adaptations: {self.adaptations}  "
            f"duration: {self.duration:.0f}s  seed: {self.seed}"
        )


class _PhaseRecorder:
    """Snapshots a playback app's counters at phase boundaries."""

    def __init__(self, app: AdaptivePlayback):
        self.app = app
        self._last_received = 0
        self._last_late = 0
        self._last_offset_sum = 0.0

    def snapshot(self, name: str, start: float, end: float) -> PhaseStats:
        received = self.app.received - self._last_received
        late = self.app.late - self._last_late
        offset_sum = self.app._offset_sum - self._last_offset_sum
        self._last_received = self.app.received
        self._last_late = self.app.late
        self._last_offset_sum = self.app._offset_sum
        return PhaseStats(
            name=name,
            start=start,
            end=end,
            received=received,
            late=late,
            mean_offset_seconds=offset_sum / received if received else 0.0,
        )


def scenario_spec(phase_seconds: float = 60.0, seed: int = 1) -> ScenarioSpec:
    """The static bottleneck scenario the phases play out on.

    Flows are added through the live context (phase orchestration), so the
    spec declares topology, discipline, and admission only.
    """
    return (
        ScenarioBuilder("dynamics")
        .single_link()
        .discipline(DisciplineSpec.unified(num_predicted_classes=len(CLASS_BOUNDS)))
        .admission(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
        .duration(3 * phase_seconds)
        .seed(seed)
        .build()
    )


def _voice_flow(flow_id: str) -> FlowSpec:
    """One adaptive packet-voice flow over predicted service."""
    return FlowSpec(
        name=flow_id,
        source_host="src-host",
        dest_host="dst-host",
        request=PredictedRequest(
            token_rate_bps=common.AVERAGE_RATE_PPS * common.PACKET_BITS,
            bucket_depth_bits=common.BUCKET_PACKETS * common.PACKET_BITS,
            target_delay_seconds=CLASS_BOUNDS[1],
            target_loss_rate=TARGET_LOSS,
        ),
        record=False,
    )


def run(
    phase_seconds: float = 60.0,
    seed: int = 1,
    sample_flow: str = "base-0",
) -> DynamicsResult:
    """Run the three-phase scenario; phases are ``phase_seconds`` each."""
    context = ScenarioRunner(scenario_spec(phase_seconds, seed)).build()
    sim = context.sim

    def playback_sink(ctx, flow):
        return AdaptivePlayback(
            ctx.sim,
            ctx.net.hosts[flow.dest_host],
            flow.name,
            target_loss=TARGET_LOSS,
            window=300,
            margin=1.1,
            initial_offset=2 * CLASS_BOUNDS[1],
            adapt_every=25,
        )

    # --- phase A population --------------------------------------------
    for i in range(BASE_FLOWS):
        flow_id = f"base-{i}"
        context.add_flow(
            _voice_flow(flow_id),
            sink_factory=playback_sink if flow_id == sample_flow else None,
        )
    sample_app = context.receivers[sample_flow]
    recorder = _PhaseRecorder(sample_app)
    phases: List[PhaseStats] = []

    # --- phase transitions ----------------------------------------------
    def enter_phase_b() -> None:
        phases.append(recorder.snapshot("A", 0.0, phase_seconds))
        for i in range(WAVE_FLOWS):
            context.add_flow(_voice_flow(f"wave-{i}"))

    def enter_phase_c() -> None:
        phases.append(
            recorder.snapshot("B", phase_seconds, 2 * phase_seconds)
        )
        for i in range(WAVE_FLOWS):
            context.remove_flow(f"wave-{i}")

    sim.schedule(phase_seconds, enter_phase_b)
    sim.schedule(2 * phase_seconds, enter_phase_c)
    duration = 3 * phase_seconds
    context.run(until=duration)
    phases.append(recorder.snapshot("C", 2 * phase_seconds, duration))

    return DynamicsResult(
        phases=phases,
        offset_history=list(sample_app.offset_history),
        adaptations=sample_app.adaptations,
        duration=duration,
        seed=seed,
    )
