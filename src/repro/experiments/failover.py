"""Failover flagship: predicted service vs FIFO through a link failure.

The paper's admission-controlled services assume routes are stable for a
flow's lifetime; real internets break that assumption.  This experiment
runs the :mod:`repro.control` plane end to end on the smallest topology
where failure has a story — a diamond::

          S-B
         /    \\
    S-A        S-C
         \\    /
          S-D

Traffic from ``h-src`` (at S-A) to ``h-dst`` (at S-C) takes the primary
path via S-B (the SPF tie-break prefers it by name).  One third of the
way through the measured window the S-A->S-B link fails: packets in
flight on the wire die (ledgered as failure drops), the queue behind the
dead link is flushed, the controller reconverges onto S-D, and every
admitted predicted flow is re-established through admission control on
the backup path.  Two thirds in, the link heals and everything migrates
back.

Each recorded predicted flow's queueing delay is bucketed into the three
route phases (pre-failure / failed-over / restored), under FIFO and
under the unified CSZ scheduler, with the run's conservation and
route-liveness invariants checked.  Expected shape: both disciplines
lose the same few packets to the wire and deliver the rest; CSZ keeps
the predicted flows' jitter below FIFO's in every phase, and the
failover itself costs a bounded transient, not a meltdown.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.experiments import common
from repro.stats import SummaryStats
from repro.scenario import (
    DisciplineSpec,
    FlowSpec,
    OutageEvent,
    OutageSpec,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    TopologySpec,
    registry,
)

PREDICTED_FLOWS = ("pred-0", "pred-1")
BACKGROUND_FLOWS = 5
CLASS_BOUNDS = (0.15, 1.5)
FAILED_LINK = "S-A->S-B"
#: The fabric-scale (fluid-engine) leg's failed uplink.
FLUID_FAILED_LINK = "L-1->SP-1"
DISCIPLINE_NAMES = ("FIFO", "CSZ")
PHASES = ("pre", "failed", "restored")


def diamond_topology() -> TopologySpec:
    """The two-path diamond; primary via S-B, backup via S-D."""
    return TopologySpec.graph(
        nodes=("S-A", "S-B", "S-C", "S-D"),
        links=[
            {"src": "S-A", "dst": "S-B"},
            {"src": "S-B", "dst": "S-C"},
            {"src": "S-A", "dst": "S-D"},
            {"src": "S-D", "dst": "S-C"},
        ],
        host_attachments=(("h-src", "S-A"), ("h-dst", "S-C")),
    )


def outage_window(duration: float, warmup: float) -> Tuple[float, float]:
    """(fail time, restore time): the middle third of the measured run.

    Runs too short to fit the warmup measure from time zero instead, so
    the window stays non-degenerate at any duration.
    """
    start = warmup if warmup < duration else 0.0
    span = duration - start
    return start + span / 3.0, start + 2.0 * span / 3.0


@registry.register("failover")
def scenario_spec(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
) -> ScenarioSpec:
    """The full failover experiment as one declarative spec."""
    fail_at, restore_at = outage_window(duration, warmup)
    builder = (
        ScenarioBuilder("failover")
        .topology(diamond_topology())
        .disciplines(
            DisciplineSpec.fifo(),
            DisciplineSpec.unified(
                name="CSZ", num_predicted_classes=len(CLASS_BOUNDS)
            ),
        )
        .admission(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
        .duration(duration)
        .warmup(warmup)
        .seed(seed)
        .validate(True)
    )
    for name in PREDICTED_FLOWS:
        builder.flow(
            FlowSpec(
                name=name,
                source_host="h-src",
                dest_host="h-dst",
                request=PredictedRequest(
                    token_rate_bps=common.AVERAGE_RATE_PPS * common.PACKET_BITS,
                    bucket_depth_bits=common.BUCKET_PACKETS * common.PACKET_BITS,
                    target_delay_seconds=CLASS_BOUNDS[1],
                    target_loss_rate=0.01,
                ),
            )
        )
    for i in range(BACKGROUND_FLOWS):
        builder.add_flow(f"bg-{i}", "h-src", "h-dst", record=False)
    spec = builder.build()
    return spec.replace(
        outages=OutageSpec(
            events=(
                OutageEvent(
                    link=FAILED_LINK,
                    at=fail_at,
                    duration=restore_at - fail_at,
                ),
            )
        )
    )


@registry.register("failover:fabric")
def fabric_scenario_spec(
    duration: float = 60.0,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
) -> ScenarioSpec:
    """The failover story at fabric scale, for the fluid engine: a
    leaf-spine under a seeded ECMP many-flow population with admission
    on, losing one spine uplink through the middle third of the run.

    Exercises the whole fluid control plane — masked-ECMP rerouting,
    re-admission of request-bearing flows, boundary flushes — on a
    population the packet engine cannot reach."""
    spec = registry.build(
        "gen:leaf-spine",
        gen_seed=seed,
        duration=duration,
        seed=seed,
        warmup=warmup,
        admission=True,
        with_requests=True,
        engine="fluid",
    )
    fail_at, restore_at = outage_window(duration, warmup)
    return spec.replace(
        name="failover-fabric",
        outages=OutageSpec(
            events=(
                OutageEvent(
                    link=FLUID_FAILED_LINK,
                    at=fail_at,
                    duration=restore_at - fail_at,
                ),
            )
        ),
    )


class _PhaseBucketedTap:
    """Wraps a flow's recording sink, splitting delays by route phase.

    Installed by swapping the host's flow handler for a wrapper that
    classifies ``sim.now`` against the outage window, records the
    packet's queueing delay into that phase's accumulator, and forwards
    to the original sink — no events, no draws, so the simulation is
    bit-identical to an untapped run.
    """

    def __init__(self, sim, sink, fail_at: float, restore_at: float,
                 warmup: float):
        self.sim = sim
        self.sink = sink
        self.fail_at = fail_at
        self.restore_at = restore_at
        self.warmup = warmup
        self.buckets: Dict[str, SummaryStats] = {
            phase: SummaryStats() for phase in PHASES
        }

    def on_packet(self, packet) -> None:
        now = self.sim.now
        if now >= self.warmup:
            if now < self.fail_at:
                phase = "pre"
            elif now < self.restore_at:
                phase = "failed"
            else:
                phase = "restored"
            self.buckets[phase].add(packet.queueing_delay)
        self.sink.on_packet(packet)


@dataclasses.dataclass
class FailoverRow:
    """One discipline's predicted-flow numbers, per route phase.

    Delays are in packet transmission times (the paper's unit); jitter
    is the max - min spread within the phase.
    """

    scheduling: str
    phase_mean: Dict[str, float]
    phase_jitter: Dict[str, float]
    phase_packets: Dict[str, int]
    delivered: int
    wire_killed: int
    flushed: int
    reroutes: int
    readmissions: int
    invariants_clean: bool


@dataclasses.dataclass
class FailoverResult:
    rows: List[FailoverRow]
    fail_at: float
    restore_at: float
    duration: float
    seed: int
    scenario: Optional[ScenarioResult] = None
    engine: str = "packet"
    failed_link: str = FAILED_LINK

    def row(self, scheduling: str) -> FailoverRow:
        for row in self.rows:
            if row.scheduling == scheduling:
                return row
        raise KeyError(scheduling)

    def render(self) -> str:
        header = ["scheduling"]
        for phase in PHASES:
            header += [f"{phase} mean", f"{phase} jitter"]
        header += ["delivered", "wire killed", "reroutes"]
        body = []
        for row in self.rows:
            line = [row.scheduling]
            for phase in PHASES:
                line += [
                    f"{row.phase_mean[phase]:.2f}",
                    f"{row.phase_jitter[phase]:.2f}",
                ]
            line += [
                str(row.delivered),
                str(row.wire_killed),
                str(row.reroutes),
            ]
            body.append(line)
        return "\n".join(
            [
                "Failover — predicted service through a link failure "
                f"({self.failed_link} down {self.fail_at:.1f}s-"
                f"{self.restore_at:.1f}s, {self.engine} engine)",
                "recorded-flow queueing delay by route phase "
                "(packet transmission times):",
                common.format_table(header, body),
                "invariants: "
                + ", ".join(
                    f"{row.scheduling}="
                    + ("clean" if row.invariants_clean else "VIOLATED")
                    for row in self.rows
                ),
                f"duration: {self.duration:.0f}s   seed: {self.seed}",
            ]
        )

    def to_dict(self) -> dict:
        return {
            "rows": [dataclasses.asdict(row) for row in self.rows],
            "fail_at": self.fail_at,
            "restore_at": self.restore_at,
            "duration": self.duration,
            "seed": self.seed,
            "engine": self.engine,
            "failed_link": self.failed_link,
        }


def _run_fluid(
    duration: float, seed: int, warmup: float
) -> FailoverResult:
    """The fabric-scale leg: both disciplines of
    :func:`fabric_scenario_spec` through the fluid engine, with the
    recorded flows' per-epoch delay samples bucketed into the three
    route phases off the epoch grid (each recorded sample is one
    epoch's weighted delay, in grid order from the warmup on)."""
    from repro.fluid.model import FluidSimulation

    spec = fabric_scenario_spec(duration=duration, seed=seed, warmup=warmup)
    fail_at, restore_at = outage_window(duration, warmup)
    unit = common.TX_TIME_SECONDS
    rows: List[FailoverRow] = []
    runs = []
    for discipline in spec.disciplines:
        sim = FluidSimulation(
            dataclasses.replace(spec, disciplines=(discipline,)), discipline
        )
        result = sim.run().collect()
        runs.append(result)
        control = result.control
        times: List[float] = []
        for e in range(sim.num_epochs):
            t0 = (
                sim.epoch_starts[e]
                if sim.epoch_starts is not None
                else e * sim.epoch_seconds
            )
            if t0 >= warmup:
                times.append(t0)
        # Pool recorded flows per phase: delivered-weighted mean delay
        # plus the min/max spread, mirroring the packet leg's taps.
        acc = {phase: [0.0, 0.0, None, None] for phase in PHASES}
        for sample_list in sim.samples.values():
            for (delay, w), t0 in zip(sample_list, times):
                if w <= 0:
                    continue
                if t0 < fail_at:
                    phase = "pre"
                elif t0 < restore_at:
                    phase = "failed"
                else:
                    phase = "restored"
                slot = acc[phase]
                slot[0] += w
                slot[1] += delay * w
                slot[2] = delay if slot[2] is None else min(slot[2], delay)
                slot[3] = delay if slot[3] is None else max(slot[3], delay)
        phase_mean = {
            phase: (slot[1] / slot[0] / unit if slot[0] else 0.0)
            for phase, slot in acc.items()
        }
        phase_jitter = {
            phase: ((slot[3] - slot[2]) / unit if slot[0] else 0.0)
            for phase, slot in acc.items()
        }
        phase_packets = {
            phase: int(round(slot[0])) for phase, slot in acc.items()
        }
        recorded = [
            f.name for i, f in enumerate(spec.flows) if sim.record[i]
        ]
        rows.append(
            FailoverRow(
                scheduling=result.discipline,
                phase_mean=phase_mean,
                phase_jitter=phase_jitter,
                phase_packets=phase_packets,
                delivered=sum(
                    result.flow(name).received for name in recorded
                ),
                wire_killed=0,  # fluid flows have no wire to die on
                flushed=control.flushed_packets,
                reroutes=sum(flow.reroutes for flow in control.flows),
                readmissions=sum(
                    flow.readmissions for flow in control.flows
                ),
                invariants_clean=all(
                    check.ok for check in result.invariants
                ),
            )
        )
    return FailoverResult(
        rows=rows,
        fail_at=fail_at,
        restore_at=restore_at,
        duration=duration,
        seed=seed,
        scenario=ScenarioResult(
            scenario=spec.name,
            seed=seed,
            duration=duration,
            warmup=warmup,
            runs=tuple(runs),
        ),
        engine="fluid",
        failed_link=FLUID_FAILED_LINK,
    )


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    engine: str = "packet",
) -> FailoverResult:
    """Run both disciplines serially (paired arrivals and outages).

    ``engine="fluid"`` runs the fabric-scale leg
    (:func:`fabric_scenario_spec`) on the fluid engine instead of the
    diamond on the packet engine."""
    if engine == "fluid":
        return _run_fluid(duration, seed, warmup)
    if engine != "packet":
        raise ValueError(f"unknown failover engine {engine!r}")
    spec = scenario_spec(duration=duration, seed=seed, warmup=warmup)
    fail_at, restore_at = outage_window(duration, warmup)
    unit = common.TX_TIME_SECONDS
    rows: List[FailoverRow] = []
    runs = []
    runner = ScenarioRunner(spec)
    for discipline in DISCIPLINE_NAMES:
        context = runner.build(discipline)
        taps: Dict[str, _PhaseBucketedTap] = {}
        host = context.net.hosts["h-dst"]
        for name in PREDICTED_FLOWS:
            tap = _PhaseBucketedTap(
                context.sim, context.sinks[name], fail_at, restore_at, warmup
            )
            host.unregister_flow_handler(name)
            host.register_flow_handler(name, tap.on_packet)
            taps[name] = tap
        result = context.run().collect()
        runs.append(result)
        control = result.control
        phase_mean: Dict[str, float] = {}
        phase_jitter: Dict[str, float] = {}
        phase_packets: Dict[str, int] = {}
        # Pool the recorded flows per phase: weighted mean, and jitter as
        # the spread across both flows' extremes.
        for phase in PHASES:
            total = sum(tap.buckets[phase].count for tap in taps.values())
            mean = (
                sum(tap.buckets[phase].total for tap in taps.values()) / total
                if total
                else 0.0
            )
            lo = min(
                (
                    tap.buckets[phase].min
                    for tap in taps.values()
                    if tap.buckets[phase].count
                ),
                default=0.0,
            )
            hi = max(
                (
                    tap.buckets[phase].max
                    for tap in taps.values()
                    if tap.buckets[phase].count
                ),
                default=0.0,
            )
            phase_mean[phase] = mean / unit
            phase_jitter[phase] = (hi - lo) / unit if total else 0.0
            phase_packets[phase] = total
        rows.append(
            FailoverRow(
                scheduling=result.discipline,
                phase_mean=phase_mean,
                phase_jitter=phase_jitter,
                phase_packets=phase_packets,
                delivered=sum(
                    result.flow(name).received for name in PREDICTED_FLOWS
                ),
                wire_killed=sum(
                    count for _, count in control.wire_killed
                ),
                flushed=control.flushed_packets,
                reroutes=sum(flow.reroutes for flow in control.flows),
                readmissions=sum(
                    flow.readmissions for flow in control.flows
                ),
                invariants_clean=all(
                    check.ok for check in result.invariants
                ),
            )
        )
    return FailoverResult(
        rows=rows,
        fail_at=fail_at,
        restore_at=restore_at,
        duration=duration,
        seed=seed,
        scenario=ScenarioResult(
            scenario=spec.name,
            seed=seed,
            duration=duration,
            warmup=warmup,
            runs=tuple(runs),
        ),
    )
