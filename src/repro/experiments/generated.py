"""Generated-topology flagship: FIFO vs FIFO+ vs CSZ across random graphs.

The paper's multi-hop sharing argument (Section 6) is demonstrated on
hand-built chains; the scenario generators make the stronger claim
testable: across *sampled* multi-bottleneck topologies — each a seeded
random graph with its own link structure and mixed traffic population
sized to the 85 % operating point — FIFO+ and the unified CSZ scheduler
should consistently shrink the long-haul flows' jitter relative to FIFO,
whatever the graph looks like.

This experiment sweeps ``gen_seeds`` generated scenarios (default 20)
through the :class:`~repro.scenario.SweepExecutor` — each generated spec
rides the sweep as a whole-spec override, one discipline simulation per
task — and ranks the disciplines per graph by the pooled jitter of the
multi-hop (≥ 2 link) flows.  Every run is validated: the generated specs
opt into the :mod:`repro.validate` invariant checks, and the result
records that they came back clean.

The golden test pins the per-graph jitter numbers and the resulting
ranking bit-for-bit at short duration.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import common
from repro.scenario import ScenarioResult, SweepExecutor, generators

DEFAULT_GEN_SEEDS: Tuple[int, ...] = tuple(range(1, 21))
DISCIPLINE_NAMES = ("FIFO", "FIFO+", "CSZ")
NUM_SWITCHES = 8
MULTIHOP_MIN_LINKS = 2


@dataclasses.dataclass
class GeneratedRow:
    """One generated graph's discipline comparison.

    ``jitter_ms`` maps discipline -> mean jitter (max minus min recorded
    queueing delay) of the multi-hop flows, in milliseconds; ``winner``
    is the discipline with the smallest value.
    """

    gen_seed: int
    num_flows: int
    num_multihop: int
    num_links: int
    jitter_ms: Dict[str, float]
    winner: str
    invariants_clean: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class GeneratedResult:
    rows: List[GeneratedRow]
    duration: float
    seed: int
    scenarios: Optional[List[ScenarioResult]] = None

    def row(self, gen_seed: int) -> GeneratedRow:
        for row in self.rows:
            if row.gen_seed == gen_seed:
                return row
        raise KeyError(gen_seed)

    @property
    def wins(self) -> Dict[str, int]:
        counts = {name: 0 for name in DISCIPLINE_NAMES}
        for row in self.rows:
            counts[row.winner] = counts.get(row.winner, 0) + 1
        return counts

    @property
    def mean_jitter_ms(self) -> Dict[str, float]:
        """Mean multi-hop jitter per discipline across all graphs."""
        totals: Dict[str, float] = {}
        for row in self.rows:
            for name, value in row.jitter_ms.items():
                totals[name] = totals.get(name, 0.0) + value
        return {name: totals[name] / len(self.rows) for name in totals}

    @property
    def all_invariants_clean(self) -> bool:
        return all(row.invariants_clean for row in self.rows)

    def render(self) -> str:
        means = self.mean_jitter_ms
        disciplines = list(self.rows[0].jitter_ms) if self.rows else []
        lines = [
            f"Generated random graphs — {len(self.rows)} seeded "
            f"multi-bottleneck topologies, mixed traffic at 85% load",
            "",
            "multi-hop flow jitter per graph (ms; lower is better):",
            common.format_table(
                ["graph", "links", "flows", "multi-hop"]
                + disciplines
                + ["winner"],
                [
                    [
                        f"g{row.gen_seed}",
                        str(row.num_links),
                        str(row.num_flows),
                        str(row.num_multihop),
                    ]
                    + [f"{row.jitter_ms[d]:.2f}" for d in disciplines]
                    + [row.winner]
                    for row in self.rows
                ],
            ),
            "",
            "wins: "
            + ", ".join(
                f"{name}: {count}" for name, count in self.wins.items()
            ),
            "mean jitter: "
            + ", ".join(
                f"{name}: {value:.2f} ms" for name, value in means.items()
            ),
            "invariants: "
            + (
                "clean on every run"
                if self.all_invariants_clean
                else "VIOLATIONS DETECTED"
            ),
            f"duration: {self.duration:.0f}s/graph   seed: {self.seed}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "rows": [row.to_dict() for row in self.rows],
            "wins": self.wins,
            "mean_jitter_ms": self.mean_jitter_ms,
            "all_invariants_clean": self.all_invariants_clean,
            "duration": self.duration,
            "seed": self.seed,
        }


def _row_from(
    gen_seed: int, spec, result: ScenarioResult
) -> GeneratedRow:
    multihop = [
        flow.name
        for flow in spec.flows
        if (flow.hops or 0) >= MULTIHOP_MIN_LINKS
    ]
    jitter_ms: Dict[str, float] = {}
    clean = True
    for run in result.runs:
        stats = [run.flow(name) for name in multihop]
        jitter_ms[run.discipline] = (
            sum(s.jitter_seconds for s in stats) / len(stats) * 1e3
            if stats
            else 0.0
        )
        if run.invariants is not None and not run.invariants_clean:
            clean = False
    winner = min(jitter_ms, key=lambda name: (jitter_ms[name], name))
    return GeneratedRow(
        gen_seed=gen_seed,
        num_flows=len(spec.flows),
        num_multihop=len(multihop),
        num_links=len(spec.topology.links),
        jitter_ms=jitter_ms,
        winner=winner,
        invariants_clean=clean,
    )


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    gen_seeds: Sequence[int] = DEFAULT_GEN_SEEDS,
    workers: Optional[int] = None,
    num_switches: int = NUM_SWITCHES,
    keep_scenarios: bool = False,
) -> GeneratedResult:
    """Run the generated-graph comparison across ``gen_seeds`` topologies.

    Each generated spec enters one sweep as a whole-spec override, so
    the executor fans the ``len(gen_seeds) × 3`` discipline simulations
    across ``workers`` processes; results reassemble in seed order.
    """
    gen_seeds = list(gen_seeds)
    if not gen_seeds:
        raise ValueError("need at least one generator seed")
    specs = [
        generators.random_graph(
            gen_seed=g,
            num_switches=num_switches,
            duration=duration,
            seed=seed,
            warmup=warmup,
        )
        for g in gen_seeds
    ]
    with SweepExecutor(workers=workers) as executor:
        outcome = executor.run_sweep(specs[0], over=list(specs))
    results = outcome.results
    rows = [
        _row_from(g, spec, result)
        for g, spec, result in zip(gen_seeds, specs, results)
    ]
    return GeneratedResult(
        rows=rows,
        duration=duration,
        seed=seed,
        scenarios=results if keep_scenarios else None,
    )
