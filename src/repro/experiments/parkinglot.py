"""Parking-lot merge network: FIFO+'s multi-hop jitter story, end to end.

The paper's FIFO+ argument (Section 6) is about *multi-hop sharing*: a
long-haul flow crossing many switches accumulates jitter at every hop, and
FIFO+ lets the switches absorb part of that jitter on behalf of the flow by
serving packets that are behind their class average ahead of locally young
cross traffic.  Figure 1's chain shares each link with mostly one-hop
flows, but every flow's packets still travel together; the sharper test is
the classic *parking lot* of the congestion-avoidance literature
(Jain/Ramakrishnan, DEC-TR-506): at **every** hop a fresh batch of cross
traffic merges in front of the long-haul flows and leaves one switch
later, so the through traffic meets statistically independent queues at
each merge point — the regime where per-hop jitter compounds worst.

This experiment declares that network as a graph :class:`TopologySpec`
(inexpressible with the legacy named kinds), loads every link to the
paper's 85 % operating point, and compares FIFO, FIFO+, and the unified
CSZ scheduler on the through flows' end-to-end delay tail and jitter, plus
the per-hop queueing profile along the lot.

Expected shape: identical mean delays (work-conserving disciplines moving
the same packets), with FIFO+ and the unified scheduler pulling the
99.9th percentile and the jitter (max - min spread) of the through flows
well below FIFO's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.net.topology import parking_lot_ascii
from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
    registry,
)

NUM_HOPS = 4
CROSS_PER_HOP = 8  # 8 cross + 2 through = 10 flows/link, the paper's load
THROUGH_FLOWS = ("thru-0", "thru-1")
DISCIPLINE_NAMES = ("FIFO", "FIFO+", "CSZ")


@registry.register("parking_lot")
def scenario_spec(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    num_hops: int = NUM_HOPS,
    cross_per_hop: int = CROSS_PER_HOP,
) -> ScenarioSpec:
    """The full parking-lot experiment as one declarative spec."""
    builder = (
        ScenarioBuilder("parking_lot")
        .parking_lot(num_hops)
        .disciplines(
            DisciplineSpec.fifo(),
            DisciplineSpec.fifoplus(),
            DisciplineSpec.unified(name="CSZ"),
        )
        .duration(duration)
        .warmup(warmup)
        .seed(seed)
    )
    for name in THROUGH_FLOWS:
        builder.add_flow(
            name,
            "thru-src",
            "thru-dst",
            service_class=ServiceClass.PREDICTED,
        )
    for hop in range(1, num_hops + 1):
        for i in range(cross_per_hop):
            builder.add_flow(
                f"cross-{hop}-{i}",
                f"cross-src-{hop}",
                f"cross-dst-{hop}",
                service_class=ServiceClass.PREDICTED,
                # One recorded witness per hop; the rest are pure load.
                record=(i == 0),
                hops=1,
            )
    return builder.build()


@dataclasses.dataclass
class ParkingLotRow:
    """One discipline's through-flow numbers (packet transmission times)."""

    scheduling: str
    mean: float
    p999: float
    jitter: float
    cross_mean: float  # recorded one-hop cross witnesses, pooled mean
    link_queueing_ms: Dict[str, float]  # per-hop mean wait, milliseconds
    link_utilizations: Dict[str, float]


@dataclasses.dataclass
class ParkingLotResult:
    rows: List[ParkingLotRow]
    num_hops: int
    duration: float
    seed: int
    scenario: Optional[ScenarioResult] = None

    def row(self, scheduling: str) -> ParkingLotRow:
        for row in self.rows:
            if row.scheduling == scheduling:
                return row
        raise KeyError(scheduling)

    def render(self) -> str:
        lines = [
            "Parking lot — cross traffic merges at every hop "
            f"({self.num_hops} hops, 85% load/link)",
            parking_lot_ascii(self.num_hops),
            f"through-flow queueing delay over {self.num_hops} hops "
            "(packet transmission times):",
            common.format_table(
                ["scheduling", "mean", "99.9 %ile", "jitter", "cross mean"],
                [
                    [
                        row.scheduling,
                        f"{row.mean:.2f}",
                        f"{row.p999:.2f}",
                        f"{row.jitter:.2f}",
                        f"{row.cross_mean:.2f}",
                    ]
                    for row in self.rows
                ],
            ),
            "",
            "mean per-hop wait along the lot (ms):",
            common.format_table(
                ["scheduling"] + sorted(self.rows[0].link_queueing_ms),
                [
                    [row.scheduling]
                    + [
                        f"{row.link_queueing_ms[link]:.2f}"
                        for link in sorted(row.link_queueing_ms)
                    ]
                    for row in self.rows
                ],
            ),
            "",
            f"link utilizations: "
            + ", ".join(
                f"{name}: {value:.1%}"
                for name, value in sorted(
                    self.rows[0].link_utilizations.items()
                )
            ),
            f"duration: {self.duration:.0f}s   seed: {self.seed}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "scheduling": row.scheduling,
                    "mean": row.mean,
                    "p999": row.p999,
                    "jitter": row.jitter,
                    "cross_mean": row.cross_mean,
                    "link_queueing_ms": row.link_queueing_ms,
                    "link_utilizations": row.link_utilizations,
                }
                for row in self.rows
            ],
            "num_hops": self.num_hops,
            "duration": self.duration,
            "seed": self.seed,
        }


def _rows_from(result: ScenarioResult, spec: ScenarioSpec) -> List[ParkingLotRow]:
    unit = common.TX_TIME_SECONDS
    cross_witnesses = [
        flow.name
        for flow in spec.flows
        if flow.record and flow.name not in THROUGH_FLOWS
    ]
    rows = []
    for run in result.runs:
        # Pool the two through flows (identical placement and load).
        thru = [run.flow(name) for name in THROUGH_FLOWS]
        weights = [stats.recorded for stats in thru]
        total = sum(weights) or 1
        mean = sum(s.mean_seconds * w for s, w in zip(thru, weights)) / total
        p999 = max(s.percentile_in(99.9) for s in thru)
        jitter = max(s.jitter_seconds for s in thru)
        cross = [run.flow(name) for name in cross_witnesses]
        cross_weights = [stats.recorded for stats in cross]
        cross_total = sum(cross_weights) or 1
        cross_mean = (
            sum(s.mean_seconds * w for s, w in zip(cross, cross_weights))
            / cross_total
        )
        rows.append(
            ParkingLotRow(
                scheduling=run.discipline,
                mean=mean / unit,
                p999=p999 / unit,
                jitter=jitter / unit,
                cross_mean=cross_mean / unit,
                link_queueing_ms={
                    name: value * 1e3 for name, value in run.link_queueing
                },
                link_utilizations=dict(run.link_utilizations),
            )
        )
    return rows


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    workers: Optional[int] = None,
) -> ParkingLotResult:
    spec = scenario_spec(duration=duration, seed=seed, warmup=warmup)
    result = ScenarioRunner(spec).run(workers=workers)
    return ParkingLotResult(
        rows=_rows_from(result, spec),
        num_hops=NUM_HOPS,
        duration=duration,
        seed=seed,
        scenario=result,
    )
