"""Scale flagship: CSZ isolation and admission at 10k–100k+ flows.

The paper argues its service model *because* of scale: isolation (WFQ /
the unified scheduler) and admission control only earn their complexity
when many flows contend.  The packet engine demonstrates the mechanisms
at tens of flows; this experiment asks the paper's two core questions at
datacenter populations on the fluid engine:

* **Isolation.**  On a fat-tree carrying ``size`` flows just past
  saturation (hottest link at 1.05x, where the 2x-peak on/off bursts
  actually queue), compare FIFO against the unified CSZ scheduler: mean
  queueing delay of the recorded *realtime* (guaranteed + predicted)
  flows vs the recorded *datagram* flows.  Under FIFO every tier sees
  the same shared queue; under CSZ the realtime tiers are served first
  and datagram absorbs the queueing — the Figure-1 structure, holding at
  populations five orders of magnitude beyond the paper's.
* **Admission.**  The same fabric deliberately overloaded (offered load
  1.3x the bottleneck), every realtime flow carrying a service request,
  with admission control on: the quota admits what fits, denials ride
  as datagram, and the admitted realtime tier keeps its delay — the
  paper's argument that admission is what makes guarantees *mean*
  something under overload.

Each row also records the fluid engine's throughput (flow-advances per
wall-clock second) — the number ``BENCH_fluid.json`` tracks — so the
flagship doubles as a visible statement of why these questions are
answerable at all: at 100k flows the packet engine would need hours per
cell; the fluid engine needs seconds.  Populations beyond 100k (the
1M-flow regime) run the same way: ``run(sizes=(1_000_000,))``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fluid import FluidSimulation
from repro.scenario import DisciplineSpec, ScenarioRunner, registry

DEFAULT_SIZES: Tuple[int, ...] = (10_000, 100_000)
DEFAULT_DURATION_SECONDS = 60.0
RECORD_FLOWS = 48
#: Isolation leg: just past saturation so the 2x-peak bursts queue (at
#: the 0.85 operating point the deterministic fluid limit never backs
#: up and every scheduler looks identical).
BURST_UTILIZATION = 1.05
OVERLOAD_UTILIZATION = 1.3


def _k_for(size: int) -> int:
    """A fat-tree arity whose host count suits the population."""
    if size <= 2_000:
        return 4
    if size <= 20_000:
        return 8
    return 16


@dataclasses.dataclass
class ScaleRow:
    """One population size: isolation and admission, side by side.

    Delays are mean recorded queueing delay in milliseconds, split by
    service tier (``rt`` = guaranteed + predicted, ``dg`` = datagram).
    """

    size: int
    k: int
    flows_per_sec: float
    wall_seconds: float
    fifo_rt_ms: float
    fifo_dg_ms: float
    csz_rt_ms: float
    csz_dg_ms: float
    admitted: int
    denied: int
    overload_rt_ms: float
    overload_dg_ms: float
    invariants_clean: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ScaleResult:
    rows: List[ScaleRow]
    duration: float
    seed: int
    gen_seed: int

    @property
    def all_invariants_clean(self) -> bool:
        return all(row.invariants_clean for row in self.rows)

    def row(self, size: int) -> ScaleRow:
        for row in self.rows:
            if row.size == size:
                return row
        raise KeyError(f"no row for size {size}")

    def render(self) -> str:
        lines = [
            "Scale flagship (fluid engine): isolation + admission on "
            "fat-tree fabrics",
            f"  duration {self.duration:g}s  seed {self.seed}  "
            f"gen_seed {self.gen_seed}",
            "",
            f"{'flows':>9}  {'fabric':>7}  {'Mflow-adv/s':>11}  "
            f"{'FIFO rt/dg ms':>14}  {'CSZ rt/dg ms':>13}  "
            f"{'admit/deny':>11}  {'overload rt/dg ms':>17}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.size:>9,}  k={row.k:<5}  "
                f"{row.flows_per_sec / 1e6:>11.2f}  "
                f"{row.fifo_rt_ms:>6.2f}/{row.fifo_dg_ms:<7.2f}  "
                f"{row.csz_rt_ms:>5.2f}/{row.csz_dg_ms:<7.2f}  "
                f"{row.admitted:>5,}/{row.denied:<5,}  "
                f"{row.overload_rt_ms:>8.2f}/{row.overload_dg_ms:<8.2f}"
            )
        lines.append("")
        lines.append(
            "  rt = recorded guaranteed+predicted flows, dg = recorded "
            "datagram flows; overload = 1.3x offered load with admission on"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "duration": self.duration,
            "seed": self.seed,
            "gen_seed": self.gen_seed,
            "rows": [row.to_dict() for row in self.rows],
            "all_invariants_clean": self.all_invariants_clean,
        }


def _tier_delays_ms(run, spec) -> Tuple[float, float]:
    """(realtime_ms, datagram_ms) mean recorded queueing delay."""
    service = {f.name: f.service_class for f in spec.flows}
    rt: List[float] = []
    dg: List[float] = []
    for stats in run.flows:
        bucket = rt if service[stats.name].is_realtime else dg
        bucket.append(stats.mean_seconds * 1e3)
    return (
        sum(rt) / len(rt) if rt else 0.0,
        sum(dg) / len(dg) if dg else 0.0,
    )


def _build(size: int, duration: float, seed: int, gen_seed: int, **kwargs):
    return registry.build(
        "gen:fat-tree",
        gen_seed=gen_seed,
        k=_k_for(size),
        num_flows=size,
        duration=duration,
        seed=seed,
        record_flows=RECORD_FLOWS,
        engine="fluid",
        **kwargs,
    )


def run(
    duration: Optional[float] = None,
    seed: int = 1,
    gen_seed: int = 1,
    sizes: Sequence[int] = DEFAULT_SIZES,
) -> ScaleResult:
    duration = duration or DEFAULT_DURATION_SECONDS
    rows: List[ScaleRow] = []
    for size in sizes:
        spec = _build(
            size, duration, seed, gen_seed,
            target_utilization=BURST_UTILIZATION,
            disciplines=(
                DisciplineSpec.fifo(),
                DisciplineSpec.unified(name="CSZ"),
            ),
        )
        runner = ScenarioRunner(spec)
        by_disc: Dict[str, object] = {
            d.name: runner.run_discipline(d) for d in spec.disciplines
        }
        fifo_rt, fifo_dg = _tier_delays_ms(by_disc["FIFO"], spec)
        csz_rt, csz_dg = _tier_delays_ms(by_disc["CSZ"], spec)
        csz = by_disc["CSZ"]

        # Admission leg: the same fabric pushed past its capacity, every
        # realtime flow asking, the quota deciding.  Built via
        # FluidSimulation directly so the admit/deny split is readable.
        overload_spec = _build(
            size, duration, seed, gen_seed,
            target_utilization=OVERLOAD_UTILIZATION,
            with_requests=True,
            admission=True,
            disciplines=(DisciplineSpec.unified(name="CSZ"),),
        )
        sim = FluidSimulation(overload_spec, overload_spec.disciplines[0])
        overload_run = sim.run().collect()
        over_rt, over_dg = _tier_delays_ms(overload_run, overload_spec)

        rows.append(
            ScaleRow(
                size=size,
                k=_k_for(size),
                flows_per_sec=csz.events_processed / csz.wall_seconds,
                wall_seconds=sum(
                    r.wall_seconds for r in by_disc.values()
                ) + overload_run.wall_seconds,
                fifo_rt_ms=fifo_rt,
                fifo_dg_ms=fifo_dg,
                csz_rt_ms=csz_rt,
                csz_dg_ms=csz_dg,
                admitted=len(sim.admitted),
                denied=len(sim.denied),
                overload_rt_ms=over_rt,
                overload_dg_ms=over_dg,
                invariants_clean=all(
                    c.ok
                    for r in (*by_disc.values(), overload_run)
                    for c in (r.invariants or ())
                ),
            )
        )
    return ScaleResult(
        rows=rows, duration=duration, seed=seed, gen_seed=gen_seed
    )
