"""Table 1: WFQ vs FIFO queueing delay on a single shared link.

The paper: one 1 Mbit/s link, 10 identical on/off flows (A = 85 pkt/s,
(A, 50) token bucket), 83.5 % utilized, 10 simulated minutes.  Reported for
a sample flow, in packet transmission times:

    scheduling   mean   99.9 %ile
    WFQ          3.16   53.86
    FIFO         3.17   34.72

Shape criterion: means statistically indistinguishable, FIFO's tail far
below WFQ's — sharing beats isolation for homogeneous adaptive clients.
The WFQ run gives every flow an equal clock rate (link/10), matching the
paper's "equal clock rates" note for these comparisons.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.experiments import common
from repro.net.link import Link
from repro.net.topology import single_link_topology
from repro.sched.base import Scheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.wfq import WfqScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

NUM_FLOWS = 10
PAPER_VALUES = {
    "WFQ": {"mean": 3.16, "p999": 53.86},
    "FIFO": {"mean": 3.17, "p999": 34.72},
}


@dataclasses.dataclass
class Table1Row:
    scheduling: str
    mean: float
    p999: float
    flow_means: List[float]
    flow_p999s: List[float]


@dataclasses.dataclass
class Table1Result:
    rows: List[Table1Row]
    utilization: float
    duration: float
    seed: int

    def row(self, scheduling: str) -> Table1Row:
        for row in self.rows:
            if row.scheduling == scheduling:
                return row
        raise KeyError(scheduling)

    def render(self) -> str:
        body = [
            [row.scheduling, f"{row.mean:.2f}", f"{row.p999:.2f}"]
            for row in self.rows
        ]
        table = common.format_table(["scheduling", "mean", "99.9 %ile"], body)
        return (
            "Table 1 — queueing delay of a sample flow "
            "(packet transmission times)\n"
            f"{table}\n"
            f"link utilization: {self.utilization:.1%}  "
            f"(paper: 83.5%)   duration: {self.duration:.0f}s  seed: {self.seed}\n"
            f"paper values:   WFQ 3.16 / 53.86   FIFO 3.17 / 34.72"
        )


def scheduler_factories() -> Dict[str, Callable[[str, Link], Scheduler]]:
    """The two Table-1 disciplines, keyed by the paper's row label."""
    return {
        "WFQ": lambda name, link: WfqScheduler(
            link.rate_bps, auto_register_rate=link.rate_bps / NUM_FLOWS
        ),
        "FIFO": lambda name, link: FifoScheduler(),
    }


def run_single(
    scheduling: str,
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    sample_flow: int = 0,
) -> Table1Row:
    """One scheduling discipline on the Table-1 workload.

    The same seed produces the identical packet arrival process for every
    discipline (sources draw from streams named only by flow), so the
    comparison is paired exactly as in the paper's simulator.
    """
    factory = scheduler_factories()[scheduling]
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    net = single_link_topology(
        sim, factory, rate_bps=common.LINK_RATE_BPS,
        buffer_packets=common.BUFFER_PACKETS,
    )
    sinks = []
    from repro.traffic.onoff import OnOffMarkovSource
    from repro.traffic.sink import DelayRecordingSink

    for i in range(NUM_FLOWS):
        flow_id = f"flow-{i}"
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(f"source:{flow_id}"),
            average_rate_pps=common.AVERAGE_RATE_PPS,
        )
        sinks.append(
            DelayRecordingSink(sim, net.hosts["dst-host"], flow_id, warmup=warmup)
        )
    sim.run(until=duration)
    unit = common.TX_TIME_SECONDS
    sample = sinks[sample_flow]
    return Table1Row(
        scheduling=scheduling,
        mean=sample.mean_queueing(unit),
        p999=sample.percentile_queueing(99.9, unit),
        flow_means=[s.mean_queueing(unit) for s in sinks],
        flow_p999s=[s.percentile_queueing(99.9, unit) for s in sinks],
    )


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
) -> Table1Result:
    """Reproduce Table 1 (both rows) with paired arrivals."""
    rows = [run_single(name, duration, seed, warmup) for name in ("WFQ", "FIFO")]
    # Utilization is scheduler-independent (work conservation); measure once.
    sim = Simulator()
    streams = RandomStreams(seed=seed)
    net = single_link_topology(
        sim, lambda n, l: FifoScheduler(), rate_bps=common.LINK_RATE_BPS
    )
    from repro.traffic.onoff import OnOffMarkovSource

    for i in range(NUM_FLOWS):
        flow_id = f"flow-{i}"
        OnOffMarkovSource.paper_source(
            sim,
            net.hosts["src-host"],
            flow_id,
            "dst-host",
            streams.stream(f"source:{flow_id}"),
        )
        net.hosts["dst-host"].default_handler = lambda packet: None
    sim.run(until=duration)
    return Table1Result(
        rows=rows,
        utilization=net.links["A->B"].utilization(),
        duration=duration,
        seed=seed,
    )
