"""Table 1: WFQ vs FIFO queueing delay on a single shared link.

The paper: one 1 Mbit/s link, 10 identical on/off flows (A = 85 pkt/s,
(A, 50) token bucket), 83.5 % utilized, 10 simulated minutes.  Reported for
a sample flow, in packet transmission times:

    scheduling   mean   99.9 %ile
    WFQ          3.16   53.86
    FIFO         3.17   34.72

Shape criterion: means statistically indistinguishable, FIFO's tail far
below WFQ's — sharing beats isolation for homogeneous adaptive clients.
The WFQ run gives every flow an equal clock rate (link/10), matching the
paper's "equal clock rates" note for these comparisons.

The workload is declared once as a :class:`repro.scenario.ScenarioSpec`;
``run()`` is a thin wrapper over :class:`repro.scenario.ScenarioRunner`
that keeps the historical result types (numbers bit-identical to the
pre-scenario implementation at the same seed).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.experiments import common
from repro.scenario import (
    registry,
    DisciplineRunResult,
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
)

NUM_FLOWS = 10
PAPER_VALUES = {
    "WFQ": {"mean": 3.16, "p999": 53.86},
    "FIFO": {"mean": 3.17, "p999": 34.72},
}


@dataclasses.dataclass
class Table1Row:
    scheduling: str
    mean: float
    p999: float
    flow_means: List[float]
    flow_p999s: List[float]


@dataclasses.dataclass
class Table1Result:
    rows: List[Table1Row]
    utilization: float
    duration: float
    seed: int
    scenario: Optional[ScenarioResult] = None

    def row(self, scheduling: str) -> Table1Row:
        for row in self.rows:
            if row.scheduling == scheduling:
                return row
        raise KeyError(scheduling)

    def render(self) -> str:
        body = [
            [row.scheduling, f"{row.mean:.2f}", f"{row.p999:.2f}"]
            for row in self.rows
        ]
        table = common.format_table(["scheduling", "mean", "99.9 %ile"], body)
        return (
            "Table 1 — queueing delay of a sample flow "
            "(packet transmission times)\n"
            f"{table}\n"
            f"link utilization: {self.utilization:.1%}  "
            f"(paper: 83.5%)   duration: {self.duration:.0f}s  seed: {self.seed}\n"
            f"paper values:   WFQ 3.16 / 53.86   FIFO 3.17 / 34.72"
        )


def discipline_specs() -> Dict[str, DisciplineSpec]:
    """The two Table-1 disciplines, keyed by the paper's row label."""
    return {
        "WFQ": DisciplineSpec.wfq(equal_share_flows=NUM_FLOWS),
        "FIFO": DisciplineSpec.fifo(),
    }


def scenario_spec(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    disciplines: tuple = ("WFQ", "FIFO"),
) -> ScenarioSpec:
    """The full Table-1 experiment as one declarative spec."""
    specs = discipline_specs()
    return (
        ScenarioBuilder("table1")
        .single_link()
        .paper_flows(NUM_FLOWS)
        .disciplines(*(specs[name] for name in disciplines))
        .duration(duration)
        .seed(seed)
        .warmup(warmup)
        .build()
    )


def _row_from(run: DisciplineRunResult, sample_flow: int = 0) -> Table1Row:
    unit = common.TX_TIME_SECONDS
    flows = [run.flow(f"flow-{i}") for i in range(NUM_FLOWS)]
    sample = flows[sample_flow]
    return Table1Row(
        scheduling=run.discipline,
        mean=sample.mean_in(unit),
        p999=sample.percentile_in(99.9, unit),
        flow_means=[f.mean_in(unit) for f in flows],
        flow_p999s=[f.percentile_in(99.9, unit) for f in flows],
    )


def run_single(
    scheduling: str,
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    sample_flow: int = 0,
) -> Table1Row:
    """One scheduling discipline on the Table-1 workload.

    The same seed produces the identical packet arrival process for every
    discipline (sources draw from streams named only by flow), so the
    comparison is paired exactly as in the paper's simulator.
    """
    spec = scenario_spec(duration, seed, warmup, disciplines=(scheduling,))
    return _row_from(ScenarioRunner(spec).run_discipline(), sample_flow)


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    workers: Optional[int] = None,
) -> Table1Result:
    """Reproduce Table 1 (both rows) with paired arrivals.

    Utilization comes from the FIFO run directly (work conservation makes
    it scheduler-independent; the sink layer never perturbs the link).
    """
    result = ScenarioRunner(scenario_spec(duration, seed, warmup)).run(
        workers=workers
    )
    return Table1Result(
        rows=[_row_from(result.run(name)) for name in ("WFQ", "FIFO")],
        utilization=result.run("FIFO").utilization("A->B"),
        duration=duration,
        seed=seed,
        scenario=result,
    )

registry.register("table1", scenario_spec)
