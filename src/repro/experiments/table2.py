"""Table 2: WFQ vs FIFO vs FIFO+ on the Figure-1 chain, by path length.

22 identical on/off flows over 5 switches / 4 links (10 flows per link,
83.5 % utilized each).  The paper reports mean and 99.9th-percentile
queueing delays of one sample flow per path length:

                 1 hop          2 hops         3 hops         4 hops
    WFQ     2.65 / 45.31   4.74 / 60.31   7.51 / 65.86   9.64 / 80.59
    FIFO    2.54 / 30.49   4.73 / 41.22   7.97 / 52.36  10.33 / 58.13
    FIFO+   2.71 / 33.59   4.69 / 38.15   7.76 / 43.30  10.11 / 45.25

Shape criteria: means comparable across disciplines and growing ~linearly
with hops; the 99.9 %ile grows with hops everywhere but much more slowly
under FIFO+ (multi-hop sharing), with FIFO between FIFO+ and WFQ.

Declared once as a :class:`repro.scenario.ScenarioSpec` (the Figure-1
placement lives in :mod:`repro.scenario.paper`); ``run()`` keeps the
historical result types with numbers bit-identical to the pre-scenario
implementation at the same seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.experiments import common
from repro.scenario import (
    registry,
    DisciplineRunResult,
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
)

FLOWS_PER_LINK = 10

# Sample flow per path length (one of each; the paper notes "the data from
# the other flows are similar", which tests verify).
SAMPLE_BY_HOPS = {1: "a2", 2: "e1", 3: "g1", 4: "i1"}

PAPER_VALUES = {
    "WFQ": {1: (2.65, 45.31), 2: (4.74, 60.31), 3: (7.51, 65.86), 4: (9.64, 80.59)},
    "FIFO": {1: (2.54, 30.49), 2: (4.73, 41.22), 3: (7.97, 52.36), 4: (10.33, 58.13)},
    "FIFO+": {1: (2.71, 33.59), 2: (4.69, 38.15), 3: (7.76, 43.30), 4: (10.11, 45.25)},
}


@dataclasses.dataclass
class Table2Cell:
    mean: float
    p999: float


@dataclasses.dataclass
class Table2Row:
    scheduling: str
    by_hops: Dict[int, Table2Cell]
    # Per-flow data for the similarity checks.
    all_means: Dict[str, float]
    all_p999s: Dict[str, float]


@dataclasses.dataclass
class Table2Result:
    rows: List[Table2Row]
    link_utilizations: Dict[str, float]
    duration: float
    seed: int
    scenario: Optional[ScenarioResult] = None

    def row(self, scheduling: str) -> Table2Row:
        for row in self.rows:
            if row.scheduling == scheduling:
                return row
        raise KeyError(scheduling)

    def render(self) -> str:
        headers = ["scheduling"]
        for hops in (1, 2, 3, 4):
            headers += [f"{hops}h mean", f"{hops}h 99.9%"]
        body = []
        for row in self.rows:
            cells = [row.scheduling]
            for hops in (1, 2, 3, 4):
                cell = row.by_hops[hops]
                cells += [f"{cell.mean:.2f}", f"{cell.p999:.2f}"]
            body.append(cells)
        table = common.format_table(headers, body)
        util = ", ".join(
            f"{name}={u:.1%}" for name, u in sorted(self.link_utilizations.items())
        )
        return (
            "Table 2 — queueing delay by path length "
            "(packet transmission times)\n"
            f"{table}\n"
            f"link utilization: {util}  (paper: 83.5% each)\n"
            f"duration: {self.duration:.0f}s  seed: {self.seed}"
        )


def discipline_specs() -> Dict[str, DisciplineSpec]:
    """Table 2 disciplines.  WFQ uses equal clock rates (paper's note)."""
    return {
        "WFQ": DisciplineSpec.wfq(equal_share_flows=FLOWS_PER_LINK),
        "FIFO": DisciplineSpec.fifo(),
        "FIFO+": DisciplineSpec.fifoplus(),
    }


def scenario_spec(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    disciplines: tuple = ("WFQ", "FIFO", "FIFO+"),
) -> ScenarioSpec:
    """The full Table-2 experiment as one declarative spec."""
    specs = discipline_specs()
    return (
        ScenarioBuilder("table2")
        .paper_chain()
        .figure1_flows()
        .disciplines(*(specs[name] for name in disciplines))
        .duration(duration)
        .seed(seed)
        .warmup(warmup)
        .build()
    )


def _row_from(run: DisciplineRunResult) -> Table2Row:
    unit = common.TX_TIME_SECONDS
    by_hops = {
        hops: Table2Cell(
            mean=run.flow(flow).mean_in(unit),
            p999=run.flow(flow).percentile_in(99.9, unit),
        )
        for hops, flow in SAMPLE_BY_HOPS.items()
    }
    return Table2Row(
        scheduling=run.discipline,
        by_hops=by_hops,
        all_means={f.name: f.mean_in(unit) for f in run.flows},
        all_p999s={f.name: f.percentile_in(99.9, unit) for f in run.flows},
    )


def run_single(
    scheduling: str,
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
) -> Table2Row:
    """One discipline over the full Figure-1 workload."""
    spec = scenario_spec(duration, seed, warmup, disciplines=(scheduling,))
    return _row_from(ScenarioRunner(spec).run_discipline())


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    disciplines: tuple = ("WFQ", "FIFO", "FIFO+"),
    workers: Optional[int] = None,
) -> Table2Result:
    """Reproduce Table 2 with paired arrivals across disciplines.

    Utilization comes from the FIFO run (work conservation makes it
    scheduler-independent up to end effects); with FIFO absent from
    ``disciplines`` the first run is used instead.
    """
    result = ScenarioRunner(
        scenario_spec(duration, seed, warmup, disciplines)
    ).run(workers=workers)
    util_run = (
        result.run("FIFO") if "FIFO" in result.disciplines else result.runs[0]
    )
    return Table2Result(
        rows=[_row_from(result.run(name)) for name in disciplines],
        link_utilizations=dict(util_run.link_utilizations),
        duration=duration,
        seed=seed,
        scenario=result,
    )

registry.register("table2", scenario_spec)
