"""Table 3: the unified scheduling algorithm with mixed commitments.

The Figure-1 chain again, but now the 22 real-time flows split into
service classes and two TCP connections supply datagram load:

* 3 Guaranteed-Peak flows — clock rate = peak generation rate (2A =
  170 pkt/s -> 170 kbit/s),
* 2 Guaranteed-Average flows — clock rate = average rate (85 kbit/s),
* 7 Predicted-High and 10 Predicted-Low flows (two priority classes),
* 2 TCP connections (Host-1->Host-3 and Host-3->Host-5), so every link
  carries exactly: 2 G-Peak + 1 G-Avg + 3 P-High + 4 P-Low + 1 datagram
  connection — the paper's per-link census.

Flows are established through the real signaling/admission machinery
(guaranteed clock rates installed in the per-port unified schedulers;
predicted flows assigned priority classes from their (D, L) requests with
the token-bucket conformance check installed at their first switch).

Paper's sample results (delay in transmission times):

    Guaranteed                                Predicted
    type  path mean  99.9   max    P-G bound  type path mean  99.9   max
    Peak  4    8.07  14.41  15.99  23.53      High 4    3.06  8.20  11.13
    Peak  2    2.91  8.12   8.79   11.76      High 2    1.60  5.83  7.48
    Avg   3    56.44 270.13 296.23 611.76     Low  3    19.22 104.83 148.7
    Avg   1    36.27 206.75 247.24 588.24     Low  1    7.43  79.57 108.56

Shape criteria: every guaranteed max delay < its P-G bound; Peak delays
<< Average delays; High delays << Low delays; total utilization > 95 %
(paper: >99 %) with ~83.5 % real-time; datagram drop rate small (~0.1 %).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.bounds import parekh_gallager_paper_bound
from repro.core.measurement import MeasurementConfig, SwitchMeasurement
from repro.core.service import (
    FlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
)
from repro.core.signaling import SignalingAgent
from repro.experiments import common
from repro.net.packet import Packet, ServiceClass
from repro.net.topology import paper_figure1_topology
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.transport.tcp import TcpConfig, TcpConnection

PEAK_CLOCK_BPS = 2 * common.AVERAGE_RATE_PPS * common.PACKET_BITS  # 170 kbit/s
AVG_CLOCK_BPS = common.AVERAGE_RATE_PPS * common.PACKET_BITS  # 85 kbit/s
# Per-switch predicted class bounds D_i ("widely spaced"); D_0 is sized so
# the paper's declared bucket (50 packets) passes criterion (2) on a link
# already carrying the full guaranteed reservation: b < D_0 * (mu - 425k - r).
CLASS_BOUNDS_SECONDS = (0.15, 1.5)

PAPER_VALUES = {
    ("Peak", 4): {"mean": 8.07, "p999": 14.41, "max": 15.99, "pg": 23.53},
    ("Peak", 2): {"mean": 2.91, "p999": 8.12, "max": 8.79, "pg": 11.76},
    ("Average", 3): {"mean": 56.44, "p999": 270.13, "max": 296.23, "pg": 611.76},
    ("Average", 1): {"mean": 36.27, "p999": 206.75, "max": 247.24, "pg": 588.24},
    ("High", 4): {"mean": 3.06, "p999": 8.20, "max": 11.13},
    ("High", 2): {"mean": 1.60, "p999": 5.83, "max": 7.48},
    ("Low", 3): {"mean": 19.22, "p999": 104.83, "max": 148.7},
    ("Low", 1): {"mean": 7.43, "p999": 79.57, "max": 108.56},
}


@dataclasses.dataclass
class Table3Row:
    flow_type: str  # Peak / Average / High / Low
    flow: str
    hops: int
    mean: float
    p999: float
    max: float
    pg_bound: Optional[float]  # guaranteed flows only


@dataclasses.dataclass
class Table3Result:
    rows: List[Table3Row]
    all_max_by_flow: Dict[str, float]
    pg_bound_by_flow: Dict[str, float]
    link_utilizations: Dict[str, float]
    realtime_fraction: Dict[str, float]
    datagram_sent: int
    datagram_dropped: int
    tcp_goodput_bps: Dict[str, float]
    duration: float
    seed: int

    @property
    def datagram_drop_rate(self) -> float:
        return self.datagram_dropped / self.datagram_sent if self.datagram_sent else 0.0

    def row(self, flow_type: str, hops: int) -> Table3Row:
        for row in self.rows:
            if row.flow_type == flow_type and row.hops == hops:
                return row
        raise KeyError((flow_type, hops))

    def render(self) -> str:
        body = []
        for row in self.rows:
            body.append(
                [
                    row.flow_type,
                    str(row.hops),
                    f"{row.mean:.2f}",
                    f"{row.p999:.2f}",
                    f"{row.max:.2f}",
                    f"{row.pg_bound:.2f}" if row.pg_bound is not None else "-",
                ]
            )
        table = common.format_table(
            ["type", "path", "mean", "99.9 %ile", "max", "P-G bound"], body
        )
        util = ", ".join(
            f"{name.split('->')[0]}>{u:.1%}"
            for name, u in sorted(self.link_utilizations.items())
        )
        return (
            "Table 3 — unified scheduling algorithm "
            "(delays in packet transmission times)\n"
            f"{table}\n"
            f"forward-link utilization: {util}  (paper: >99% each)\n"
            f"datagram drop rate: {self.datagram_drop_rate:.2%}  (paper: ~0.1%)\n"
            f"duration: {self.duration:.0f}s  seed: {self.seed}"
        )


def _flow_type(name: str) -> str:
    if name in common.GUARANTEED_PEAK_FLOWS:
        return "Peak"
    if name in common.GUARANTEED_AVERAGE_FLOWS:
        return "Average"
    if name in common.PREDICTED_HIGH_FLOWS:
        return "High"
    return "Low"


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    tcp_max_cwnd: float = 64.0,
) -> Table3Result:
    """Reproduce Table 3 end to end (signaling included)."""
    sim = Simulator()
    streams = RandomStreams(seed=seed)

    def factory(name, link):
        return UnifiedScheduler(
            UnifiedConfig(
                capacity_bps=link.rate_bps,
                num_predicted_classes=len(CLASS_BOUNDS_SECONDS),
            )
        )

    # Duplex chain: TCP needs a reverse path for ACKs.
    net = paper_figure1_topology(
        sim,
        factory,
        rate_bps=common.LINK_RATE_BPS,
        buffer_packets=common.BUFFER_PACKETS,
        duplex=True,
    )

    # --- measurement + admission + signaling --------------------------
    admission = AdmissionController(
        AdmissionConfig(
            realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS_SECONDS
        )
    )
    for link_name, port in net.ports.items():
        admission.attach_measurement(
            link_name, SwitchMeasurement(port, MeasurementConfig())
        )
    signaling = SignalingAgent(net, admission)

    placements = {p.name: p for p in common.figure1_flow_placements()}
    class_of: Dict[str, ServiceClass] = {}
    priority_of: Dict[str, int] = {}

    # Establish guaranteed flows first (their reservations make later
    # admission checks conservative), then predicted flows.
    for name in common.GUARANTEED_PEAK_FLOWS + common.GUARANTEED_AVERAGE_FLOWS:
        placement = placements[name]
        rate = (
            PEAK_CLOCK_BPS if name in common.GUARANTEED_PEAK_FLOWS else AVG_CLOCK_BPS
        )
        signaling.establish(
            FlowSpec(
                flow_id=name,
                source=placement.source_host,
                destination=placement.dest_host,
                spec=GuaranteedServiceSpec(clock_rate_bps=rate),
            )
        )
        class_of[name] = ServiceClass.GUARANTEED
    for name in common.PREDICTED_HIGH_FLOWS + common.PREDICTED_LOW_FLOWS:
        placement = placements[name]
        per_switch = (
            CLASS_BOUNDS_SECONDS[0]
            if name in common.PREDICTED_HIGH_FLOWS
            else CLASS_BOUNDS_SECONDS[1]
        )
        grant = signaling.establish(
            FlowSpec(
                flow_id=name,
                source=placement.source_host,
                destination=placement.dest_host,
                spec=PredictedServiceSpec(
                    token_rate_bps=common.AVERAGE_RATE_PPS * common.PACKET_BITS,
                    bucket_depth_bits=common.BUCKET_PACKETS * common.PACKET_BITS,
                    target_delay_seconds=per_switch * placement.hops,
                    target_loss_rate=0.01,
                ),
            )
        )
        class_of[name] = ServiceClass.PREDICTED
        priority_of[name] = grant.priority_class

    # --- traffic -------------------------------------------------------
    sinks = common.attach_paper_flows(
        sim,
        net,
        streams,
        list(placements.values()),
        warmup,
        priority_of=priority_of,
        class_of=class_of,
    )

    tcp_config = TcpConfig(max_cwnd=tcp_max_cwnd)
    tcps = {
        "tcp-1": TcpConnection(
            sim, net.hosts["Host-1"], net.hosts["Host-3"], "tcp-1", tcp_config
        ),
        "tcp-2": TcpConnection(
            sim, net.hosts["Host-3"], net.hosts["Host-5"], "tcp-2", tcp_config
        ),
    }

    # --- accounting ------------------------------------------------------
    datagram_dropped = 0
    realtime_bits: Dict[str, int] = {}
    total_bits: Dict[str, int] = {}

    def make_listeners(link_name: str):
        realtime_bits[link_name] = 0
        total_bits[link_name] = 0

        def on_depart(packet: Packet, now: float, wait: float) -> None:
            total_bits[link_name] += packet.size_bits
            if packet.service_class.is_realtime:
                realtime_bits[link_name] += packet.size_bits

        def on_drop(packet: Packet, now: float) -> None:
            nonlocal datagram_dropped
            if packet.service_class is ServiceClass.DATAGRAM:
                datagram_dropped += 1

        return on_depart, on_drop

    forward_links = [f"S-{i}->S-{i + 1}" for i in range(1, 5)]
    for link_name in net.ports:
        on_depart, on_drop = make_listeners(link_name)
        net.ports[link_name].on_depart.append(on_depart)
        net.ports[link_name].on_drop.append(on_drop)

    sim.run(until=duration)

    # --- results ---------------------------------------------------------
    unit = common.TX_TIME_SECONDS
    rows = []
    all_max: Dict[str, float] = {}
    pg_by_flow: Dict[str, float] = {}
    for name, placement in placements.items():
        sink = sinks[name]
        if sink.recorded:
            all_max[name] = sink.max_queueing(unit)
        flow_type = _flow_type(name)
        if flow_type == "Peak":
            pg_by_flow[name] = (
                parekh_gallager_paper_bound(
                    common.PACKET_BITS, PEAK_CLOCK_BPS, common.PACKET_BITS,
                    placement.hops,
                )
                / unit
            )
        elif flow_type == "Average":
            pg_by_flow[name] = (
                parekh_gallager_paper_bound(
                    common.BUCKET_PACKETS * common.PACKET_BITS,
                    AVG_CLOCK_BPS,
                    common.PACKET_BITS,
                    placement.hops,
                )
                / unit
            )
    for flow_type, flow, hops in common.TABLE3_SAMPLES:
        sink = sinks[flow]
        rows.append(
            Table3Row(
                flow_type=flow_type,
                flow=flow,
                hops=hops,
                mean=sink.mean_queueing(unit),
                p999=sink.percentile_queueing(99.9, unit),
                max=sink.max_queueing(unit),
                pg_bound=pg_by_flow.get(flow),
            )
        )
    datagram_sent = sum(t.segments_sent for t in tcps.values()) + sum(
        t.acks_sent for t in tcps.values()
    )
    return Table3Result(
        rows=rows,
        all_max_by_flow=all_max,
        pg_bound_by_flow=pg_by_flow,
        link_utilizations={
            name: net.links[name].utilization() for name in forward_links
        },
        realtime_fraction={
            name: (realtime_bits[name] / total_bits[name] if total_bits[name] else 0.0)
            for name in forward_links
        },
        datagram_sent=datagram_sent,
        datagram_dropped=datagram_dropped,
        tcp_goodput_bps={
            name: tcp.goodput_bps(duration) for name, tcp in tcps.items()
        },
        duration=duration,
        seed=seed,
    )
