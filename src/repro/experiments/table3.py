"""Table 3: the unified scheduling algorithm with mixed commitments.

The Figure-1 chain again, but now the 22 real-time flows split into
service classes and two TCP connections supply datagram load:

* 3 Guaranteed-Peak flows — clock rate = peak generation rate (2A =
  170 pkt/s -> 170 kbit/s),
* 2 Guaranteed-Average flows — clock rate = average rate (85 kbit/s),
* 7 Predicted-High and 10 Predicted-Low flows (two priority classes),
* 2 TCP connections (Host-1->Host-3 and Host-3->Host-5), so every link
  carries exactly: 2 G-Peak + 1 G-Avg + 3 P-High + 4 P-Low + 1 datagram
  connection — the paper's per-link census.

Flows are established through the real signaling/admission machinery
(guaranteed clock rates installed in the per-port unified schedulers;
predicted flows assigned priority classes from their (D, L) requests with
the token-bucket conformance check installed at their first switch).  The
whole run — commitments, TCP load, per-link accounting — is one
declarative :class:`repro.scenario.ScenarioSpec`; the spec's
``establish_order`` encodes the paper's discipline of reserving
guaranteed flows before admitting predicted ones.

Paper's sample results (delay in transmission times):

    Guaranteed                                Predicted
    type  path mean  99.9   max    P-G bound  type path mean  99.9   max
    Peak  4    8.07  14.41  15.99  23.53      High 4    3.06  8.20  11.13
    Peak  2    2.91  8.12   8.79   11.76      High 2    1.60  5.83  7.48
    Avg   3    56.44 270.13 296.23 611.76     Low  3    19.22 104.83 148.7
    Avg   1    36.27 206.75 247.24 588.24     Low  1    7.43  79.57 108.56

Shape criteria: every guaranteed max delay < its P-G bound; Peak delays
<< Average delays; High delays << Low delays; total utilization > 95 %
(paper: >99 %) with ~83.5 % real-time; datagram drop rate small (~0.1 %).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.bounds import parekh_gallager_paper_bound
from repro.experiments import common
from repro.scenario import (
    registry,
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRunner,
    ScenarioSpec,
)

PEAK_CLOCK_BPS = 2 * common.AVERAGE_RATE_PPS * common.PACKET_BITS  # 170 kbit/s
AVG_CLOCK_BPS = common.AVERAGE_RATE_PPS * common.PACKET_BITS  # 85 kbit/s
# Per-switch predicted class bounds D_i ("widely spaced"); D_0 is sized so
# the paper's declared bucket (50 packets) passes criterion (2) on a link
# already carrying the full guaranteed reservation: b < D_0 * (mu - 425k - r).
CLASS_BOUNDS_SECONDS = (0.15, 1.5)

PAPER_VALUES = {
    ("Peak", 4): {"mean": 8.07, "p999": 14.41, "max": 15.99, "pg": 23.53},
    ("Peak", 2): {"mean": 2.91, "p999": 8.12, "max": 8.79, "pg": 11.76},
    ("Average", 3): {"mean": 56.44, "p999": 270.13, "max": 296.23, "pg": 611.76},
    ("Average", 1): {"mean": 36.27, "p999": 206.75, "max": 247.24, "pg": 588.24},
    ("High", 4): {"mean": 3.06, "p999": 8.20, "max": 11.13},
    ("High", 2): {"mean": 1.60, "p999": 5.83, "max": 7.48},
    ("Low", 3): {"mean": 19.22, "p999": 104.83, "max": 148.7},
    ("Low", 1): {"mean": 7.43, "p999": 79.57, "max": 108.56},
}

# Guaranteed first (reservations make later admission checks conservative),
# then predicted — the order the legacy implementation established in.
ESTABLISH_ORDER = (
    common.GUARANTEED_PEAK_FLOWS
    + common.GUARANTEED_AVERAGE_FLOWS
    + common.PREDICTED_HIGH_FLOWS
    + common.PREDICTED_LOW_FLOWS
)


@dataclasses.dataclass
class Table3Row:
    flow_type: str  # Peak / Average / High / Low
    flow: str
    hops: int
    mean: float
    p999: float
    max: float
    pg_bound: Optional[float]  # guaranteed flows only


@dataclasses.dataclass
class Table3Result:
    rows: List[Table3Row]
    all_max_by_flow: Dict[str, float]
    pg_bound_by_flow: Dict[str, float]
    link_utilizations: Dict[str, float]
    realtime_fraction: Dict[str, float]
    datagram_sent: int
    datagram_dropped: int
    tcp_goodput_bps: Dict[str, float]
    duration: float
    seed: int
    scenario: Optional[ScenarioResult] = None

    @property
    def datagram_drop_rate(self) -> float:
        return self.datagram_dropped / self.datagram_sent if self.datagram_sent else 0.0

    def row(self, flow_type: str, hops: int) -> Table3Row:
        for row in self.rows:
            if row.flow_type == flow_type and row.hops == hops:
                return row
        raise KeyError((flow_type, hops))

    def render(self) -> str:
        body = []
        for row in self.rows:
            body.append(
                [
                    row.flow_type,
                    str(row.hops),
                    f"{row.mean:.2f}",
                    f"{row.p999:.2f}",
                    f"{row.max:.2f}",
                    f"{row.pg_bound:.2f}" if row.pg_bound is not None else "-",
                ]
            )
        table = common.format_table(
            ["type", "path", "mean", "99.9 %ile", "max", "P-G bound"], body
        )
        util = ", ".join(
            f"{name.split('->')[0]}>{u:.1%}"
            for name, u in sorted(self.link_utilizations.items())
        )
        return (
            "Table 3 — unified scheduling algorithm "
            "(delays in packet transmission times)\n"
            f"{table}\n"
            f"forward-link utilization: {util}  (paper: >99% each)\n"
            f"datagram drop rate: {self.datagram_drop_rate:.2%}  (paper: ~0.1%)\n"
            f"duration: {self.duration:.0f}s  seed: {self.seed}"
        )


def _flow_type(name: str) -> str:
    if name in common.GUARANTEED_PEAK_FLOWS:
        return "Peak"
    if name in common.GUARANTEED_AVERAGE_FLOWS:
        return "Average"
    if name in common.PREDICTED_HIGH_FLOWS:
        return "High"
    return "Low"


def _request_for(name: str, hops: int):
    """The Table-3 service request of one Figure-1 flow."""
    if name in common.GUARANTEED_PEAK_FLOWS:
        return GuaranteedRequest(clock_rate_bps=PEAK_CLOCK_BPS)
    if name in common.GUARANTEED_AVERAGE_FLOWS:
        return GuaranteedRequest(clock_rate_bps=AVG_CLOCK_BPS)
    per_switch = (
        CLASS_BOUNDS_SECONDS[0]
        if name in common.PREDICTED_HIGH_FLOWS
        else CLASS_BOUNDS_SECONDS[1]
    )
    return PredictedRequest(
        token_rate_bps=common.AVERAGE_RATE_PPS * common.PACKET_BITS,
        bucket_depth_bits=common.BUCKET_PACKETS * common.PACKET_BITS,
        target_delay_seconds=per_switch * hops,
        target_loss_rate=0.01,
    )


def scenario_spec(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    tcp_max_cwnd: float = 64.0,
) -> ScenarioSpec:
    """Table 3 end to end — commitments, TCP load, accounting — as a spec."""
    builder = (
        ScenarioBuilder("table3")
        # Duplex chain: TCP needs a reverse path for ACKs.
        .paper_chain(duplex=True)
        .discipline(
            DisciplineSpec.unified(
                name="CSZ", num_predicted_classes=len(CLASS_BOUNDS_SECONDS)
            )
        )
        .admission(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS_SECONDS)
        .establish_order(*ESTABLISH_ORDER)
        .tcp("tcp-1", "Host-1", "Host-3", max_cwnd=tcp_max_cwnd)
        .tcp("tcp-2", "Host-3", "Host-5", max_cwnd=tcp_max_cwnd)
        .link_accounting()
        .duration(duration)
        .seed(seed)
        .warmup(warmup)
    )
    for placement in common.figure1_flow_placements():
        builder.flow(
            FlowSpec(
                name=placement.name,
                source_host=placement.source_host,
                dest_host=placement.dest_host,
                request=_request_for(placement.name, placement.hops),
                hops=placement.hops,
            )
        )
    return builder.build()


def run(
    duration: float = common.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = common.DEFAULT_WARMUP_SECONDS,
    tcp_max_cwnd: float = 64.0,
) -> Table3Result:
    """Reproduce Table 3 end to end (signaling included)."""
    spec = scenario_spec(duration, seed, warmup, tcp_max_cwnd)
    result = ScenarioRunner(spec).run()
    run_result = result.runs[0]

    unit = common.TX_TIME_SECONDS
    placements = {p.name: p for p in common.figure1_flow_placements()}
    all_max: Dict[str, float] = {}
    pg_by_flow: Dict[str, float] = {}
    for name, placement in placements.items():
        stats = run_result.flow(name)
        if stats.recorded:
            all_max[name] = stats.max_in(unit)
        flow_type = _flow_type(name)
        if flow_type == "Peak":
            pg_by_flow[name] = (
                parekh_gallager_paper_bound(
                    common.PACKET_BITS, PEAK_CLOCK_BPS, common.PACKET_BITS,
                    placement.hops,
                )
                / unit
            )
        elif flow_type == "Average":
            pg_by_flow[name] = (
                parekh_gallager_paper_bound(
                    common.BUCKET_PACKETS * common.PACKET_BITS,
                    AVG_CLOCK_BPS,
                    common.PACKET_BITS,
                    placement.hops,
                )
                / unit
            )
    rows = []
    for flow_type, flow, hops in common.TABLE3_SAMPLES:
        stats = run_result.flow(flow)
        rows.append(
            Table3Row(
                flow_type=flow_type,
                flow=flow,
                hops=hops,
                mean=stats.mean_in(unit),
                p999=stats.percentile_in(99.9, unit),
                max=stats.max_in(unit),
                pg_bound=pg_by_flow.get(flow),
            )
        )
    forward_links = [f"S-{i}->S-{i + 1}" for i in range(1, 5)]
    realtime = dict(run_result.realtime_fraction)
    return Table3Result(
        rows=rows,
        all_max_by_flow=all_max,
        pg_bound_by_flow=pg_by_flow,
        link_utilizations={
            name: run_result.utilization(name) for name in forward_links
        },
        realtime_fraction={name: realtime[name] for name in forward_links},
        datagram_sent=run_result.datagram_sent,
        datagram_dropped=run_result.datagram_dropped,
        tcp_goodput_bps={t.name: t.goodput_bps for t in run_result.tcp_stats},
        duration=duration,
        seed=seed,
        scenario=result,
    )

registry.register("table3", scenario_spec)
