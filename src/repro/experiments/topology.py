"""Figure 1: the experiment network itself.

Figure 1 is the paper's only figure — the 5-switch chain used by Tables 2
and 3.  "Reproducing" it means building the network programmatically,
verifying its structural invariants (10 flows per inter-switch link; the
12/4/4/2 path-length census), and rendering it.  The checks here are also
what guards the Table 2/3 workloads against placement regressions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.experiments import common
from repro.net.topology import (
    FIGURE1_HOSTS,
    FIGURE1_SWITCHES,
    figure1_ascii,
    paper_figure1_topology,
)
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator


@dataclasses.dataclass
class TopologyReport:
    switches: List[str]
    hosts: List[str]
    links: List[str]
    flows_per_link: Dict[str, int]
    flows_per_path_length: Dict[int, int]
    ascii_art: str

    def render(self) -> str:
        census = ", ".join(
            f"{link}: {count}" for link, count in sorted(self.flows_per_link.items())
        )
        lengths = ", ".join(
            f"{hops}-hop: {count}"
            for hops, count in sorted(self.flows_per_path_length.items())
        )
        return (
            "Figure 1 — network topology used for Tables 2 and 3\n"
            f"{self.ascii_art}\n"
            f"switches: {', '.join(self.switches)}\n"
            f"hosts:    {', '.join(self.hosts)}\n"
            f"flows per inter-switch link: {census}  (paper: 10 each)\n"
            f"flows per path length: {lengths}  (paper: 12/4/4/2)"
        )


def build_report() -> TopologyReport:
    """Construct the Figure-1 network and verify the workload layout."""
    sim = Simulator()
    net = paper_figure1_topology(sim, lambda name, link: FifoScheduler())
    placements = common.figure1_flow_placements()
    flows_per_link: Dict[str, int] = {name: 0 for name in net.links}
    for placement in placements:
        for link in net.links_on_path(placement.source_host, placement.dest_host):
            flows_per_link[link.name] += 1
    flows_per_path_length: Dict[int, int] = {}
    for placement in placements:
        flows_per_path_length[placement.hops] = (
            flows_per_path_length.get(placement.hops, 0) + 1
        )
    return TopologyReport(
        switches=list(FIGURE1_SWITCHES),
        hosts=list(FIGURE1_HOSTS),
        links=sorted(net.links),
        flows_per_link=flows_per_link,
        flows_per_path_length=flows_per_path_length,
        ascii_art=figure1_ascii(),
    )


def run() -> TopologyReport:
    """Alias so every experiment module exposes ``run()``."""
    return build_report()
