"""Figure 1: the experiment network itself.

Figure 1 is the paper's only figure — the 5-switch chain used by Tables 2
and 3.  "Reproducing" it means building the network programmatically from
its :class:`~repro.scenario.TopologySpec`, verifying its structural
invariants (10 flows per inter-switch link; the 12/4/4/2 path-length
census), and rendering it.  The checks here are also what guards the
Table 2/3 workloads against placement regressions.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.net.topology import FIGURE1_HOSTS, FIGURE1_SWITCHES, figure1_ascii
from repro.scenario import DisciplineSpec, ScenarioBuilder, ScenarioRunner


@dataclasses.dataclass
class TopologyReport:
    switches: List[str]
    hosts: List[str]
    links: List[str]
    flows_per_link: Dict[str, int]
    flows_per_path_length: Dict[int, int]
    ascii_art: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        census = ", ".join(
            f"{link}: {count}" for link, count in sorted(self.flows_per_link.items())
        )
        lengths = ", ".join(
            f"{hops}-hop: {count}"
            for hops, count in sorted(self.flows_per_path_length.items())
        )
        return (
            "Figure 1 — network topology used for Tables 2 and 3\n"
            f"{self.ascii_art}\n"
            f"switches: {', '.join(self.switches)}\n"
            f"hosts:    {', '.join(self.hosts)}\n"
            f"flows per inter-switch link: {census}  (paper: 10 each)\n"
            f"flows per path length: {lengths}  (paper: 12/4/4/2)"
        )


def build_report() -> TopologyReport:
    """Construct the Figure-1 network and verify the workload layout."""
    spec = (
        ScenarioBuilder("fig1")
        .paper_chain()
        .figure1_flows()
        .discipline(DisciplineSpec.fifo())
        .duration(1.0)
        .build()
    )
    context = ScenarioRunner(spec).build()
    net = context.net
    flows_per_link: Dict[str, int] = {name: 0 for name in net.links}
    for flow in spec.flows:
        for link in net.links_on_path(flow.source_host, flow.dest_host):
            flows_per_link[link.name] += 1
    flows_per_path_length: Dict[int, int] = {}
    for flow in spec.flows:
        flows_per_path_length[flow.hops] = (
            flows_per_path_length.get(flow.hops, 0) + 1
        )
    return TopologyReport(
        switches=list(FIGURE1_SWITCHES),
        hosts=list(FIGURE1_HOSTS),
        links=sorted(net.links),
        flows_per_link=flows_per_link,
        flows_per_path_length=flows_per_path_length,
        ascii_art=figure1_ascii(),
    )


def run() -> TopologyReport:
    """Alias so every experiment module exposes ``run()``."""
    return build_report()
