"""Figure 1 — and structural reports for any declarative topology.

Figure 1 is the paper's only figure — the 5-switch chain used by Tables 2
and 3.  "Reproducing" it means building the network programmatically from
its :class:`~repro.scenario.TopologySpec`, verifying its structural
invariants (10 flows per inter-switch link; the 12/4/4/2 path-length
census), and rendering it.  The checks here are also what guards the
Table 2/3 workloads against placement regressions.

Since the topology layer went graph-native, the same census machinery
works for *any* spec: :func:`graph_report` takes an arbitrary
:class:`~repro.scenario.ScenarioSpec` and reports its per-link flow
census and path-length histogram over whatever graph it declares.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.net.topology import FIGURE1_HOSTS, FIGURE1_SWITCHES, figure1_ascii
from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioRunner,
    ScenarioSpec,
)


@dataclasses.dataclass
class TopologyReport:
    switches: List[str]
    hosts: List[str]
    links: List[str]
    flows_per_link: Dict[str, int]
    flows_per_path_length: Dict[int, int]
    ascii_art: str

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        census = ", ".join(
            f"{link}: {count}" for link, count in sorted(self.flows_per_link.items())
        )
        lengths = ", ".join(
            f"{hops}-hop: {count}"
            for hops, count in sorted(self.flows_per_path_length.items())
        )
        return (
            "Figure 1 — network topology used for Tables 2 and 3\n"
            f"{self.ascii_art}\n"
            f"switches: {', '.join(self.switches)}\n"
            f"hosts:    {', '.join(self.hosts)}\n"
            f"flows per inter-switch link: {census}  (paper: 10 each)\n"
            f"flows per path length: {lengths}  (paper: 12/4/4/2)"
        )


def graph_report(spec: ScenarioSpec, ascii_art: str = "") -> TopologyReport:
    """Structural census of any scenario: who shares which link.

    Builds the spec's first discipline (no traffic runs) and walks every
    flow's routed path — so the census reflects the live routing tables,
    not just the declared placements.  TCP connections count on both
    directions of their path (segments one way, ACKs the other).
    """
    context = ScenarioRunner(spec).build()
    net = context.net
    flows_per_link: Dict[str, int] = {name: 0 for name in net.links}
    flows_per_path_length: Dict[int, int] = {}
    for flow in spec.flows:
        names = net.link_names_on_path(flow.source_host, flow.dest_host)
        for name in names:
            flows_per_link[name] += 1
        hops = flow.hops if flow.hops is not None else len(names)
        flows_per_path_length[hops] = flows_per_path_length.get(hops, 0) + 1
    for tcp in spec.tcps:
        for src, dst in (
            (tcp.source_host, tcp.dest_host),
            (tcp.dest_host, tcp.source_host),
        ):
            for name in net.link_names_on_path(src, dst):
                flows_per_link[name] += 1
    topology = spec.topology
    return TopologyReport(
        switches=list(topology.nodes),
        hosts=list(topology.host_names),
        links=sorted(net.links),
        flows_per_link=flows_per_link,
        flows_per_path_length=flows_per_path_length,
        ascii_art=ascii_art,
    )


def build_report() -> TopologyReport:
    """Construct the Figure-1 network and verify the workload layout."""
    spec = (
        ScenarioBuilder("fig1")
        .paper_chain()
        .figure1_flows()
        .discipline(DisciplineSpec.fifo())
        .duration(1.0)
        .build()
    )
    report = graph_report(spec, ascii_art=figure1_ascii())
    # The named constructor must keep compiling to the paper's network.
    if report.switches != list(FIGURE1_SWITCHES) or report.hosts != list(
        FIGURE1_HOSTS
    ):
        raise ValueError(
            "figure1 topology no longer compiles to the paper's network: "
            f"switches={report.switches} hosts={report.hosts}"
        )
    return report


def run() -> TopologyReport:
    """Alias so every experiment module exposes ``run()``."""
    return build_report()
