"""Flow-level (fluid) co-simulator for CSZ questions at 10k–1M flows.

See :mod:`repro.fluid.model` for the model and its validity envelope,
and :mod:`repro.fluid.engine` for the engine-selection seam the runner
and sweep executor dispatch through.
"""

from repro.fluid.engine import effective_engine, run_fluid_discipline
from repro.fluid.model import FluidOptions, FluidSimulation

__all__ = [
    "FluidOptions",
    "FluidSimulation",
    "effective_engine",
    "run_fluid_discipline",
]
