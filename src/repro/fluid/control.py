"""The fluid engine's control plane: outages compiled to epoch plans.

The packet engine runs its control plane *reactively* — a seeded
:class:`~repro.control.outages.OutageProcess` fires simulator events
into a :class:`~repro.control.controller.LinkStateController`, which
flushes dead ports, recomputes SPF tables, and re-establishes flows.
The fluid engine has no simulator clock, so this module compiles the
same control plane *ahead of time*: the outage schedule is replayed
draw-for-draw (:func:`repro.control.compute_outage_schedule`, off the
same named ``"outage:process"`` stream, so failure schedules pair
across disciplines and engines), every link-state transition becomes an
epoch boundary, and the controller's per-transition behaviour —
reroute, re-admission, accounted teardown — is replayed over the
compiled admission state into a :class:`FluidControlPlan` the backends
execute between epochs.

Semantics, mirroring the packet controller per transition:

* **Reroute.**  Every live flow's path is re-resolved against the new
  link state, exactly as ``LinkStateController._reconverge`` refreshes
  every tracked flow.  Non-ECMP specs resolve through
  :func:`repro.control.spf_from_topology` (unit-cost Dijkstra ==
  build-time BFS, so the moment the last failure heals every path is
  bit-identical to the pre-failure route); ECMP specs resolve through
  :meth:`repro.net.fabric.EcmpPaths.masked` (``masked(frozenset())`` is
  the original chooser, so restores return the exact original ECMP
  paths).
* **Re-admission.**  When a spec carries an ``admission`` block,
  a request-bearing flow that was admitted and whose path moved
  releases its commitments and re-enters admission on the new path, in
  spec order against the live committed vector; a refusal (no path, or
  no headroom) is an *accounted teardown* — the flow stops generating
  from that boundary on, exactly like the packet controller stopping
  the source.  Initially-denied flows already run as datagram and keep
  best-effort semantics.
* **Flush.**  A flow whose current path crosses a newly-failed link
  loses its queued backlog at the boundary: the bits are ledgered as
  per-flow ``failure_drops`` and as packet drops on the failed link —
  the fluid analogue of ``Port.flush_queue`` on a dead port.  (The
  packet engine flushes only the one dead queue; the fluid model keeps
  a single path-attributed backlog, so the whole backlog flushes — a
  documented epoch-boundary approximation inside the cross-engine
  tolerances.)  A torn-down flow's residual backlog flushes the same
  way, so per-flow conservation (arrivals = delivered + backlog +
  buffer drops + failure drops) closes across every outage cycle.
* **No-route.**  While an active flow has no route its arrivals are
  ledgered per flow (``no_route_drops`` in the control summary) and as
  ``failure_drops`` — the partition-edge drops of the packet switches.

Transitions are replayed one at a time (a correlated multi-link outage
reconverges once per link, like repeated ``fail_link`` calls), so the
``outages``/``restores``/``recomputes`` counters and per-flow
:class:`~repro.control.FlowRerouteStats` match the packet controller's
accounting; simultaneous transitions then merge into one time boundary
for the traffic model.  Everything here is pure Python and numpy-free —
the plan is data; the backends in :mod:`repro.fluid.model` and
:mod:`repro.fluid.kernel` execute it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.control import (
    ControlPlaneStats,
    FlowRerouteStats,
    LinkTransition,
    compute_outage_schedule,
    spf_from_topology,
)
from repro.net.routing import RoutingError
from repro.scenario.spec import (
    GuaranteedRequest,
    PredictedRequest,
    ScenarioSpec,
)


@dataclasses.dataclass
class PlanState:
    """One link-state epoch's resolved flow state.

    Interned per ``(down links, torn-down flows)`` pair — path
    resolution is a pure function of the down-set, so revisiting a
    link state (every restore, notably) reuses the existing object,
    and the all-up state reuses the compile-time base paths *by
    identity* (the kernel keys its per-state compiled views off that).

    ``fair``/``weight`` (the discipline classification of each flow at
    its bottleneck on the *current* path) are filled in by the model,
    which owns the classifier.
    """

    down: frozenset
    paths: List[Tuple[int, ...]]
    noroute: Tuple[int, ...]
    inactive: Tuple[int, ...]
    fair: Optional[List[bool]] = None
    weight: Optional[List[float]] = None


@dataclasses.dataclass(frozen=True)
class PlanBoundary:
    """One time boundary of the plan: from ``time`` on the run is in
    ``state``; ``flush`` lists ``(flow, link)`` backlog flushes to apply
    at the boundary (deduplicated, first failed link wins)."""

    time: float
    state: PlanState
    flush: Tuple[Tuple[int, int], ...]


@dataclasses.dataclass
class FluidSegment:
    """A run of contiguous epochs ``[e0, e1)`` sharing one link state.
    ``flush`` applies once, entering the segment."""

    e0: int
    e1: int
    state: PlanState
    flush: Tuple[Tuple[int, int], ...]


class _Record:
    """Mutable per-flow reroute bookkeeping (the compile-time twin of
    the controller's ``_TrackedFlow``)."""

    __slots__ = ("name", "reroutes", "readmissions", "refusals",
                 "torn_down")

    def __init__(self, name: str):
        self.name = name
        self.reroutes = 0
        self.readmissions = 0
        self.refusals = 0
        self.torn_down = False


class FluidControlPlan:
    """A spec's outage schedule compiled into link-state epochs.

    Built once per :class:`~repro.fluid.model.FluidSimulation` via
    :meth:`compile`.  Holds the effective transition schedule, the
    merged time boundaries with their interned states and flush lists,
    and the controller-shaped counters; :meth:`control_stats` combines
    them with the backends' runtime ledgers into the exact
    :class:`~repro.control.ControlPlaneStats` shape the packet engine
    attaches to its results.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        transitions: Tuple[LinkTransition, ...],
        base_state: PlanState,
        boundaries: Tuple[PlanBoundary, ...],
        outages: int,
        restores: int,
        records: List[_Record],
    ):
        self.spec = spec
        self.transitions = transitions
        self.base_state = base_state
        self.boundaries = boundaries
        self.outages = outages
        self.restores = restores
        self.recomputes = outages + restores
        self.records = records
        #: Every distinct state the run visits, base first (handy for
        #: pre-resolving per-state data like the model's weights).
        seen = {id(base_state): base_state}
        for boundary in boundaries:
            seen.setdefault(id(boundary.state), boundary.state)
        self.states: Tuple[PlanState, ...] = tuple(seen.values())

    # ------------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        spec: ScenarioSpec,
        link_names: Sequence[str],
        caps: Sequence[float],
        base_paths: List[Tuple[int, ...]],
        pair_index: Dict[Tuple[str, str], int],
        admitted: Sequence[str],
        committed: Sequence[float],
        rng,
    ) -> "FluidControlPlan":
        """Replay ``spec.outages`` into a plan.

        Args:
            link_names / caps: the compiled link order and rates.
            base_paths: per-flow link-index paths of the all-up state
                (reused by identity for that state).
            pair_index: ``(src, dst) -> link index`` for walk hops, the
                same mapping the model compiled paths through.
            admitted: flow names holding admission commitments.
            committed: per-link committed bits/s after static admission
                (consumed as the re-admission starting point).
            rng: the named ``"outage:process"`` stream, or None for
                explicit-events-only specs.
        """
        out = spec.outages
        duration = float(spec.duration)
        transitions = compute_outage_schedule(
            out, link_names, rng, duration
        )
        builder = _PlanBuilder(
            spec, link_names, caps, base_paths, pair_index,
            frozenset(admitted), list(committed),
        )
        return builder.build(cls, transitions)

    # ------------------------------------------------------------------
    def control_stats(
        self,
        flow_names: Sequence[str],
        no_route_packets: Sequence[float],
        flushed_packets: int,
    ) -> ControlPlaneStats:
        """The packet-shaped control summary: compile-time counters
        plus the backends' runtime no-route/flush ledgers.  Fluid flows
        have no wire to be killed on, so ``wire_killed`` is empty (dead
        in-flight traffic is part of the boundary flush)."""
        no_route = tuple(
            (flow_names[f], count)
            for f in sorted(
                range(len(flow_names)), key=flow_names.__getitem__
            )
            for count in (int(round(no_route_packets[f])),)
            if count
        )
        return ControlPlaneStats(
            outages=self.outages,
            restores=self.restores,
            recomputes=self.recomputes,
            flushed_packets=int(flushed_packets),
            wire_killed=(),
            no_route_drops=no_route,
            flows=tuple(
                FlowRerouteStats(
                    name=record.name,
                    reroutes=record.reroutes,
                    readmissions=record.readmissions,
                    refusals=record.refusals,
                    torn_down=record.torn_down,
                )
                for record in self.records
            ),
        )


class _PlanBuilder:
    """The transition-by-transition replay behind :meth:`compile`."""

    def __init__(
        self,
        spec: ScenarioSpec,
        link_names: Sequence[str],
        caps: Sequence[float],
        base_paths: List[Tuple[int, ...]],
        pair_index: Dict[Tuple[str, str], int],
        admitted: frozenset,
        committed: List[float],
    ):
        self.spec = spec
        self.link_index = {name: i for i, name in enumerate(link_names)}
        self.caps = caps
        self.base_paths = base_paths
        self.pair_index = pair_index
        self.committed = committed
        self.quota = (
            spec.admission.realtime_quota if spec.admission else None
        )
        self.flows = spec.flows
        # Re-admission applies to flows that hold a commitment — the
        # packet analogue of "core_spec and signaling present".  The
        # reserved rate mirrors _admit: clock rate for guaranteed,
        # token rate for predicted.
        self.reserved: Dict[int, float] = {}
        if spec.admission is not None:
            for f, flow in enumerate(self.flows):
                if flow.name not in admitted:
                    continue
                if isinstance(flow.request, GuaranteedRequest):
                    self.reserved[f] = flow.request.clock_rate_bps
                elif isinstance(flow.request, PredictedRequest):
                    self.reserved[f] = flow.request.token_rate_bps
        self._attach = {
            att.host: att.switch
            for att in spec.topology.host_attachments
        }
        self._spf_cache: Dict[frozenset, object] = {}
        self._ecmp_base = None
        if spec.ecmp_seed is not None:
            from repro.net.fabric import EcmpPaths

            self._ecmp_base = EcmpPaths.shared(
                spec.topology, seed=spec.ecmp_seed
            )

    # -- path resolution ----------------------------------------------
    def _links_of(self, nodes: List[str]) -> Tuple[int, ...]:
        pair_get = self.pair_index.get
        return tuple(
            l for l in map(pair_get, zip(nodes, nodes[1:]))
            if l is not None
        )

    def _resolve(self, down: frozenset, f: int) -> Optional[Tuple[int, ...]]:
        """The flow's link path under ``down``, or None (unreachable).
        Pure in ``(down, f)``; the all-up state returns the base path
        object itself."""
        if not down:
            return self.base_paths[f]
        flow = self.flows[f]
        if self._ecmp_base is not None:
            chooser = self._ecmp_base.masked(down)
            try:
                nodes = chooser.path(
                    flow.source_host, flow.dest_host, flow.name
                )
            except RoutingError:
                return None
            return self._links_of(nodes)
        spf = self._spf_cache.get(down)
        if spf is None:
            spf = spf_from_topology(self.spec.topology, down)
            self._spf_cache[down] = spf
        src_sw = self._attach[flow.source_host]
        dst_sw = self._attach[flow.dest_host]
        try:
            mid = spf.path(src_sw, dst_sw)
        except RoutingError:
            return None
        return self._links_of(
            [flow.source_host] + mid + [flow.dest_host]
        )

    # -- replay --------------------------------------------------------
    def build(self, plan_cls, transitions) -> "FluidControlPlan":
        F = len(self.flows)
        records = [_Record(flow.name) for flow in self.flows]
        base_state = PlanState(
            down=frozenset(),
            paths=self.base_paths,
            noroute=(),
            inactive=(),
        )
        state_cache: Dict[Tuple[frozenset, frozenset], PlanState] = {
            (frozenset(), frozenset()): base_state
        }
        down: set = set()
        torn: set = set()
        cur: List[Optional[Tuple[int, ...]]] = list(self.base_paths)
        outages = restores = 0
        raw: List[Tuple[float, PlanState, Dict[int, int]]] = []

        for tr in transitions:
            if tr.up:
                down.discard(tr.link)
                restores += 1
            else:
                down.add(tr.link)
                outages += 1
            dead = self.link_index[tr.link]
            down_key = frozenset(down)
            flush: Dict[int, int] = {}
            for f in range(F):
                if f in torn:
                    continue
                old = cur[f]
                if not tr.up and old and dead in old:
                    flush.setdefault(f, dead)
                new = self._resolve(down_key, f)
                record = records[f]
                if f not in self.reserved:
                    # Best-effort: follows the new tables; count moves.
                    if new is not None and new != old:
                        record.reroutes += 1
                    cur[f] = new
                    continue
                if new == old:
                    continue  # commitment intact on an unchanged path
                # Path moved (or vanished): migrate the reservation.
                rate = self.reserved[f]
                for l in old:
                    self.committed[l] -= rate
                if new is None:
                    record.refusals += 1
                    self._tear(f, records, torn, cur, flush, dead)
                    continue
                quota = self.quota
                fits = quota is None or all(
                    self.committed[l] + rate <= quota * self.caps[l]
                    for l in new
                )
                if fits:
                    for l in new:
                        self.committed[l] += rate
                    record.reroutes += 1
                    record.readmissions += 1
                    cur[f] = new
                else:
                    record.refusals += 1
                    self._tear(f, records, torn, cur, flush, dead)
            state_key = (down_key, frozenset(torn))
            state = state_cache.get(state_key)
            if state is None:
                state = PlanState(
                    down=down_key,
                    paths=[p or () for p in cur],
                    noroute=tuple(
                        f for f in range(F)
                        if cur[f] is None and f not in torn
                    ),
                    inactive=tuple(sorted(torn)),
                )
                state_cache[state_key] = state
            raw.append((tr.time, state, flush))

        # Merge same-time boundaries (correlated failures reconverge
        # per link but cut traffic time once): last state wins, flush
        # lists union with first-failure attribution.
        boundaries: List[PlanBoundary] = []
        for time, state, flush in raw:
            if boundaries and boundaries[-1].time == time:
                prev = boundaries[-1]
                merged = dict(prev.flush)
                for f, l in flush.items():
                    merged.setdefault(f, l)
                boundaries[-1] = PlanBoundary(
                    time, state, tuple(sorted(merged.items()))
                )
            else:
                boundaries.append(
                    PlanBoundary(time, state, tuple(sorted(flush.items())))
                )
        return plan_cls(
            spec=self.spec,
            transitions=transitions,
            base_state=base_state,
            boundaries=tuple(boundaries),
            outages=outages,
            restores=restores,
            records=records,
        )

    def _tear(self, f, records, torn, cur, flush, dead) -> None:
        """Accounted teardown: the flow stops generating and its
        reservation stays released; any residual backlog flushes at
        this boundary (ledgered against the transitioning link)."""
        records[f].torn_down = True
        torn.add(f)
        cur[f] = None
        flush.setdefault(f, dead)
