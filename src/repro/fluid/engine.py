"""Engine selection seam: route a spec to the packet or fluid engine.

The spec carries ``engine="packet"|"fluid"`` and the environment can
override it (``REPRO_ENGINE=fluid``), mirroring the hot-path toggles
(``REPRO_ENGINE_QUEUE``, ``REPRO_BATCHED_LINKS``): the same spec file or
generated scenario can be re-run on the other engine without edits,
which is how the cross-validation goldens and the crossover benchmark
drive both.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.scenario.spec import ENGINE_KINDS, ScenarioSpec

_ENGINE_ENV = "REPRO_ENGINE"


def effective_engine(spec: ScenarioSpec) -> str:
    """The engine this spec will actually run on: the ``REPRO_ENGINE``
    environment override when set, else ``spec.engine``."""
    env = os.environ.get(_ENGINE_ENV, "").strip().lower()
    if env:
        if env not in ENGINE_KINDS:
            raise ValueError(
                f"{_ENGINE_ENV}={env!r} is not one of {ENGINE_KINDS}"
            )
        return env
    return spec.engine


def run_fluid_discipline(spec: ScenarioSpec, options=None):
    """Run ``spec`` (already narrowed to one discipline) on the fluid
    engine and return the packet-shaped
    :class:`~repro.scenario.runner.DisciplineRunResult`."""
    from repro.fluid.model import FluidSimulation

    sim = FluidSimulation(spec, spec.disciplines[0], options=options)
    return sim.run().collect()
