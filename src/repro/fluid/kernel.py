"""Fused multi-epoch fluid kernel: the NumPy hot path without the
per-epoch Python loop.

PR 8's NumPy backend vectorised the *arithmetic* of one epoch but
re-entered the interpreter between epochs: per-epoch list building,
accumulator updates, and the waterfill driver capped the engine at
~3M flow-advances/s regardless of how fast the array math ran.  This
module is the fluid-model analogue of the packet engine's batched link
drain (PR 7): whole stretches of simulated time collapse into one
vectorised step whenever the model can prove the collapsed epochs are
indistinguishable from stepping them one by one.

Three coordinated mechanisms:

* **CSR incidence** (:class:`CsrIncidence`) — the (flow, link) incidence
  is compiled once per run into int32/float64 arrays: flow-major entry
  lists (``ef``/``el``, the bincount currency) plus a link-major
  permutation with row pointers (``lk_entry``/``link_ptr``) so per-link
  per-epoch loads come out of one ``add.reduceat`` instead of a Python
  rebuild per call.  Waterfill, backlog updates, and the accumulators
  all share it.

* **Fused multi-epoch blocks** — the on/off phase grid for a block of
  ``K`` epochs is evaluated as one ``(flows, K)`` array; per-link
  offered load per epoch comes from one reduceat over the link-major
  view.  Every *uncongested* prefix of the block (offered load strictly
  under capacity on every link, entering backlog zero) is accumulated
  in closed form: the waterfill provably assigns every flow its demand,
  queues stay empty, and per-flow served bits equal the per-epoch
  values bit-for-bit — only the accumulator *fold order* changes
  (reassociation round-off, pinned ≤1e-9 by the property grid).  The
  moment any link would saturate, the kernel falls back to the exact
  single-epoch waterfill for that epoch.

* **Steady-state fast-forward** — when every flow is constant-rate
  (duty >= 1: no on/off transitions) the kernel computes one reference
  epoch and, if the backlog vector comes back bit-identical (steady:
  empty and uncongested, or clamped into a stable queue), jumps in
  closed form to the next *boundary*: the warmup crossing (where sample
  recording switches on — the event an elided epoch must not straddle)
  or the first epoch with a different length (the trailing partial
  epoch).  Elided epochs replay the reference epoch's cached deltas, so
  per-flow state and recorded samples are bit-identical to the
  epoch-by-epoch schedule and ``events_processed`` counts every elided
  epoch exactly — the same guarantee discipline as the packet engine's
  ``Simulator.advance_to``.  ``FluidOptions(fast_forward=False)`` or
  ``REPRO_FLUID_FF=0`` disables the jump (the equivalence tests run
  both ways).

Under a compiled control plan (:mod:`repro.fluid.control`) the grid is
grouped into link-state *segments*: each segment swaps in its state's
per-flow path/weight view (cached per interned state, the base view by
identity), flushes dead-path backlog at the boundary, and runs the
same fused machinery within the segment — fast-forward never jumps
across a link-state boundary, and flows with no route (or torn down)
disable the jump for their segment so their sheds are ledgered
epoch-exactly.

The pure-Python backend in :mod:`repro.fluid.model` stays authoritative
and untouched; ``tests/fluid/test_kernel.py`` pins kernel-vs-pure
agreement across generated fabrics, disciplines, and epoch sizes, and
kernel-vs-kernel (fused/fast-forward on vs off) agreement at tighter
tolerance still.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

try:  # optional: C-speed load matrix for the congestion check
    from scipy import sparse as _sparse
except Exception:  # pragma: no cover - scipy is optional
    _sparse = None

#: Entry budget for one fused block: K is sized so the (entries, K)
#: scratch stays around this many float64 cells (~64 MB), shrinking at
#: 1M-flow incidences and growing at small ones.
_BLOCK_ENTRY_BUDGET = 8_000_000
_MAX_BLOCK_EPOCHS = 64


class CsrIncidence:
    """The (flow, link) incidence of one compiled spec, as flat arrays.

    Built once at compile time (``FluidSimulation.__init__``) and shared
    by the waterfill, the fused load check, and every accumulator
    update.  ``ef``/``el`` list the entries flow-major — ``ef[i]`` is
    the flow and ``el[i]`` the link of entry ``i`` — exactly the order
    the pure backend's nested loops visit, so bincounts over them
    accumulate in the same sequence.  ``lk_entry``/``link_ptr`` are the
    link-major permutation: entries of link ``l`` occupy
    ``lk_entry[link_ptr[l]:link_ptr[l+1]]``.
    """

    __slots__ = (
        "num_flows", "num_links", "ef", "el", "flow_ptr",
        "lk_flow", "link_ptr", "nonempty_links", "nonempty_starts",
        "matrix",
    )

    def __init__(self, paths, num_links: int):
        from itertools import chain

        F = len(paths)
        counts = np.fromiter(
            (len(p) for p in paths), dtype=np.int64, count=F
        )
        total = int(counts.sum())
        self.num_flows = F
        self.num_links = num_links
        self.ef = np.repeat(
            np.arange(F, dtype=np.int32), counts
        )
        self.el = np.fromiter(
            chain.from_iterable(paths), dtype=np.int32, count=total
        )
        el = self.el
        self.flow_ptr = np.zeros(F + 1, dtype=np.int64)
        np.cumsum(counts, out=self.flow_ptr[1:])
        order = np.argsort(el, kind="stable")
        self.lk_flow = self.ef[order]
        link_counts = np.bincount(el, minlength=num_links)
        self.link_ptr = np.zeros(num_links + 1, dtype=np.int64)
        np.cumsum(link_counts, out=self.link_ptr[1:])
        # reduceat cannot express empty segments, so the load gather
        # runs over non-empty links only and scatters back.
        self.nonempty_links = np.flatnonzero(link_counts > 0)
        self.nonempty_starts = self.link_ptr[self.nonempty_links]
        # Optional (link x flow) 0/1 sparse matrix: the congestion check
        # only *compares* loads against capacity (with a 2*eps margin
        # that dwarfs summation-order noise), so it may use whichever
        # summation is fastest.  Result accumulators keep reduceat.
        self.matrix = None
        if _sparse is not None and total:
            self.matrix = _sparse.csr_matrix(
                (np.ones(total), (el, self.ef)),
                shape=(num_links, F),
            )

    def link_loads(self, per_flow: np.ndarray) -> np.ndarray:
        """Per-link sums of a per-flow quantity, vectorised over the
        trailing epoch axis: ``per_flow`` is ``(F,)`` or ``(F, K)``;
        the result is ``(L,)`` or ``(L, K)``."""
        gathered = per_flow[self.lk_flow]
        out_shape = (self.num_links,) + per_flow.shape[1:]
        out = np.zeros(out_shape)
        if self.nonempty_starts.size:
            out[self.nonempty_links] = np.add.reduceat(
                gathered, self.nonempty_starts, axis=0
            )
        return out

    def approx_link_loads(self, per_flow: np.ndarray) -> np.ndarray:
        """Per-link sums for *threshold checks only*: summation order is
        unspecified (sparse matmul when scipy is present), accurate to
        float64 round-off — far inside the congestion check's 2*eps
        margin, but not the fold the result accumulators use."""
        if self.matrix is not None:
            return self.matrix @ per_flow
        return self.link_loads(per_flow)


class FluidKernel:
    """One fluid run's compiled hot path.

    Owns preallocated accumulator arrays for the whole run; the
    per-epoch fallback, the fused block path, and the fast-forward jump
    all write into the same arrays, and :meth:`run` writes them back to
    the :class:`~repro.fluid.model.FluidSimulation` in the plain-list
    currency ``collect()`` reads.
    """

    def __init__(self, sim):
        self.sim = sim
        self.opts = sim.options
        csr = sim.incidence
        if csr is None:  # pragma: no cover - numpy run implies incidence
            csr = CsrIncidence(sim.paths, len(sim.caps))
        self.csr = csr
        F = len(sim.flow_names)
        L = len(sim.caps)
        self.F, self.L, self.T = F, L, sim.num_tiers
        self.duration = float(sim.spec.duration)
        self.warmup = float(sim.spec.warmup)

        self.caps = np.asarray(sim.caps)
        self.eps = np.maximum(1e-9 * self.caps, 1e-6)
        self.buffer_bits = np.asarray(sim.buffer_bits)
        self.peak = np.asarray(sim.peak_bps)
        self.duty = np.asarray(sim.duty)
        self.period = np.asarray(sim.period)
        self.inv_period = 1.0 / self.period
        self.phase = np.asarray(sim.phase)
        self.tier = np.asarray(sim.tier, dtype=np.int64)
        self.fair = np.asarray(sim.fair, dtype=bool)
        self.w_static = np.asarray(sim.weight_static)
        self.size_bits = np.asarray(sim.size_bits)
        self.realtime = np.asarray(sim.realtime, dtype=bool)
        self.routed = np.asarray([bool(p) for p in sim.paths], dtype=bool)
        self.first_link = np.asarray(
            [p[0] if p else 0 for p in sim.paths], dtype=np.int64
        )
        self.constant = self.duty >= 1.0
        ef, el = self.csr.ef, self.csr.el
        self.e_tier = self.tier[ef]
        self.e_lt = el * self.T + self.e_tier
        self.e_rt = self.realtime[ef]
        self.tier_members = [
            np.flatnonzero((self.tier == t) & self.routed)
            for t in range(self.T)
        ]
        self.rec_idx = (
            np.flatnonzero(np.asarray(sim.record, dtype=bool))
            if sim.record_samples else np.zeros(0, dtype=np.int64)
        )

        # -- preallocated run accumulators -----------------------------
        self.backlog = np.zeros(F)
        self.generated = np.zeros(F)
        self.delivered = np.zeros(F)
        self.dropped = np.zeros(F)
        self.link_served = np.zeros(L)
        self.link_drops = np.zeros(L)
        self.wait_num = np.zeros(L)
        self.wait_den = np.zeros(L)
        self.link_rt = np.zeros(L)
        # Control-plane ledgers (stay zero on outage-free runs).
        self.fail_dropped = np.zeros(F)
        self.nr_packets = np.zeros(F)
        self.link_fail = np.zeros(L)
        self.flushed = 0.0
        self.rec_delays: List[np.ndarray] = []
        self.rec_weights: List[np.ndarray] = []
        self.events = 0
        self.max_capacity_overuse = 0.0

        # -- epoch grid (precomputed once) -----------------------------
        # Outage-free runs keep the original uniform-grid arithmetic
        # bit-for-bit; a compiled control plan supplies the uniform grid
        # split at every link-state boundary.
        N = sim.num_epochs
        self.num_epochs = N
        if sim.epoch_starts is not None:
            self.t0s = np.asarray(sim.epoch_starts)
            self.t1s = np.asarray(sim.epoch_ends)
        else:
            eps_s = sim.epoch_seconds
            self.t0s = np.arange(N) * eps_s
            self.t1s = np.minimum(self.duration, self.t0s + eps_s)
        self.dts = self.t1s - self.t0s

        # -- link-state views ------------------------------------------
        # The hot path reads csr/routed/fair/... off ``self``; a control
        # plan swaps those attributes per segment (``_set_view``), so
        # the fused block, waterfill, and single-epoch code run
        # unchanged against whichever link state is current.  The base
        # view (empty noroute/inactive) is the compile-time state.
        self.nr_idx = np.zeros(0, dtype=np.int64)
        self.zero_idx = np.zeros(0, dtype=np.int64)
        self._base_view = (
            self.csr, self.routed, self.first_link, self.tier_members,
            self.e_tier, self.e_lt, self.e_rt, self.fair, self.w_static,
            self.nr_idx, self.zero_idx,
        )
        self._views = {}

    # -- control plane: per-state views and boundary flushes -----------
    def _build_view(self, state):
        """Compile one :class:`~repro.fluid.control.PlanState` into the
        attribute tuple ``_set_view`` swaps in: the state's incidence
        (CSR over its paths), routing masks, tier membership, and
        discipline classification, plus the index lists of no-route and
        torn-down flows.  The all-up state reuses the base arrays by
        identity (``state.paths is sim.paths``)."""
        sim = self.sim
        if state.paths is sim.paths:
            return self._base_view
        csr = CsrIncidence(state.paths, self.L)
        routed = np.asarray([bool(p) for p in state.paths], dtype=bool)
        first_link = np.asarray(
            [p[0] if p else 0 for p in state.paths], dtype=np.int64
        )
        e_tier = self.tier[csr.ef]
        e_lt = csr.el * self.T + e_tier
        e_rt = self.realtime[csr.ef]
        tier_members = [
            np.flatnonzero((self.tier == t) & routed)
            for t in range(self.T)
        ]
        return (
            csr, routed, first_link, tier_members, e_tier, e_lt, e_rt,
            np.asarray(state.fair, dtype=bool),
            np.asarray(state.weight),
            np.asarray(state.noroute, dtype=np.int64),
            np.asarray(state.inactive, dtype=np.int64),
        )

    def _set_view(self, state) -> None:
        view = self._views.get(id(state))
        if view is None:
            view = self._build_view(state)
            self._views[id(state)] = view
        (self.csr, self.routed, self.first_link, self.tier_members,
         self.e_tier, self.e_lt, self.e_rt, self.fair, self.w_static,
         self.nr_idx, self.zero_idx) = view

    def _apply_flush(self, flush) -> None:
        """Boundary flush: drop the listed flows' backlog, ledgered per
        flow (failure drops) and per link (flushed packets) — the fluid
        twin of ``Port.flush_queue`` on a dead port."""
        for f, l in flush:
            bits = float(self.backlog[f])
            if bits > 0.0:
                self.fail_dropped[f] += bits
                packets = bits / float(self.size_bits[f])
                self.link_fail[l] += packets
                self.flushed += packets
                self.backlog[f] = 0.0

    def _ledger_noroute(self, shed, k0: int, k1: int) -> None:
        """Account epochs ``[k0, k1)`` of a block's no-route arrivals
        (``shed``, rows = ``nr_idx``): the source keeps generating, the
        network drops at the first hop.  Called exactly once per
        consumed epoch range, so block re-entry never double-counts."""
        if shed is None:
            return
        total = shed[:, k0:k1].sum(axis=1)
        idx = self.nr_idx
        self.generated[idx] += total
        self.fail_dropped[idx] += total
        self.nr_packets[idx] += total / self.size_bits[idx]

    # ------------------------------------------------------------------
    def _block_size(self) -> int:
        fuse = int(getattr(self.opts, "fuse_epochs", 0) or 0)
        if fuse > 0:
            return fuse
        entries = max(int(self.csr.ef.size), self.F, 1)
        return int(
            np.clip(_BLOCK_ENTRY_BUDGET // entries, 1, _MAX_BLOCK_EPOCHS)
        )

    def _on_block(self, e0: int, e1: int) -> np.ndarray:
        """Closed-form on-seconds per (flow, epoch) for epochs
        ``[e0, e1)`` — the whole phase grid in one broadcast.

        Constant-rate flows (duty >= 1) are pinned to exactly ``dt``,
        matching the pure backend's early return bit-for-bit (the
        trigonometric form only differs in the last ulp, but that ulp
        is what lets fast-forward treat their demand as constant).
        """
        t0 = self.t0s[e0:e1]
        t1 = self.t1s[e0:e1]
        dt = self.dts[e0:e1]
        duty = self.duty[:, None]
        # In-place evaluation of the pure backend's measure():
        #   on = (duty*floor(b) + min(b - floor(b), duty))
        #      - (duty*floor(a) + min(a - floor(a), duty)), then *period;
        # every step below keeps that association (commuted adds and
        # multiplies only), so the values match the naive form bitwise
        # and are identical per column for any block partition.
        a = np.multiply.outer(self.inv_period, t0)
        a += self.phase[:, None]
        b = np.multiply.outer(self.inv_period, t1)
        b += self.phase[:, None]
        fa = np.floor(a)
        fb = np.floor(b)
        a -= fa
        np.minimum(a, duty, out=a)
        b -= fb
        np.minimum(b, duty, out=b)
        fa *= duty
        fb *= duty
        a += fa
        b += fb
        b -= a
        b *= self.period[:, None]
        np.minimum(b, dt[None, :], out=b)
        b[self.constant] = dt[None, :]
        return b

    # ------------------------------------------------------------------
    def run(self) -> None:
        sim = self.sim
        self._fast_forward = bool(getattr(self.opts, "fast_forward", True))
        self._all_constant = bool(self.constant.all()) and self.F > 0
        self._block = self._block_size()
        if sim.segments is None:
            self._run_span(0, self.num_epochs)
        else:
            for seg in sim.segments:
                self._apply_flush(seg.flush)
                if seg.e1 > seg.e0:
                    self._set_view(seg.state)
                    self._run_span(seg.e0, seg.e1)
        self._writeback()

    def _run_span(self, e0: int, end: int) -> None:
        """Advance epochs ``[e0, end)`` under the current view.  The
        span boundary is a hard wall for the fused paths: blocks are
        clipped to it and fast-forward never jumps across it (the link
        state changes there).  Fast-forward additionally requires a
        state with no shed flows — a no-route flow's per-epoch ledger
        has no replay form, and those stretches are short."""
        ff = (
            self._all_constant and self._fast_forward
            and not self.nr_idx.size and not self.zero_idx.size
        )
        e = e0
        while e < end:
            if self.dts[e] <= 0:
                break
            if ff:
                deltas = self._single_epoch(
                    e, self.peak * self.dts[e], capture=True
                )
                e += 1
                if deltas is not None:
                    boundary = self._next_boundary(e, end)
                    if boundary > e:
                        self._replay(deltas, e, boundary)
                        e = boundary
                continue
            e = self._advance_block(e, min(self._block, end - e))

    # -- fused block path ----------------------------------------------
    def _advance_block(self, e0: int, count: int) -> int:
        """Advance epochs ``[e0, e0+count)``; returns the next epoch.

        The uncongested prefix (entering backlog zero, offered load
        strictly under capacity everywhere) is accumulated in closed
        form; the first epoch that breaks either condition runs through
        the exact single-epoch waterfill.
        """
        e1 = e0 + count
        arrival = self.peak[:, None] * self._on_block(e0, e1)
        # Shed flows: no-route arrivals are set aside (ledgered per
        # consumed epoch below) and torn-down flows generate nothing;
        # both then carry zero demand through the block.
        shed = None
        if self.nr_idx.size:
            shed = arrival[self.nr_idx].copy()
            arrival[self.nr_idx] = 0.0
        if self.zero_idx.size:
            arrival[self.zero_idx] = 0.0
        if self.backlog.any():
            # A queued flow couples epochs; serve this epoch exactly
            # and re-enter with whatever the block has left.
            self._ledger_noroute(shed, 0, 1)
            self._single_epoch(e0, arrival[:, 0])
            return e0 + 1
        demand = arrival / self.dts[None, e0:e1]
        loads = self.csr.approx_link_loads(demand)
        congested = np.any(
            loads > (self.caps - 2.0 * self.eps)[:, None], axis=0
        )
        fused = int(np.argmax(congested)) if congested.any() else count
        if fused:
            self._ledger_noroute(shed, 0, fused)
            self._accumulate_uncongested(e0, e0 + fused, arrival, demand)
        if fused < count:
            self._ledger_noroute(shed, fused, fused + 1)
            self._single_epoch(e0 + fused, arrival[:, fused])
            return e0 + fused + 1
        return e1

    def _accumulate_uncongested(
        self, e0: int, e1: int, arrival: np.ndarray, demand: np.ndarray
    ) -> None:
        """Closed-form accumulation of uncongested epochs ``[e0, e1)``:
        every flow is served exactly its demand, queues stay empty,
        delays are zero.  Per-flow served bits per epoch equal the
        single-epoch values bit-for-bit (``demand * dt`` with zero
        backlog); only the accumulator fold order differs."""
        K = e1 - e0
        arrival = arrival[:, :K]
        served = demand[:, :K] * self.dts[None, e0:e1]
        arrival_sum = arrival.sum(axis=1)
        served_sum = served.sum(axis=1)
        self.generated += arrival_sum
        self.delivered += served_sum
        link_sum = self.csr.link_loads(served_sum)
        self.link_served += link_sum
        self.wait_den += link_sum
        rt = self.e_rt
        self.link_rt += np.bincount(
            self.csr.el[rt], weights=served_sum[self.csr.ef[rt]],
            minlength=self.L,
        )
        if self.rec_idx.size:
            recordable = self.t0s[e0:e1] >= self.warmup
            if recordable.any():
                w = served[self.rec_idx][:, recordable] / (
                    self.size_bits[self.rec_idx, None]
                )
                zeros = np.zeros(self.rec_idx.size)
                for k in range(w.shape[1]):
                    self.rec_delays.append(zeros)
                    self.rec_weights.append(w[:, k])
        self.events += self.F * K

    # -- exact single-epoch fallback -------------------------------------
    def _single_epoch(
        self, e: int, arrival: np.ndarray, capture: bool = False
    ) -> Optional[dict]:
        """One epoch through the full waterfill — the authoritative
        schedule the fused paths must be indistinguishable from.

        With ``capture=True`` returns the epoch's deltas when the
        backlog vector is bit-identical before and after (a steady
        state), for :meth:`_replay` to apply verbatim; returns ``None``
        otherwise.
        """
        csr, np_ = self.csr, np
        F, L, T = self.F, self.L, self.T
        dt = self.dts[e]
        prev_backlog = self.backlog.copy() if capture else None

        demand = (arrival + self.backlog) / dt
        weight = np_.where(self.fair, self.w_static, demand)
        rate = np_.zeros(F)
        bottleneck = np_.full(F, -1, dtype=np_.int64)
        slack = self.caps.copy()
        for t in range(T):
            self._waterfill(
                self.tier_members[t], demand, weight, rate, bottleneck,
                slack,
            )
        rate[~self.routed] = demand[~self.routed]

        used = np_.bincount(csr.el, weights=rate[csr.ef], minlength=L)
        over = float(np_.max(used / self.caps)) - 1.0 if L else -1.0
        if over > self.max_capacity_overuse:
            self.max_capacity_overuse = over

        served = rate * dt
        self.backlog += arrival - served
        np_.maximum(self.backlog, 0.0, out=self.backlog)
        self.generated += arrival
        self.delivered += served

        queued = self.routed & (self.backlog > 0)
        bn = np_.where(bottleneck >= 0, bottleneck, self.first_link)
        q_lt = np_.bincount(
            (bn * T + self.tier)[queued], weights=self.backlog[queued],
            minlength=L * T,
        ).astype(float).reshape(L, T)
        cum = np_.cumsum(q_lt, axis=1)
        keep = np_.clip(
            self.buffer_bits[:, None] - (cum - q_lt), 0.0, q_lt
        )
        with np_.errstate(invalid="ignore", divide="ignore"):
            scale = np_.where(
                q_lt > 0, keep / np_.maximum(q_lt, 1e-300), 1.0
            )
        flow_scale = np_.ones(F)
        flow_scale[queued] = scale[bn[queued], self.tier[queued]]
        shed = self.backlog * (1.0 - flow_scale)
        self.backlog *= flow_scale
        self.dropped += shed
        drop_delta = np_.bincount(
            bn[queued], weights=(shed / self.size_bits)[queued],
            minlength=L,
        )
        self.link_drops += drop_delta
        q_lt *= scale

        cumwait = np_.cumsum(q_lt, axis=1) / self.caps[:, None]
        cumwait_flat = cumwait.reshape(-1)

        served_entry = rate[csr.ef] * dt
        served_lt = np_.bincount(
            self.e_lt, weights=served_entry, minlength=L * T
        )
        link_served_delta = np_.bincount(
            csr.el, weights=served_entry, minlength=L
        )
        wait_num_delta = (
            (cumwait_flat * served_lt).reshape(L, T).sum(axis=1)
        )
        wait_den_delta = served_lt.reshape(L, T).sum(axis=1)
        rt_delta = np_.bincount(
            csr.el[self.e_rt], weights=served_entry[self.e_rt],
            minlength=L,
        )
        self.link_served += link_served_delta
        self.wait_num += wait_num_delta
        self.wait_den += wait_den_delta
        self.link_rt += rt_delta

        sample = None
        if self.rec_idx.size and self.t0s[e] >= self.warmup:
            shared = np_.bincount(
                csr.ef, weights=cumwait_flat[self.e_lt], minlength=F
            )
            with np_.errstate(invalid="ignore", divide="ignore"):
                isolated = np_.where(
                    rate > 0,
                    self.backlog / np_.maximum(rate, 1e-300),
                    0.0,
                )
            delay = np_.where(self.fair, isolated, shared)
            sample = (
                delay[self.rec_idx].copy(),
                (served / self.size_bits)[self.rec_idx].copy(),
            )
            self.rec_delays.append(sample[0])
            self.rec_weights.append(sample[1])
        self.events += F

        if not capture:
            return None
        if not np_.array_equal(prev_backlog, self.backlog):
            return None
        return {
            "arrival": arrival,
            "served": served,
            "link_served": link_served_delta,
            "wait_num": wait_num_delta,
            "wait_den": wait_den_delta,
            "link_rt": rt_delta,
            "link_drops": drop_delta,
            "shed": shed,
            "sample": sample,
        }

    # -- steady-state fast-forward ---------------------------------------
    def _next_boundary(self, e: int, end: int) -> int:
        """The last epoch (exclusive) a steady jump from ``e`` may
        cover: every covered epoch must share ``e-1``'s length (the
        trailing partial epoch re-runs exactly) and its side of the
        warmup line (sample recording switches on there).  ``end`` is
        the current span's wall — a jump never crosses a link-state
        boundary."""
        if e >= end:
            return e
        dt = self.dts[e - 1]
        boundary = e
        before_warmup = self.t0s[e - 1] < self.warmup
        while boundary < end:
            if self.dts[boundary] != dt:
                break
            if before_warmup and self.t0s[boundary] >= self.warmup:
                break
            boundary += 1
        return boundary

    def _replay(self, deltas: dict, e0: int, e1: int) -> None:
        """Apply a steady reference epoch's deltas to epochs
        ``[e0, e1)`` without recomputing them.  The backlog vector is
        bit-identical across the interval by construction, so every
        elided epoch's per-flow state and samples equal the
        epoch-by-epoch schedule exactly; run totals fold the identical
        per-epoch deltas in closed form."""
        n = e1 - e0
        self.generated += deltas["arrival"] * n
        self.delivered += deltas["served"] * n
        self.dropped += deltas["shed"] * n
        self.link_served += deltas["link_served"] * n
        self.wait_num += deltas["wait_num"] * n
        self.wait_den += deltas["wait_den"] * n
        self.link_rt += deltas["link_rt"] * n
        self.link_drops += deltas["link_drops"] * n
        if deltas["sample"] is not None:
            delay, w = deltas["sample"]
            for _ in range(n):
                self.rec_delays.append(delay)
                self.rec_weights.append(w)
        self.events += self.F * n

    # -- waterfill -------------------------------------------------------
    def _waterfill(
        self, members, demand, weight, rate, bottleneck, slack
    ) -> None:
        """Demand-bounded weighted max-min over one tier (vectorised;
        identical algorithm to the pure backend's ``_waterfill_pure``)."""
        np_ = np
        csr = self.csr
        F, L = self.F, self.L
        ef, el = csr.ef, csr.el
        active = np_.zeros(F, dtype=bool)
        active[members] = (demand[members] > 0) & (weight[members] > 0)
        if not active.any():
            return
        max_rounds = self.opts.max_rounds
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            aw = np_.where(active, weight, 0.0)
            wsum = np_.bincount(el, weights=aw[ef], minlength=L)
            contended = wsum > 0
            if not contended.any():
                return
            lam = float(
                np_.min(
                    np_.maximum(slack[contended], 0.0) / wsum[contended]
                )
            )
            gap = demand - rate
            hit = active & (gap <= lam * weight * (1 + 1e-12))
            if hit.any():
                rate[hit] = demand[hit]
                active &= ~hit
            else:
                rate += lam * aw
            used = np_.bincount(el, weights=rate[ef], minlength=L)
            slack[:] = self.caps - used
            sat_entry = (slack[el] <= self.eps[el]) & active[ef]
            if sat_entry.any():
                bn = np_.full(F, L, dtype=np_.int64)
                np_.minimum.at(bn, ef[sat_entry], el[sat_entry])
                frozen = bn < L
                bottleneck[frozen] = bn[frozen]
                active &= ~frozen
            if not active.any():
                return
        # Round cap exhausted: final demand-capped proportional fill.
        self.sim.waterfill_exhausted += int(active.sum())
        aw = np_.where(active, weight, 0.0)
        wsum = np_.bincount(el, weights=aw[ef], minlength=L)
        contended = wsum > 0
        if contended.any():
            lam = float(
                np_.min(
                    np_.maximum(slack[contended], 0.0) / wsum[contended]
                )
            )
            rate[active] = np_.minimum(
                demand[active], rate[active] + lam * weight[active]
            )

    # ------------------------------------------------------------------
    def _writeback(self) -> None:
        sim = self.sim
        sim.generated_bits = self.generated.tolist()
        sim.delivered_bits = self.delivered.tolist()
        sim.dropped_bits = self.dropped.tolist()
        sim.backlog_bits = self.backlog.tolist()
        sim.link_served_bits = self.link_served.tolist()
        sim.link_drop_packets = self.link_drops.tolist()
        sim.link_wait_num = self.wait_num.tolist()
        sim.link_wait_den = self.wait_den.tolist()
        sim.link_realtime_bits = self.link_rt.tolist()
        sim.failure_drop_bits = self.fail_dropped.tolist()
        sim.no_route_packets = self.nr_packets.tolist()
        sim.link_failure_packets = self.link_fail.tolist()
        sim.flushed_packets += self.flushed
        sim.events_processed += self.events
        if self.max_capacity_overuse > sim.max_capacity_overuse:
            sim.max_capacity_overuse = self.max_capacity_overuse
        for f in sim.samples:
            pos = int(np.searchsorted(self.rec_idx, f))
            sim.samples[f] = [
                (float(d[pos]), float(w[pos]))
                for d, w in zip(self.rec_delays, self.rec_weights)
            ]


def run_kernel(sim) -> None:
    """Advance ``sim`` (a :class:`~repro.fluid.model.FluidSimulation`)
    to completion on the fused kernel."""
    FluidKernel(sim).run()
