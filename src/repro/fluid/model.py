"""Flow-level (fluid) co-simulator: bandwidth per epoch, not per packet.

The packet engine is the source of truth but caps out at hundreds of
flows; this model trades packet-level exactness for three to five orders
of magnitude more flows.  It consumes a :class:`ScenarioSpec` unchanged
and emits the same :class:`~repro.scenario.runner.DisciplineRunResult`
shape, so the runner, sweep executor, CLI, and experiments never know
which engine ran.

The model, per epoch of length ``dt`` over each flow's static route:

1. **Arrivals.**  Each flow is the *fluid limit* of its on/off source: a
   deterministic periodic burst train with the same peak rate, duty
   cycle (average/peak), and mean burst length as the packet source, at
   a per-flow random phase.  The on-time overlapping ``[t0, t1)`` is
   closed-form, so arrivals are exact at any epoch size and integrate to
   the source's average rate.
2. **Allocation.**  A tiered, demand-bounded, weighted max-min
   water-filling assigns every flow a rate over its links.  The run's
   discipline family picks weights and tiers: FIFO-family disciplines
   share proportionally to offered demand; WFQ-family disciplines weight
   by clock rate (installed guaranteed rates, or the auto-register /
   equal-share rate); the unified/priority (CSZ) family allocates in
   strict tier order — guaranteed, predicted classes by priority,
   datagram last — which is exactly the isolation structure the paper's
   Figure 1 experiments measure.
3. **Backlog and delay.**  Unserved arrivals accumulate as per-flow
   backlog attributed to the flow's bottleneck link, clamped to the
   link buffer with drops taken from the *highest* tiers first (datagram
   eats the overflow, as CSZ intends).  A flow's queueing delay is the
   shared-queue wait ``sum over path links of Q(link, tiers <= own) /
   capacity`` for FIFO-family flows, and the isolated ``own backlog /
   own rate`` for clock-weighted flows.  Delay statistics are weighted
   by delivered packets per epoch, mirroring the packet sink's
   per-packet samples.

Link outages *are* modelled, with epoch-boundary semantics: the spec's
outage schedule is compiled ahead of time into link-state epochs
(:mod:`repro.fluid.control`), failed links drop out of the waterfill
with their backlog ledgered as failure drops, flows reroute via
clock-free SPF/ECMP re-resolution, and admission-controlled flows
re-enter admission with accounted teardowns — the same control summary
the packet engine attaches.  ``REPRO_FLUID_OUTAGES=0`` restores the
pre-control-plane rejection of active outage specs.

What the fluid model does *not* capture: packet-granularity effects
(per-packet jitter inside an epoch, FIFO+ jitter sharing), transient
bursts shorter than an epoch, sub-epoch outage timing (transitions cut
the epoch grid exactly, but within-epoch traffic is fluid), and TCP
dynamics — specs with ``tcps`` are rejected.  Cross-validation
tolerances against the packet engine live in
``tests/fluid/test_equivalence.py`` and the README.

Two interchangeable backends: a pure-Python reference (authoritative,
always available) and a vectorized NumPy path (the scale engine,
~100–1000x faster at 10k+ flows).  ``REPRO_FLUID_BACKEND=pure|numpy``
pins one; the default uses NumPy when installed and the population is
large enough to benefit.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
import os
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.packet import ServiceClass
from repro.net.routing import RoutingError
from repro.scenario.disciplines import resolve_port_discipline
from repro.scenario.runner import DisciplineRunResult, FlowStats
from repro.scenario.spec import (
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    PredictedRequest,
    ScenarioSpec,
)

try:  # NumPy is optional everywhere in this repo; pure Python is
    import numpy as _np  # authoritative and the only hard dependency.
except ImportError:  # pragma: no cover - exercised on numpy-free CI
    _np = None

#: Discipline kinds that weight flows by clock rate (isolating).
FAIR_KINDS = frozenset({"wfq", "virtual_clock", "round_robin", "drr"})
#: Discipline kinds that allocate in strict service-tier order.
TIERED_KINDS = frozenset({"unified", "priority"})

#: Phase stream salt — the fluid analogue of the runner's
#: ``source:<name>`` streams: phases depend only on (spec.seed, flow
#: name), so disciplines of one spec see identical arrivals (the
#: paper's A/B methodology) and reruns are bit-identical.
_PHASE_SALT = "fluid-phase"

_EPOCH_ENV = "REPRO_FLUID_EPOCH"
_BACKEND_ENV = "REPRO_FLUID_BACKEND"
_FF_ENV = "REPRO_FLUID_FF"
#: Kill switch: ``REPRO_FLUID_OUTAGES=0`` restores the pre-control-plane
#: behaviour (active outage specs raise; the compile path for
#: outage-free specs is untouched either way).
_OUTAGES_ENV = "REPRO_FLUID_OUTAGES"


def _outages_enabled() -> bool:
    value = os.environ.get(_OUTAGES_ENV, "").strip().lower()
    return value not in ("0", "false", "off", "no")


@dataclasses.dataclass(frozen=True)
class FluidOptions:
    """Tuning knobs of the fluid engine (all have sound defaults).

    Attributes:
        epoch_seconds: fixed epoch length; ``None`` picks one
            automatically — fine enough to resolve the shortest on/off
            period at small populations, coarsening so the whole run
            stays within ``target_flow_epochs`` flow-advances at large
            ones (that budget is what makes a 100k-flow fat-tree finish
            in tens of seconds).
        target_flow_epochs: auto-epoch budget, in flow-epoch advances.
        max_rounds: water-filling round cap per tier per epoch; when
            exhausted the remaining flows get one final demand-capped
            proportional fill (counted in ``waterfill_exhausted``).
        backend: ``"auto"`` / ``"numpy"`` / ``"pure"``.
        record_flows: accumulate per-flow delay sample lists for
            recorded flows (the default).  Benchmark and sweep runs
            that only read aggregate results turn this off to skip the
            per-epoch sample bookkeeping; ``FlowStats`` rows still
            appear, with zeroed delay statistics.
        fast_forward: let the NumPy kernel jump steady constant-demand
            intervals in closed form (``REPRO_FLUID_FF=0`` kill
            switch); results stay bit-identical to the epoch-by-epoch
            schedule — see :mod:`repro.fluid.kernel`.
        fuse_epochs: epochs per fused kernel block (0 = sized
            automatically from the incidence, the default).
    """

    epoch_seconds: Optional[float] = None
    target_flow_epochs: float = 12e6
    max_rounds: int = 200
    backend: str = "auto"
    record_flows: bool = True
    fast_forward: bool = True
    fuse_epochs: int = 0

    @classmethod
    def from_env(cls, **overrides) -> "FluidOptions":
        epoch = os.environ.get(_EPOCH_ENV)
        if epoch and "epoch_seconds" not in overrides:
            overrides["epoch_seconds"] = float(epoch)
        backend = os.environ.get(_BACKEND_ENV)
        if backend and "backend" not in overrides:
            overrides["backend"] = backend
        ff = os.environ.get(_FF_ENV)
        if ff and "fast_forward" not in overrides:
            overrides["fast_forward"] = ff.strip().lower() not in (
                "0", "false", "off", "no"
            )
        return cls(**overrides)


# ----------------------------------------------------------------------
# Spec compilation
# ----------------------------------------------------------------------


def _routes_for(spec: ScenarioSpec):
    """Per-flow node paths: the packet engine's static routes, or the
    seeded ECMP choice when the spec carries an ``ecmp_seed``."""
    from repro.scenario.generators import topology_routes

    if spec.ecmp_seed is not None:
        from repro.net.fabric import EcmpPaths

        chooser = EcmpPaths.shared(spec.topology, seed=spec.ecmp_seed)
        return lambda flow: chooser.path(
            flow.source_host, flow.dest_host, flow.name
        )
    routing = topology_routes(spec.topology)
    return lambda flow: routing.path(flow.source_host, flow.dest_host)


def _admit(spec: ScenarioSpec, path_links: Dict[str, Tuple[int, ...]],
           link_rates: Sequence[float]):
    """Static admission: the fluid stand-in for the signaling round-trip.

    Request-bearing flows visit admission in establish order (mirroring
    :class:`~repro.scenario.runner.ScenarioContext`): a guaranteed
    request is granted iff its clock rate fits under the realtime quota
    on every path link given earlier commitments; a predicted request
    checks its token rate the same way.  Denied flows run as datagram —
    the paper's fallback service.  Without an ``admission`` block every
    request is honoured (the runner's direct-install path).

    Returns ``(service, clock, admitted, denied, committed)``: per-flow
    resolved ``(ServiceClass, priority)``, per-flow granted clock rate
    (or None), the admitted/denied flow-name lists, and the per-link
    committed bits/s vector — the starting point the control plane's
    re-admission replay works against.
    """
    quota = spec.admission.realtime_quota if spec.admission else None
    committed = [0.0] * len(link_rates)
    service: Dict[str, Tuple[ServiceClass, int]] = {}
    clock: Dict[str, Optional[float]] = {}
    admitted: List[str] = []
    denied: List[str] = []

    if not spec.establish_order and all(
        f.request is None for f in spec.flows
    ):
        # Nothing to admit (the common generated-population shape):
        # every flow runs as declared.
        service = {
            f.name: (f.service_class, f.priority_class) for f in spec.flows
        }
        clock = dict.fromkeys(service)
        return service, clock, admitted, denied, committed

    flows_by_name = {flow.name: flow for flow in spec.flows}
    order = list(spec.establish_order or ())
    listed = set(order)
    order += [
        f.name for f in spec.flows
        if f.request is not None and f.name not in listed
    ]
    for name in order:
        flow = flows_by_name[name]
        links = path_links[name]
        if isinstance(flow.request, GuaranteedRequest):
            rate = flow.request.clock_rate_bps
            fits = quota is None or all(
                committed[l] + rate <= quota * link_rates[l] for l in links
            )
            if fits:
                for l in links:
                    committed[l] += rate
                service[name] = (ServiceClass.GUARANTEED, 0)
                clock[name] = rate
                admitted.append(name)
            else:
                service[name] = (ServiceClass.DATAGRAM, 0)
                clock[name] = None
                denied.append(name)
        elif isinstance(flow.request, PredictedRequest):
            rate = flow.request.token_rate_bps
            fits = quota is None or all(
                committed[l] + rate <= quota * link_rates[l] for l in links
            )
            if fits:
                for l in links:
                    committed[l] += rate
                service[name] = (ServiceClass.PREDICTED, flow.priority_class)
                admitted.append(name)
            else:
                service[name] = (ServiceClass.DATAGRAM, 0)
                denied.append(name)
            clock[name] = None
    for flow in spec.flows:
        if flow.name not in service:
            service[flow.name] = (flow.service_class, flow.priority_class)
            clock[flow.name] = None
    return service, clock, admitted, denied, committed


class FluidSimulation:
    """One discipline's fluid run, built from a spec.

    Mirrors the :class:`~repro.scenario.runner.ScenarioContext` surface
    the executor needs: construct, :meth:`run`, :meth:`collect`.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        discipline: DisciplineSpec,
        options: Optional[FluidOptions] = None,
    ):
        if spec.tcps:
            # O(shown): a 5-element heap selection, never a full sort of
            # a million-flow name list just to print five of them.
            total = len(spec.tcps)
            names = heapq.nsmallest(5, (t.name for t in spec.tcps))
            shown = ", ".join(repr(n) for n in names)
            if total > 5:
                shown += f", ... ({total} total)"
            raise ValueError(
                f"the fluid engine does not model TCP dynamics: spec "
                f"{spec.name!r} carries TCP flow(s) {shown}; run this "
                f"spec on the packet engine (engine=\"packet\" on the "
                f"spec, REPRO_ENGINE=packet, or --engine packet)"
            )
        if (
            spec.outages is not None
            and spec.outages.is_active
            and not _outages_enabled()
        ):
            out = spec.outages
            parts = []
            if out.events:
                links = {e.link for e in out.events}
                shown = ", ".join(
                    repr(l) for l in heapq.nsmallest(5, links)
                )
                if len(links) > 5:
                    shown += f", ... ({len(links)} links)"
                parts.append(
                    f"{len(out.events)} explicit outage event(s) on "
                    f"{shown}"
                )
            if out.rate_per_second:
                parts.append(
                    f"a sampled outage process at "
                    f"{out.rate_per_second:g}/s"
                )
            detail = " and ".join(parts)
            raise ValueError(
                f"fluid outage support is disabled "
                f"({_OUTAGES_ENV}=0): spec {spec.name!r} declares "
                f"{detail}; unset {_OUTAGES_ENV} to compile the outage "
                f"schedule into link-state epochs, or run this spec on "
                f"the packet engine (engine=\"packet\" on the spec, "
                f"REPRO_ENGINE=packet, or --engine packet)"
            )
        self.spec = spec
        self.discipline = discipline
        self.options = options or FluidOptions.from_env()

        topology = spec.topology
        self.link_names: Tuple[str, ...] = topology.link_names
        link_index = {name: i for i, name in enumerate(self.link_names)}
        self.caps = [float(link.rate_bps) for link in topology.links]
        # Buffer bound in bits: packets x the rate-weighted mean packet
        # size of the population (the packet engine bounds in packets;
        # a single spec-wide mean keeps the bound flow-independent).
        mean_size = (
            sum(f.average_rate_pps * f.packet_size_bits * f.packet_size_bits
                for f in spec.flows)
            / sum(f.average_rate_pps * f.packet_size_bits
                  for f in spec.flows)
            if spec.flows else 1000.0
        )
        self.buffer_bits = [
            float(link.buffer_packets) * mean_size for link in topology.links
        ]

        # -- routes ----------------------------------------------------
        path_of = _routes_for(spec)
        # Node-pair -> link index, for links whose name follows the
        # "src->dst" convention the node walks resolve through (other
        # names never match a walk hop, exactly as before).
        pair_index = {
            (link.src, link.dst): link_index[link.name]
            for link in topology.links
            if link.name == f"{link.src}->{link.dst}"
        }
        pair_get = pair_index.get
        self.paths: List[Tuple[int, ...]] = []
        path_links: Dict[str, Tuple[int, ...]] = {}
        for flow in spec.flows:
            try:
                nodes = path_of(flow)
            except RoutingError as exc:
                raise RoutingError(f"flow {flow.name!r}: {exc}") from None
            links = tuple(
                l for l in map(pair_get, zip(nodes, nodes[1:]))
                if l is not None
            )
            self.paths.append(links)
            path_links[flow.name] = links

        # -- admission + per-flow service resolution -------------------
        service, clock, self.admitted, self.denied, committed = _admit(
            spec, path_links, self.caps
        )

        # -- discipline family: weights, modes, tiers ------------------
        # Per-port overrides resolve per link; a flow is governed by the
        # discipline at its minimum-capacity path link (its structural
        # bottleneck) — the documented fluid approximation of mixed
        # per-tier fabrics.
        resolved: Dict[int, DisciplineSpec] = {
            i: resolve_port_discipline(discipline, name)
            for i, name in enumerate(self.link_names)
        }
        # Kept for the control plane's per-state reclassification of
        # rerouted flows (bottleneck may move to a different port).
        self._resolved = resolved
        self._granted_clock = clock
        run_tiered = any(d.kind in TIERED_KINDS for d in resolved.values())
        num_predicted = max(
            [d.param_dict.get("num_predicted_classes", 2)
             for d in resolved.values() if d.kind in TIERED_KINDS] or [2]
        )
        if run_tiered:
            num_predicted = max(
                [num_predicted]
                + [service[f.name][1] + 1 for f in spec.flows
                   if service[f.name][0] is ServiceClass.PREDICTED]
            )
        self.num_tiers = 2 + num_predicted if run_tiered else 1

        F = len(spec.flows)
        self.flow_names = [f.name for f in spec.flows]
        self.size_bits = [float(f.packet_size_bits) for f in spec.flows]
        self.avg_bps = [
            f.average_rate_pps * f.packet_size_bits for f in spec.flows
        ]
        self.peak_bps = []
        self.duty = []
        self.period = []
        self.phase = []
        self.tier = []
        self.fair = []           # clock-weighted (isolated) vs demand-shared
        self.weight_static = []  # clock weight for fair flows; unused else
        self.realtime = []
        self.record = [bool(f.record) for f in spec.flows]
        # One reusable generator, re-seeded per flow: seeding fully
        # resets the Mersenne state, so each draw equals a fresh
        # ``random.Random(key).random()`` without the allocation.
        phase_rng = random.Random()
        phase_seed = phase_rng.seed
        phase_draw = phase_rng.random
        phase_salt = f"{_PHASE_SALT}:{spec.seed}:"
        # Local binds: this loop runs once per flow and dominates the
        # 1M-flow compile.
        caps = self.caps
        caps_get = caps.__getitem__
        paths = self.paths
        peak_append = self.peak_bps.append
        duty_append = self.duty.append
        period_append = self.period.append
        phase_append = self.phase.append
        tier_append = self.tier.append
        realtime_append = self.realtime.append
        fair_append = self.fair.append
        weight_append = self.weight_static.append
        for f, flow in enumerate(spec.flows):
            avg_pps = flow.average_rate_pps
            peak_pps = flow.peak_rate_pps or 2.0 * avg_pps
            peak_append(peak_pps * flow.packet_size_bits)
            duty = avg_pps / peak_pps
            if duty > 1.0:
                duty = 1.0
            duty_append(duty)
            period_append(
                flow.mean_burst_packets / avg_pps / max(duty, 1e-12)
            )
            phase_seed(phase_salt + flow.name)
            phase_append(phase_draw())
            cls, priority = service[flow.name]
            realtime_append(cls.is_realtime)
            if run_tiered:
                if cls is ServiceClass.GUARANTEED:
                    tier_append(0)
                elif cls is ServiceClass.PREDICTED:
                    tier_append(1 + min(priority, num_predicted - 1))
                else:
                    tier_append(1 + num_predicted)
            else:
                tier_append(0)
            governing = None
            if paths[f]:
                bottleneck = min(paths[f], key=caps_get)
                governing = resolved[bottleneck]
            granted = clock[flow.name]
            if granted is not None and (
                governing is None
                or governing.kind in FAIR_KINDS
                or governing.kind in TIERED_KINDS
            ):
                # An installed clock rate isolates the flow wherever a
                # rate-capable scheduler runs.
                fair_append(True)
                weight_append(granted)
            elif governing is not None and governing.kind in FAIR_KINDS:
                params = governing.param_dict
                share = params.get("equal_share_flows")
                if share:
                    rate = caps[bottleneck] / share
                else:
                    rate = params.get("auto_register_rate_bps")
                fair_append(True)
                # Unregistered flows under WFQ-family schedulers share
                # proportionally to their offered rate.
                weight_append(rate or self.avg_bps[f])
            else:
                fair_append(False)
                weight_append(0.0)

        # -- epoch grid ------------------------------------------------
        duration = float(spec.duration)
        if self.options.epoch_seconds is not None:
            epoch = float(self.options.epoch_seconds)
        else:
            budget = self.options.target_flow_epochs
            if self.options.backend == "pure" or (
                self.options.backend == "auto" and _np is None
            ):
                budget /= 16.0  # pure Python advances ~16x slower
            shortest = min(self.period) if self.period else duration
            fine = max(shortest / 4.0, duration / 65536.0)
            coarse = duration / max(64.0, budget / max(F, 1))
            epoch = max(fine, min(coarse, duration / 8.0)) if F else duration
        self.epoch_seconds = min(epoch, duration) if duration else epoch
        self.num_epochs = (
            max(1, math.ceil(duration / self.epoch_seconds - 1e-9))
            if duration > 0
            else 0
        )

        # -- control plane: outage schedule -> link-state epochs -------
        # ``epoch_starts`` stays None on the outage-free path, keeping
        # both backends on their original (bit-identical) uniform grid
        # arithmetic; with transitions it becomes the uniform grid split
        # at every link-state change, and ``segments`` groups epochs by
        # link state.
        self.control_plan = None
        self.segments = None
        self.epoch_starts: Optional[List[float]] = None
        self.epoch_ends: Optional[List[float]] = None
        if spec.outages is not None:
            from repro.fluid.control import FluidControlPlan

            rng = None
            if spec.outages.rate_per_second > 0:
                from repro.scenario.runner import OUTAGE_STREAM_NAME
                from repro.sim.randomness import RandomStreams

                rng = RandomStreams(seed=spec.seed).stream(
                    OUTAGE_STREAM_NAME
                )
            self.control_plan = FluidControlPlan.compile(
                spec,
                self.link_names,
                self.caps,
                self.paths,
                pair_index,
                admitted=self.admitted,
                committed=committed,
                rng=rng,
            )
            for state in self.control_plan.states:
                self._classify_state(state)
            if self.control_plan.boundaries:
                self._build_segments(self.control_plan)

        # -- run accumulators (plain Python; backends fill them) -------
        self.generated_bits = [0.0] * F
        self.delivered_bits = [0.0] * F
        self.dropped_bits = [0.0] * F
        self.backlog_bits = [0.0] * F
        # Control-plane ledgers: per-flow bits lost to failures (boundary
        # flushes + no-route sheds), per-flow no-route packets, per-link
        # flushed packets, and the total flushed-packet count.
        self.failure_drop_bits = [0.0] * F
        self.no_route_packets = [0.0] * F
        self.link_failure_packets = [0.0] * len(self.caps)
        self.flushed_packets = 0.0
        self.link_served_bits = [0.0] * len(self.caps)
        self.link_drop_packets = [0.0] * len(self.caps)
        self.link_wait_num = [0.0] * len(self.caps)   # wait x served bits
        self.link_wait_den = [0.0] * len(self.caps)
        self.link_realtime_bits = [0.0] * len(self.caps)
        # Per recorded flow: [(delay_seconds, delivered_packets), ...].
        # ``record_flows=False`` (benchmark/sweep mode) skips the whole
        # sample bookkeeping; FlowStats rows still appear, zero-delayed.
        self.record_samples = bool(self.options.record_flows)
        self.samples: Dict[int, List[Tuple[float, float]]] = (
            {f: [] for f in range(F) if self.record[f]}
            if self.record_samples else {}
        )
        self.events_processed = 0
        self.waterfill_exhausted = 0
        self.max_capacity_overuse = 0.0   # relative, across epochs/links
        self.max_buffer_overuse = 0.0     # relative, after clamping
        self._wall_seconds: Optional[float] = None
        self._ran = False

        # -- compiled incidence (CSR), built once and shared by the
        # kernel's waterfill, load checks, and accumulators -------------
        self.incidence = None
        if _np is not None:
            from repro.fluid.kernel import CsrIncidence

            self.incidence = CsrIncidence(self.paths, len(self.caps))

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The backend :meth:`run` will use (resolved from options)."""
        choice = self.options.backend
        if choice == "auto":
            return "numpy" if _np is not None else "pure"
        if choice not in ("numpy", "pure"):
            raise ValueError(
                f"unknown fluid backend {choice!r}; expected auto|numpy|pure"
            )
        if choice == "numpy" and _np is None:
            raise RuntimeError("numpy backend requested but numpy is absent")
        return choice

    # -- control plane (compile-time helpers) --------------------------
    def _classify_state(self, state) -> None:
        """Fill a plan state's ``fair``/``weight`` lists: rerouted flows
        are re-classified at the bottleneck of their *new* path (same
        rules as the compile loop); unchanged flows keep their base
        classification bit-for-bit.  The all-up state shares the base
        lists by identity."""
        if state.paths is self.paths:
            state.fair = self.fair
            state.weight = self.weight_static
            return
        fair = list(self.fair)
        weight = list(self.weight_static)
        caps = self.caps
        caps_get = caps.__getitem__
        base_paths = self.paths
        clock = self._granted_clock
        for f, path in enumerate(state.paths):
            if path == base_paths[f]:
                continue
            governing = None
            bottleneck = None
            if path:
                bottleneck = min(path, key=caps_get)
                governing = self._resolved[bottleneck]
            granted = clock[self.flow_names[f]]
            if granted is not None and (
                governing is None
                or governing.kind in FAIR_KINDS
                or governing.kind in TIERED_KINDS
            ):
                fair[f] = True
                weight[f] = granted
            elif governing is not None and governing.kind in FAIR_KINDS:
                params = governing.param_dict
                share = params.get("equal_share_flows")
                if share:
                    rate = caps[bottleneck] / share
                else:
                    rate = params.get("auto_register_rate_bps")
                fair[f] = True
                weight[f] = rate or self.avg_bps[f]
            else:
                fair[f] = False
                weight[f] = 0.0
        state.fair = fair
        state.weight = weight

    def _build_segments(self, plan) -> None:
        """Split the uniform epoch grid at the plan's time boundaries
        and group the epochs into link-state segments.

        The uniform grid points and truncation (``min(duration, t0 +
        epoch)``) are preserved exactly — boundary times strictly inside
        an epoch split it in two; times landing on a grid point (or at
        the run's very end) insert nothing — so an outage-free stretch
        of the split grid steps the identical ``(t0, t1)`` pairs the
        unsplit grid would."""
        import bisect

        from repro.fluid.control import FluidSegment

        if not self.num_epochs:
            self.segments = [
                FluidSegment(0, 0, plan.boundaries[-1].state, ())
            ]
            return
        duration = float(self.spec.duration)
        eps = self.epoch_seconds
        btimes = [b.time for b in plan.boundaries]
        starts: List[float] = []
        ends: List[float] = []
        for e in range(self.num_epochs):
            t0 = e * eps
            t1 = min(duration, t0 + eps)
            lo = bisect.bisect_right(btimes, t0)
            hi = bisect.bisect_left(btimes, t1)
            pts = [t0] + btimes[lo:hi] + [t1]
            for a, b in zip(pts, pts[1:]):
                starts.append(a)
                ends.append(b)
        self.epoch_starts = starts
        self.epoch_ends = ends
        self.num_epochs = len(starts)
        boundary_epoch: Dict[float, int] = {}
        btset = set(btimes)
        for i, s in enumerate(starts):
            if s in btset and s not in boundary_epoch:
                boundary_epoch[s] = i
        segments = []
        prev_e, prev_state, prev_flush = 0, plan.base_state, ()
        for boundary in plan.boundaries:
            e = boundary_epoch.get(boundary.time)
            if e is None:
                e = (
                    self.num_epochs
                    if boundary.time >= ends[-1]
                    else bisect.bisect_left(starts, boundary.time)
                )
            segments.append(
                FluidSegment(prev_e, e, prev_state, prev_flush)
            )
            prev_e, prev_state = e, boundary.state
            prev_flush = boundary.flush
        segments.append(
            FluidSegment(prev_e, self.num_epochs, prev_state, prev_flush)
        )
        self.segments = segments

    def _pure_flush(self, flush) -> None:
        """Boundary flush (pure backend): a flow whose path crossed a
        newly-failed link (or was torn down) loses its backlog —
        ledgered per flow as failure drops and per link as flushed
        packets, the fluid twin of ``Port.flush_queue``."""
        backlog = self.backlog_bits
        for f, l in flush:
            bits = backlog[f]
            if bits > 0.0:
                self.failure_drop_bits[f] += bits
                packets = bits / self.size_bits[f]
                self.link_failure_packets[l] += packets
                self.flushed_packets += packets
                backlog[f] = 0.0

    def _on_seconds(self, f: int, t0: float, t1: float) -> float:
        """Closed-form on-time of flow ``f``'s periodic burst train
        overlapping ``[t0, t1)`` — exact for any epoch size."""
        period = self.period[f]
        duty = self.duty[f]
        if duty >= 1.0:
            return t1 - t0
        a = t0 / period + self.phase[f]
        b = t1 / period + self.phase[f]

        def measure(u: float) -> float:
            whole = math.floor(u)
            return duty * whole + min(u - whole, duty)

        return (measure(b) - measure(a)) * period

    # ------------------------------------------------------------------
    def run(self) -> "FluidSimulation":
        started = time.perf_counter()
        if not self._ran:
            if self.num_epochs:
                if self.backend == "numpy":
                    self._advance_numpy()
                else:
                    self._advance_pure()
            self._ran = True
        self._wall_seconds = (self._wall_seconds or 0.0) + (
            time.perf_counter() - started
        )
        return self

    # -- pure-Python reference backend ---------------------------------
    def _advance_pure(self) -> None:
        if self.segments is None:
            self._pure_span(
                0, self.num_epochs, self.paths, self.fair,
                self.weight_static, (), (),
            )
            return
        for seg in self.segments:
            self._pure_flush(seg.flush)
            if seg.e1 > seg.e0:
                st = seg.state
                self._pure_span(
                    seg.e0, seg.e1, st.paths, st.fair, st.weight,
                    st.noroute, st.inactive,
                )

    def _pure_span(
        self, e_begin, e_end, paths, fair, weight_static, noroute, inactive
    ) -> None:
        """Advance epochs ``[e_begin, e_end)`` under one link state:
        ``paths``/``fair``/``weight_static`` are the state's per-flow
        views, ``noroute`` flows shed their arrivals (ledgered as
        failure drops), ``inactive`` (torn-down) flows generate
        nothing.  With ``epoch_starts`` unset this reduces exactly to
        the original uniform-grid loop."""
        F = len(self.flow_names)
        L = len(self.caps)
        T = self.num_tiers
        duration = float(self.spec.duration)
        warmup = float(self.spec.warmup)
        eps = [max(1e-9 * c, 1e-6) for c in self.caps]
        skip = set(noroute) | set(inactive)
        tier_flows = [
            [f for f in range(F) if self.tier[f] == t and paths[f]]
            for t in range(T)
        ]
        unrouted = [
            f for f in range(F) if not paths[f] and f not in skip
        ]
        backlog = self.backlog_bits
        bottleneck = [-1] * F

        for e in range(e_begin, e_end):
            if self.epoch_starts is None:
                t0 = e * self.epoch_seconds
                t1 = min(duration, t0 + self.epoch_seconds)
            else:
                t0 = self.epoch_starts[e]
                t1 = self.epoch_ends[e]
            dt = t1 - t0
            if dt <= 0:
                break
            arrival = [
                self.peak_bps[f] * self._on_seconds(f, t0, t1)
                for f in range(F)
            ]
            for f in noroute:
                shed = arrival[f]
                if shed > 0.0:
                    # No route after reconvergence: the source keeps
                    # emitting, the network drops at the first hop.
                    self.generated_bits[f] += shed
                    self.failure_drop_bits[f] += shed
                    self.no_route_packets[f] += shed / self.size_bits[f]
                    arrival[f] = 0.0
            for f in inactive:
                arrival[f] = 0.0
            demand = [(arrival[f] + backlog[f]) / dt for f in range(F)]
            weight = [
                weight_static[f] if fair[f] else demand[f]
                for f in range(F)
            ]
            rate = [0.0] * F
            for f in range(F):
                bottleneck[f] = -1
            slack = list(self.caps)
            for t in range(T):
                self._waterfill_pure(
                    tier_flows[t], paths, demand, weight, rate,
                    bottleneck, slack, eps,
                )
            for f in unrouted:
                rate[f] = demand[f]

            # Served bits, backlog update, buffer clamp (drop high tiers
            # first), per-link queues, delays, accumulators.
            used = [0.0] * L
            for f in range(F):
                r = rate[f]
                if r > 0:
                    for l in paths[f]:
                        used[l] += r
            for l in range(L):
                over = used[l] / self.caps[l] - 1.0
                if over > self.max_capacity_overuse:
                    self.max_capacity_overuse = over

            queue = [[0.0] * T for _ in range(L)]
            for f in range(F):
                served = rate[f] * dt
                new_backlog = backlog[f] + arrival[f] - served
                backlog[f] = new_backlog if new_backlog > 0 else 0.0
                self.generated_bits[f] += arrival[f]
                self.delivered_bits[f] += served
                if backlog[f] > 0 and paths[f]:
                    if bottleneck[f] < 0:
                        bottleneck[f] = paths[f][0]
                    queue[bottleneck[f]][self.tier[f]] += backlog[f]

            scale = [[1.0] * T for _ in range(L)]
            for l in range(L):
                remaining = self.buffer_bits[l]
                for t in range(T):
                    q = queue[l][t]
                    if q <= 0:
                        continue
                    keep = min(q, remaining)
                    scale[l][t] = keep / q
                    remaining -= keep
                    queue[l][t] = keep
            for f in range(F):
                if backlog[f] > 0 and bottleneck[f] >= 0:
                    s = scale[bottleneck[f]][self.tier[f]]
                    if s < 1.0:
                        dropped = backlog[f] * (1.0 - s)
                        backlog[f] -= dropped
                        self.dropped_bits[f] += dropped
                        self.link_drop_packets[bottleneck[f]] += (
                            dropped / self.size_bits[f]
                        )

            cumwait = [[0.0] * T for _ in range(L)]
            for l in range(L):
                acc = 0.0
                for t in range(T):
                    acc += queue[l][t]
                    cumwait[l][t] = acc / self.caps[l]

            for f in range(F):
                served = rate[f] * dt
                if served > 0:
                    for l in paths[f]:
                        self.link_served_bits[l] += served
                        self.link_wait_num[l] += (
                            cumwait[l][self.tier[f]] * served
                        )
                        self.link_wait_den[l] += served
                        if self.realtime[f]:
                            self.link_realtime_bits[l] += served
                if self.record_samples and self.record[f] and t0 >= warmup:
                    if fair[f]:
                        delay = backlog[f] / rate[f] if rate[f] > 0 else 0.0
                    else:
                        delay = sum(
                            cumwait[l][self.tier[f]] for l in paths[f]
                        )
                    self.samples[f].append(
                        (delay, served / self.size_bits[f])
                    )
            self.events_processed += F

    def _waterfill_pure(
        self, flows, paths, demand, weight, rate, bottleneck, slack, eps
    ) -> None:
        """Demand-bounded weighted max-min over one tier's flows, eating
        into ``slack`` (shared across tiers, already reduced by earlier
        tiers).  Freezes flows either at their demand or at the first
        link of theirs that saturates (recorded in ``bottleneck``).
        ``paths`` is the current link state's per-flow route view."""
        active = {
            f for f in flows if demand[f] > 0 and weight[f] > 0
        }
        rounds = 0
        while active and rounds < self.options.max_rounds:
            rounds += 1
            wsum: Dict[int, float] = {}
            for f in active:
                for l in paths[f]:
                    wsum[l] = wsum.get(l, 0.0) + weight[f]
            lam = min(
                (max(slack[l], 0.0) / wsum[l] for l in wsum), default=0.0
            )
            hit = [
                f for f in active
                if demand[f] - rate[f] <= lam * weight[f] * (1 + 1e-12)
            ]
            if hit:
                for f in hit:
                    rate[f] = demand[f]
                    active.discard(f)
            else:
                for f in active:
                    rate[f] += lam * weight[f]
            # Exact slack from scratch (over *all* flows, so earlier
            # tiers' allocations stay counted) — mirrors the NumPy
            # backend's bincount and is immune to incremental drift.
            used_all = [0.0] * len(self.caps)
            for g, r in enumerate(rate):
                if r > 0:
                    for l in paths[g]:
                        used_all[l] += r
            for l in range(len(self.caps)):
                slack[l] = self.caps[l] - used_all[l]
            frozen = []
            for f in active:
                saturated = [
                    l for l in paths[f] if slack[l] <= eps[l]
                ]
                if saturated:
                    bottleneck[f] = min(saturated)
                    frozen.append(f)
            for f in frozen:
                active.discard(f)
        if active:
            # Round cap exhausted: one final demand-capped proportional
            # fill so no capacity is silently stranded.
            self.waterfill_exhausted += len(active)
            wsum = {}
            for f in active:
                for l in paths[f]:
                    wsum[l] = wsum.get(l, 0.0) + weight[f]
            lam = min(
                (max(slack[l], 0.0) / wsum[l] for l in wsum), default=0.0
            )
            for f in active:
                rate[f] = min(demand[f], rate[f] + lam * weight[f])

    # -- NumPy backend --------------------------------------------------
    def _advance_numpy(self) -> None:
        from repro.fluid.kernel import run_kernel

        run_kernel(self)

    # ------------------------------------------------------------------
    def collect(self) -> DisciplineRunResult:
        """Snapshot the fluid run into the packet engine's result shape."""
        spec = self.spec
        duration = float(spec.duration) or 1.0
        flow_stats = []
        for f, flow in enumerate(spec.flows):
            if not self.record[f]:
                continue
            flow_stats.append(self._flow_stats(f, flow))
        invariants = None
        if spec.validate:
            invariants = self._check_invariants()
        accounting = bool(spec.link_accounting)
        datagram_dropped = 0
        if accounting:
            datagram_dropped = int(round(sum(
                self.dropped_bits[f] / self.size_bits[f]
                for f in range(len(spec.flows))
                if not self.realtime[f]
            )))
        return DisciplineRunResult(
            discipline=self.discipline.name,
            flows=tuple(flow_stats),
            link_utilizations=tuple(
                (name, self.link_served_bits[l] / (self.caps[l] * duration))
                for l, name in enumerate(self.link_names)
            ),
            link_queueing=tuple(
                (
                    name,
                    (
                        self.link_wait_num[l] / self.link_wait_den[l]
                        if self.link_wait_den[l]
                        else 0.0
                    ),
                )
                for l, name in enumerate(self.link_names)
            ),
            link_drops=tuple(
                (
                    name,
                    int(round(
                        self.link_drop_packets[l]
                        + self.link_failure_packets[l]
                    )),
                )
                for l, name in enumerate(self.link_names)
            ),
            port_disciplines=tuple(sorted(
                (name, resolve_port_discipline(self.discipline, name).name)
                for name in self.link_names
            )),
            realtime_fraction=tuple(
                (
                    name,
                    (
                        self.link_realtime_bits[l] / self.link_served_bits[l]
                        if self.link_served_bits[l]
                        else 0.0
                    ),
                )
                for l, name in enumerate(self.link_names)
            ) if accounting else (),
            datagram_dropped=datagram_dropped,
            tcp_stats=(),
            events_processed=self.events_processed,
            wall_seconds=self._wall_seconds or 0.0,
            worker_pid=os.getpid(),
            invariants=invariants,
            control=(
                self.control_plan.control_stats(
                    self.flow_names,
                    self.no_route_packets,
                    int(round(self.flushed_packets)),
                )
                if self.control_plan is not None
                else None
            ),
        )

    def _flow_stats(self, f: int, flow: FlowSpec) -> FlowStats:
        samples = [s for s in self.samples.get(f, ()) if s[1] > 0]
        total_w = sum(w for _, w in samples)
        if total_w > 0:
            mean = sum(d * w for d, w in samples) / total_w
            max_d = max(d for d, _ in samples)
            min_d = min(d for d, _ in samples)
        else:
            mean = max_d = min_d = 0.0
        generated = int(round(self.generated_bits[f] / self.size_bits[f]))
        received = int(round(self.delivered_bits[f] / self.size_bits[f]))
        return FlowStats(
            name=flow.name,
            generated=generated,
            emitted=generated,
            filtered=0,
            received=received,
            recorded=int(round(total_w)),
            mean_seconds=mean,
            max_seconds=max_d,
            jitter_seconds=max_d - min_d if total_w > 0 else 0.0,
            percentiles=tuple(
                (pct, self._weighted_percentile(samples, total_w, pct))
                for pct in self.spec.percentile_points
            ),
        )

    @staticmethod
    def _weighted_percentile(
        samples: List[Tuple[float, float]], total_w: float, pct: float
    ) -> float:
        """Delivered-packet-weighted nearest-rank percentile."""
        if total_w <= 0:
            return 0.0
        target = (pct / 100.0) * total_w
        acc = 0.0
        for delay, w in sorted(samples):
            acc += w
            if acc >= target:
                return delay
        return max(d for d, _ in samples)

    # ------------------------------------------------------------------
    def _check_invariants(self):
        """Fluid-specific invariants, in the packet layer's
        :class:`~repro.validate.InvariantCheck` currency so ``--validate``
        and sweep assertions work identically across engines."""
        from repro.validate import InvariantCheck

        F = len(self.flow_names)
        L = len(self.caps)
        cap_tol = 1e-6
        cap_ok = self.max_capacity_overuse <= cap_tol
        checks = [
            InvariantCheck(
                name="fluid-link-capacity",
                ok=cap_ok,
                checked=L * max(self.num_epochs, 1),
                violations=0 if cap_ok else 1,
                detail=(
                    f"max allocation overuse "
                    f"{self.max_capacity_overuse:.2e} (rel)"
                ),
            )
        ]
        bad = 0
        worst = 0.0
        for f in range(F):
            lhs = self.generated_bits[f]
            rhs = (
                self.delivered_bits[f]
                + self.backlog_bits[f]
                + self.dropped_bits[f]
                + self.failure_drop_bits[f]
            )
            err = abs(lhs - rhs)
            tol = 1e-6 * max(lhs, 1.0) + 1.0
            if err > tol:
                bad += 1
                worst = max(worst, err)
        checks.append(
            InvariantCheck(
                name="fluid-flow-conservation",
                ok=bad == 0,
                checked=F,
                violations=bad,
                detail=(
                    f"worst imbalance {worst:.3g} bits" if bad else
                    "arrivals = delivered + backlog + dropped "
                    "+ failure drops for all flows"
                ),
            )
        )
        negative = sum(
            1 for f in range(F)
            if self.delivered_bits[f] < -1e-6 or self.backlog_bits[f] < -1e-6
        )
        checks.append(
            InvariantCheck(
                name="fluid-nonnegative",
                ok=negative == 0,
                checked=F,
                violations=negative,
                detail="delivered and backlog stay non-negative",
            )
        )
        buf_ok = self.max_buffer_overuse <= 1e-6
        checks.append(
            InvariantCheck(
                name="fluid-buffer-bounds",
                ok=buf_ok,
                checked=L,
                violations=0 if buf_ok else 1,
                detail="per-link backlog clamped to the buffer bound",
            )
        )
        return tuple(checks)
