"""Packet network substrate.

Models the network of the paper's Appendix: output-queued store-and-forward
switches, finite per-port buffers (200 packets), 1 Mbit/s inter-switch links,
infinitely fast host-switch links, fixed 1000-bit packets, and static routing.
"""

from repro.net.packet import Packet, ServiceClass
from repro.net.flow import FlowId, FlowDescriptor
from repro.net.link import Link
from repro.net.port import OutputPort
from repro.net.node import Node, Switch, Host
from repro.net.routing import StaticRouting, RoutingError
from repro.net.network import Network
from repro.net.topology import chain_topology, single_link_topology, paper_figure1_topology

__all__ = [
    "Packet",
    "ServiceClass",
    "FlowId",
    "FlowDescriptor",
    "Link",
    "OutputPort",
    "Node",
    "Switch",
    "Host",
    "StaticRouting",
    "RoutingError",
    "Network",
    "chain_topology",
    "single_link_topology",
    "paper_figure1_topology",
]
