"""Datacenter fabric topologies and ECMP-style multipath routing.

The paper's topologies top out at a handful of switches; datacenter
fabrics are the modern workload that stresses the same questions
(isolation, jitter, admission) at four orders of magnitude more flows.
This module builds the two canonical families as plain
:class:`~repro.scenario.spec.TopologySpec` values — nothing downstream
needs to know they are fabrics — and adds the one routing ingredient
fabrics require that chains and random graphs do not: *equal-cost
multipath*.  :class:`StaticRouting` deterministically picks a single
BFS shortest path per (src, dst); on a fat-tree that collapses the
whole bisection onto one core switch.  :class:`EcmpPaths` spreads flows
across all shortest paths with a seeded per-flow choice, the software
analogue of hashing a 5-tuple onto an ECMP group.

Topologies:

* :func:`fat_tree_topology` — the k-ary Clos fat-tree (Al-Fares et al.):
  ``k`` pods of ``k/2`` edge and ``k/2`` aggregation switches,
  ``(k/2)^2`` core switches, ``k^3/4`` hosts.  Full bisection bandwidth
  at ``oversubscription=1``; larger values thin the uplink tiers the
  way real deployments do.
* :func:`leaf_spine_topology` — every leaf duplex-connected to every
  spine; hosts hang off leaves.

Both are host-attachment topologies: the host↔edge hop is the
simulator's infinitely-fast attachment, so the first contended tier is
the edge uplink, which is where fabric queueing happens in this model.

Multipath:

* :class:`EcmpPaths` — all-shortest-path DAG per destination (reverse
  BFS level sets) with a seeded per-flow walk.  The same ``(seed,
  flow)`` always takes the same path, in any process, because draws
  come from string-seeded :class:`random.Random` — the same
  determinism contract as the scenario generators.  When a node has a
  single shortest next hop no randomness is consumed, so single-path
  topologies route identically to :class:`StaticRouting`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.net.routing import RoutingError
from repro.scenario import paper
from repro.scenario.spec import HostAttachment, LinkSpec, TopologySpec

#: Default fabric link speed: keep the paper's 1 Mbit/s transmission
#: scale so generated flow populations (85 pps of 1000-bit packets)
#: load fabric links the same way they load every other topology.
EDGE_RATE_BPS = paper.LINK_RATE_BPS


def _duplex(
    src: str, dst: str, rate_bps: float, buffer_packets: int
) -> Tuple[LinkSpec, LinkSpec]:
    return (
        LinkSpec(src=src, dst=dst, rate_bps=rate_bps,
                 buffer_packets=buffer_packets),
        LinkSpec(src=dst, dst=src, rate_bps=rate_bps,
                 buffer_packets=buffer_packets),
    )


def fat_tree_topology(
    k: int = 4,
    hosts_per_edge: int = 0,
    edge_rate_bps: float = EDGE_RATE_BPS,
    oversubscription: float = 1.0,
    buffer_packets: int = paper.BUFFER_PACKETS,
) -> TopologySpec:
    """The k-ary fat-tree: ``k`` pods, ``(k/2)^2`` cores, ``k^3/4`` hosts.

    Node naming: cores ``C-i``, aggregation ``A-<pod>-<i>``, edge
    ``E-<pod>-<i>``, hosts ``H-<pod>-<edge>-<j>``.  Every inter-switch
    link is duplex.  Edge→agg links run at ``edge_rate_bps``; agg→core
    links at ``edge_rate_bps / oversubscription`` (``1.0`` = full
    bisection bandwidth, rearrangeably non-blocking).

    Args:
        k: pod arity; must be even and >= 2.
        hosts_per_edge: hosts attached to each edge switch
            (default ``k/2``, the canonical fat-tree).
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    if oversubscription < 1.0:
        raise ValueError("oversubscription must be >= 1")
    half = k // 2
    hosts_per_edge = hosts_per_edge or half
    core_rate = edge_rate_bps / oversubscription

    cores = [f"C-{i + 1}" for i in range(half * half)]
    nodes: List[str] = list(cores)
    links: List[LinkSpec] = []
    hosts: List[HostAttachment] = []
    for pod in range(k):
        aggs = [f"A-{pod + 1}-{i + 1}" for i in range(half)]
        edges = [f"E-{pod + 1}-{i + 1}" for i in range(half)]
        nodes += aggs + edges
        for edge in edges:
            for agg in aggs:
                links += _duplex(edge, agg, edge_rate_bps, buffer_packets)
        # Aggregation switch i in every pod uplinks to the same stripe
        # of k/2 core switches — the canonical Clos wiring, giving every
        # pod pair (k/2)^2 equal-cost core paths.
        for i, agg in enumerate(aggs):
            for core in cores[i * half:(i + 1) * half]:
                links += _duplex(agg, core, core_rate, buffer_packets)
        for e, edge in enumerate(edges):
            hosts += [
                HostAttachment(host=f"H-{pod + 1}-{e + 1}-{j + 1}",
                               switch=edge)
                for j in range(hosts_per_edge)
            ]
    return TopologySpec(
        nodes=tuple(nodes),
        links=tuple(links),
        host_attachments=tuple(hosts),
        kind="fat-tree",
    )


def leaf_spine_topology(
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    leaf_rate_bps: float = EDGE_RATE_BPS,
    spine_rate_bps: float = 0.0,
    buffer_packets: int = paper.BUFFER_PACKETS,
) -> TopologySpec:
    """A two-tier leaf-spine fabric: every leaf duplex-wired to every
    spine (``L-i`` / ``SP-i``), ``hosts_per_leaf`` hosts per leaf
    (``H-<leaf>-<j>``).

    ``spine_rate_bps`` defaults to ``leaf_rate_bps`` (uniform fabric);
    any leaf pair has exactly ``spines`` equal-cost two-hop paths.
    """
    if leaves < 2 or spines < 1 or hosts_per_leaf < 1:
        raise ValueError(
            "leaf-spine needs >= 2 leaves, >= 1 spine, >= 1 host per leaf"
        )
    spine_rate_bps = spine_rate_bps or leaf_rate_bps
    leaf_names = [f"L-{i + 1}" for i in range(leaves)]
    spine_names = [f"SP-{i + 1}" for i in range(spines)]
    links: List[LinkSpec] = []
    for leaf in leaf_names:
        for spine in spine_names:
            links += _duplex(leaf, spine, spine_rate_bps, buffer_packets)
    hosts = tuple(
        HostAttachment(host=f"H-{l + 1}-{j + 1}", switch=leaf)
        for l, leaf in enumerate(leaf_names)
        for j in range(hosts_per_leaf)
    )
    return TopologySpec(
        nodes=tuple(leaf_names + spine_names),
        links=tuple(links),
        host_attachments=hosts,
        kind="leaf-spine",
    )


class EcmpPaths:
    """Seeded per-flow path choice over the all-shortest-paths DAG.

    Works on the same node graph :class:`StaticRouting` sees (directed
    inter-switch links, bidirectional host attachments).  For each
    destination a reverse BFS yields hop distances; a flow's path is a
    walk that, at every node, picks uniformly among the neighbours one
    hop closer to the destination, drawing from
    ``random.Random(f"ecmp:{seed}:{flow}")`` so the choice is a pure
    function of (topology, seed, flow name) — process-stable and
    identical between the fluid engine and any future packet-engine
    flow-hashing front.
    """

    #: Small FIFO cache behind :meth:`shared`, keyed by the topology
    #: *object* (id) and seed.  Each entry pins its topology alive, so
    #: an id cannot be recycled while its key is cached.  Only
    #: full-graph (no excluded links) choosers live here: link-state
    #: views hang off their parent via :meth:`masked`, each with its own
    #: memos, so a later compile of the same fabric under a different
    #: link state (or seed) can never read another state's walks.
    _shared: Dict[Tuple[int, int], "EcmpPaths"] = {}
    _shared_cap = 4
    #: FIFO cap on per-instance :meth:`masked` views.
    _masked_cap = 8

    @classmethod
    def shared(cls, topology: TopologySpec, seed: int = 0) -> "EcmpPaths":
        """The memo-warm chooser for ``(topology, seed)``.

        Spec generators and the fluid compiler route the same flow
        population over the same topology object moments apart; sharing
        one instance means the second pass reuses the BFS distance maps,
        segment memos, and per-flow walks instead of recomputing them.
        Paths are a pure function of (topology, seed, flow), so a shared
        instance returns exactly what a fresh one would.
        """
        key = (id(topology), int(seed))
        inst = cls._shared.get(key)
        if inst is None:
            inst = cls(topology, seed=seed)
            if len(cls._shared) >= cls._shared_cap:
                del cls._shared[next(iter(cls._shared))]
            cls._shared[key] = inst
        return inst

    def masked(self, down) -> "EcmpPaths":
        """The chooser for this (topology, seed) with ``down`` links
        removed from the graph.

        Link-state views are cached per exact down-set on *this*
        instance, each with fully independent distance/segment/walk
        memos — masking never writes into the full-graph memos, and
        ``masked(frozenset())`` is ``self``, so when the last failure
        heals the caller is handed back the original object and its
        original (bit-identical) paths.  Masking a masked view composes
        (the down-sets union).
        """
        dead = frozenset(down) | self.exclude_links
        if dead == self.exclude_links:
            return self
        inst = self._masked.get(dead)
        if inst is None:
            inst = type(self)(
                self.topology, seed=self.seed, exclude_links=dead
            )
            if len(self._masked) >= self._masked_cap:
                del self._masked[next(iter(self._masked))]
            self._masked[dead] = inst
        return inst

    def __init__(
        self,
        topology: TopologySpec,
        seed: int = 0,
        exclude_links: frozenset = frozenset(),
    ):
        self.topology = topology
        self.seed = int(seed)
        self.exclude_links = frozenset(exclude_links)
        self._masked: Dict[frozenset, "EcmpPaths"] = {}
        adj: Dict[str, List[str]] = {n: [] for n in topology.nodes}
        radj: Dict[str, List[str]] = {n: [] for n in topology.nodes}

        def edge(src: str, dst: str) -> None:
            adj.setdefault(src, []).append(dst)
            radj.setdefault(dst, []).append(src)

        for link in topology.links:
            if link.name in self.exclude_links:
                continue
            edge(link.src, link.dst)
        for att in topology.host_attachments:
            adj.setdefault(att.host, [])
            radj.setdefault(att.host, [])
            edge(att.host, att.switch)
            edge(att.switch, att.host)
        self._adj = {n: sorted(set(out)) for n, out in adj.items()}
        self._radj = {n: sorted(set(out)) for n, out in radj.items()}
        self._dist_to: Dict[str, Dict[str, int]] = {}
        # Per-destination memo of each branch point's choice structure
        # (identical for every flow): each equal-cost next hop extended
        # through the following no-choice nodes to the next branch point
        # or the destination, so a walk consumes one dict hit and one
        # extend per *draw* instead of one per hop.  Plus the full walk
        # for (src, dst) pairs whose walk never branches (no draw
        # consumed, so every flow takes the same path).
        self._segments_to: Dict[str, Dict[str, List[Tuple[str, ...]]]] = {}
        self._single_path: Dict[Tuple[str, str], List[str]] = {}
        self._gateway: Dict[str, Optional[str]] = {}
        # Draw-consuming walks memoized per (src, dst, flow): the walk
        # is a pure function of that triple, and :meth:`shared` callers
        # resolve the same population twice (spec build, then the fluid
        # compiler).  Grows with the flows routed by this instance.
        self._flow_path: Dict[Tuple[str, str, str], Tuple[str, ...]] = {}
        # One reusable generator, re-seeded per flow: seeding fully
        # resets the Mersenne state, so draws are identical to a fresh
        # ``random.Random(key)`` without the per-flow allocation.
        self._rng = random.Random()

    def _distances(self, dst: str) -> Dict[str, int]:
        """Hop count from every node *to* ``dst`` (reverse BFS)."""
        cached = self._dist_to.get(dst)
        if cached is not None:
            return cached
        if dst not in self._radj:
            raise RoutingError(f"unknown node {dst!r}")
        dist = {dst: 0}
        frontier = [dst]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for prev in self._radj[node]:
                    if prev not in dist:
                        dist[prev] = dist[node] + 1
                        nxt.append(prev)
            frontier = nxt
        self._dist_to[dst] = dist
        return dist

    def _gateway_of(self, dst: str) -> Optional[str]:
        """The single node every path into ``dst`` crosses (a host's
        attachment switch), or ``None`` when ``dst`` has several
        in-neighbours.  Routing toward such a ``dst`` is routing toward
        the gateway plus the final attachment hop — all hosts on one
        switch then share that switch's next-hop memo."""
        gate = self._gateway.get(dst, False)
        if gate is False:
            ins = self._radj.get(dst)
            gate = (
                ins[0]
                if ins is not None and len(ins) == 1 and ins[0] != dst
                else None
            )
            self._gateway[dst] = gate
        return gate

    def _build_segment(
        self, here: str, target: str, segs: Dict[str, List[Tuple[str, ...]]]
    ) -> Optional[List[Tuple[str, ...]]]:
        """Memoize ``here``'s choice structure toward ``target``: its
        equal-cost next hops, each extended through every following
        no-choice node up to the next branch point (or ``target``).
        Draws are consumed only at branch points, exactly as the
        uncompressed node-by-node walk would consume them.  Returns
        ``None`` when ``here`` cannot reach ``target``."""
        dist = self._distances(target)
        if here not in dist:
            return None
        adj = self._adj
        max_chain = len(adj)
        closer = dist[here] - 1
        options: List[Tuple[str, ...]] = []
        for n in adj[here]:
            if dist.get(n) != closer:
                continue
            chain = [n]
            while n != target:
                adj_n = adj[n]
                if len(adj_n) == 1:
                    # Degree-1 detour (an attachment hop): the only
                    # neighbour is the only way onward.
                    n = adj_n[0]
                else:
                    lvl = dist[n] - 1
                    nxt = [m for m in adj_n if dist.get(m) == lvl]
                    if len(nxt) != 1:
                        break
                    n = nxt[0]
                chain.append(n)
                if len(chain) > max_chain:  # pragma: no cover - guard
                    raise RoutingError(f"no route from {here} to {target}")
            options.append(tuple(chain))
        segs[here] = options
        return options

    def path(self, src: str, dst: str, flow: str) -> List[str]:
        """The seeded shortest path for ``flow`` from ``src`` to ``dst``."""
        single = self._single_path.get((src, dst))
        if single is not None:
            return list(single)
        memo = self._flow_path.get((src, dst, flow))
        if memo is not None:
            return list(memo)
        target, tail = dst, None
        gate = self._gateway.get(dst, False)
        if gate is False:
            gate = self._gateway_of(dst)
        if gate is not None and src != dst:
            if src == gate:
                walk = [src, dst]
                self._single_path[(src, dst)] = walk
                return list(walk)
            target, tail = gate, dst
        segs = self._segments_to.setdefault(target, {})
        segs_get = segs.get
        adj = self._adj
        draw = None  # lazily seeded: single-path flows take no draw
        here, walk = src, [src]
        max_walk = len(adj)
        while here != target:
            options = segs_get(here)
            if options is None:
                adj_here = adj[here]
                if len(adj_here) == 1:
                    # A degree-1 node's only neighbour is its only way
                    # toward any destination (hosts, notably — memoizing
                    # those per (dst, host) would grow with the flows).
                    here = adj_here[0]
                    walk.append(here)
                    if len(walk) > max_walk:
                        # Degree-1 ping-pong with an unreachable dst;
                        # the dist lookup below catches it eagerly.
                        raise RoutingError(
                            f"no route from {src} to {dst}"
                        )
                    continue
                options = self._build_segment(here, target, segs)
                if options is None:
                    raise RoutingError(f"no route from {src} to {dst}")
            count = len(options)
            if count == 1:
                chain = options[0]
            elif count == 0:  # pragma: no cover - dist guarantees a hop
                raise RoutingError(f"no route from {here} to {dst}")
            else:
                if draw is None:
                    rng = self._rng
                    rng.seed(f"ecmp:{self.seed}:{flow}")
                    # randrange(n) for a positive int is exactly
                    # _randbelow(n); bind the inner draw when present.
                    draw = getattr(rng, "_randbelow", rng.randrange)
                chain = options[draw(count)]
            walk.extend(chain)
            here = chain[-1]
        if tail is not None:
            walk.append(tail)
        if draw is None:
            self._single_path[(src, dst)] = walk
            return list(walk)
        self._flow_path[(src, dst, flow)] = tuple(walk)
        return walk
