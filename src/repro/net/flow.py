"""Flow identity and descriptors.

A *flow* is the unit of service commitment: a (source, destination,
service-class) stream with an associated FlowSpec (see
:mod:`repro.core.service`).  The network substrate only needs identity and
path; the service semantics live in ``repro.core``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.net.packet import ServiceClass

FlowId = str


@dataclasses.dataclass
class FlowDescriptor:
    """Network-level view of a flow.

    Attributes:
        flow_id: unique flow name.
        source: source host name.
        destination: destination host name.
        service_class: requested commitment level.
        path: ordered list of node names the flow traverses (filled in at
            establishment time from the routing table).
        priority_class: predicted-service class index at each switch.  The
            paper allows a different level per switch; we keep one level per
            flow (the common case) but the unified scheduler consults the
            packet header, so per-switch remapping would be a local change.
        clock_rate_bps: WFQ clock rate r (guaranteed flows only), bits/s.
    """

    flow_id: FlowId
    source: str
    destination: str
    service_class: ServiceClass
    path: List[str] = dataclasses.field(default_factory=list)
    priority_class: int = 0
    clock_rate_bps: Optional[float] = None

    @property
    def hop_count(self) -> int:
        """Number of links traversed (nodes on path minus one)."""
        return max(len(self.path) - 1, 0)

    def inter_switch_hops(self) -> int:
        """Number of *inter-switch* links, the paper's "path length".

        Host-switch links are infinitely fast and contribute no queueing, so
        the paper counts only switch-to-switch links.  Path layout is
        host, s_1, ..., s_k, host, giving k-1 inter-switch links.
        """
        switches = max(len(self.path) - 2, 0)
        return max(switches - 1, 0)
