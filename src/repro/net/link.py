"""Point-to-point simplex links.

A link transmits one packet at a time at a fixed bit rate, then hands the
packet to the receiving node after a propagation delay.  Links are simplex;
the topology builder installs one per direction where needed (the paper's
experiments send all traffic one way down the chain).

Utilization accounting lives here: the paper quotes per-link utilization
(83.5 %, >99 %), which is busy-time divided by elapsed time.

Links can also *fail* (:meth:`Link.fail` / :meth:`Link.restore`, driven by
the :mod:`repro.control` plane).  A failure kills whatever is on the wire
— the packet mid-transmission and any packets still propagating — and
books each kill into a per-flow ``failure_drops`` ledger so the
conservation invariants close across outages instead of reporting
vanished packets.  Wire events are scheduled through the simulator's
uncancellable fast path, so kills are detected lazily via an epoch
counter rather than by cancelling events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.net.packet import Packet
from repro.stats.timeseries import TimeWeightedValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.node import Node


class Link:
    """A simplex link from one node's output port to a receiving node.

    Args:
        sim: the simulator.
        name: link name, e.g. ``"S-1->S-2"``.
        rate_bps: transmission rate in bits/s (1 Mbit/s in the paper).
        propagation_delay: one-way propagation latency in seconds.  The
            paper's delay unit ignores propagation (it reports queueing
            delay), so experiments default this to 0; it is modelled because
            a real ISPN has it.
        loss_probability: independent per-packet corruption probability.
            The paper's links are lossless (all loss is buffer overflow);
            this knob exists for failure-injection tests — e.g. TCP
            recovery under random loss rather than congestion loss.
        loss_rng: seeded ``random.Random`` driving the loss draws; required
            when ``loss_probability > 0`` so experiments stay reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        propagation_delay: float = 0.0,
        loss_probability: float = 0.0,
        loss_rng=None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if loss_probability > 0.0 and loss_rng is None:
            raise ValueError(
                "a seeded loss_rng is required when loss_probability > 0"
            )
        self.sim = sim
        self.name = name
        self.rate_bps = float(rate_bps)
        self.propagation_delay = float(propagation_delay)
        self.receiver: Optional["Node"] = None
        self.busy = False
        # Link-state: a down link accepts no transmissions.  While down,
        # ``busy`` is held True so the owning port's existing idle checks
        # keep packets queued with zero extra hot-path cost; ``up`` is the
        # semantic truth.  ``_epoch`` bumps on every failure; in-flight
        # completion/delivery events compare their birth epoch against it
        # to detect that the wire died under them (fast-path events cannot
        # be cancelled).
        self.up = True
        self._epoch = 0
        self._complete_at = -1.0
        # Per-flow ledger of packets killed on this wire by link failures,
        # plus the total.  Read by the control plane's stats and by the
        # reroute-aware conservation invariant.
        self.failure_drops: Dict[str, int] = {}
        self.packets_failed = 0
        self._busy_tracker = TimeWeightedValue(start_time=sim.now, initial=0.0)
        self.loss_probability = float(loss_probability)
        self._loss_rng = loss_rng
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_delivered = 0
        # Packets that finished transmitting but are still propagating
        # toward the receiver (only ever non-zero on delayed links).  The
        # conservation invariants in :mod:`repro.validate` read this plus
        # ``busy`` to account for every packet on the wire.
        self.in_transit = 0
        self.bits_sent = 0
        # Called when a transmission completes and the link goes idle; the
        # owning OutputPort uses it to pull the next packet.
        self.on_idle: Optional[Callable[[], None]] = None
        # Batched-service variant: when set, completion events call this
        # *instead of* ``on_idle`` so the port's burst loop can serve
        # several packets inside the one event (see OutputPort).  Other
        # idle transitions — notably :meth:`restore` — still use
        # ``on_idle``: their callers run code after the call returns and
        # must not observe an arithmetically advanced clock.
        self.on_complete_idle: Optional[Callable[[], None]] = None
        # Hot-path bindings: the link is simplex and transmits one packet
        # at a time, so the in-flight packet lives on the link instead of
        # in a per-packet closure, and the completion callback is one bound
        # method scheduled through a pre-bound ``schedule``.
        self._in_flight: Optional[Packet] = None
        self._schedule = sim.schedule

    def connect(self, receiver: "Node") -> None:
        self.receiver = receiver

    def transmission_time(self, packet: Packet) -> float:
        """Seconds needed to clock the packet onto the wire."""
        return packet.size_bits / self.rate_bps

    def transmit(self, packet: Packet) -> None:
        """Begin transmitting ``packet``.  The link must be idle.

        On completion the packet is delivered to the receiver after the
        propagation delay, and ``on_idle`` fires so the port can send more.
        """
        if self.busy:
            if not self.up:
                raise RuntimeError(f"link {self.name} is down")
            raise RuntimeError(f"link {self.name} is busy")
        if self.receiver is None:
            raise RuntimeError(f"link {self.name} is not connected")
        self.busy = True
        self._busy_tracker.update(self.sim.now, 1.0)
        self._in_flight = packet
        transmission = packet.size_bits / self.rate_bps
        self._complete_at = self.sim.now + transmission
        self._schedule(transmission, self._complete)

    def _complete(self) -> None:
        packet = self._in_flight
        if packet is None or self.sim.now != self._complete_at:
            # Stale completion: this transmission was killed by a link
            # failure (fail() ledgered the packet; fast-path events
            # cannot be cancelled, so the orphaned event no-ops here).
            return
        self._in_flight = None
        self.busy = False
        self._busy_tracker.update(self.sim.now, 0.0)
        self.packets_sent += 1
        self.bits_sent += packet.size_bits
        receiver = self.receiver
        if (
            self.loss_probability > 0.0
            and self._loss_rng.random() < self.loss_probability
        ):
            # The packet was corrupted on the wire: the link was occupied
            # (utilization already counted) but nothing arrives.
            self.packets_lost += 1
            idle = self.on_complete_idle
            if idle is not None:
                idle()
            elif self.on_idle is not None:
                self.on_idle()
            return
        if self.propagation_delay > 0:
            self.in_transit += 1
            epoch = self._epoch

            def deliver() -> None:
                self.in_transit -= 1
                if epoch != self._epoch:
                    # The link failed while the packet was propagating:
                    # it died on the wire and joins the failure ledger.
                    self._ledger_failure(packet)
                    return
                self.packets_delivered += 1
                receiver.receive(packet)

            self.sim.schedule(self.propagation_delay, deliver)
        else:
            self.packets_delivered += 1
            receiver.receive(packet)
        idle = self.on_complete_idle
        if idle is not None:
            idle()
        elif self.on_idle is not None:
            self.on_idle()

    def serve_inline(self, packet: Packet, complete_at: float) -> None:
        """Transmit *and* complete ``packet`` arithmetically (batched
        service).

        The caller — the owning port's burst loop, running inside a link
        completion event — has already proven that no other event can fire
        in ``(now, complete_at]``, so this replays exactly what
        :meth:`transmit` followed by :meth:`_complete` would have done
        without scheduling the completion event: both utilization
        bookings, the loss draw, and delivery (or the propagation closure)
        at ``complete_at``.  Neither ``on_idle`` nor ``on_complete_idle``
        fires — the burst loop itself decides whether to keep serving.
        """
        sim = self.sim
        self._busy_tracker.update(sim.now, 1.0)
        sim.advance_to(complete_at)
        self._complete_at = complete_at
        self._busy_tracker.update(complete_at, 0.0)
        self.packets_sent += 1
        self.bits_sent += packet.size_bits
        if (
            self.loss_probability > 0.0
            and self._loss_rng.random() < self.loss_probability
        ):
            self.packets_lost += 1
            return
        if self.propagation_delay > 0:
            self.in_transit += 1
            epoch = self._epoch
            receiver = self.receiver

            def deliver() -> None:
                self.in_transit -= 1
                if epoch != self._epoch:
                    self._ledger_failure(packet)
                    return
                self.packets_delivered += 1
                receiver.receive(packet)

            sim.schedule(self.propagation_delay, deliver)
            return
        self.packets_delivered += 1
        self.receiver.receive(packet)

    # ------------------------------------------------------------------
    # Link-state (control plane)
    # ------------------------------------------------------------------
    def _ledger_failure(self, packet: Packet) -> None:
        self.packets_failed += 1
        drops = self.failure_drops
        drops[packet.flow_id] = drops.get(packet.flow_id, 0) + 1

    def fail(self) -> None:
        """Take the link down, killing whatever is on the wire.

        The packet mid-transmission (if any) is ledgered immediately;
        packets still propagating are ledgered lazily when their delivery
        events fire and notice the epoch bump.  While down, ``busy`` is
        held True so ports keep packets queued without new idle-path
        checks.  Idempotent.
        """
        if not self.up:
            return
        self.up = False
        self._epoch += 1
        if self.busy:
            packet = self._in_flight
            self._in_flight = None
            self._busy_tracker.update(self.sim.now, 0.0)
            self._ledger_failure(packet)
        self.busy = True

    def restore(self) -> None:
        """Bring the link back up and let the owning port send again.

        Pre-failure wire events stay dead (the epoch is never rolled
        back).  Idempotent.
        """
        if self.up:
            return
        self.up = True
        self.busy = False
        if self.on_idle is not None:
            self.on_idle()

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of time the link has been transmitting."""
        return self._busy_tracker.average(self.sim.now if now is None else now)

    def reset_utilization(self) -> None:
        """Restart utilization accounting (used to skip warm-up transients)."""
        self._busy_tracker.reset(self.sim.now)
        self.packets_sent = 0
        self.bits_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = ("busy" if self.busy else "idle") if self.up else "down"
        return f"<Link {self.name} {self.rate_bps / 1e6:.2f}Mbps {state}>"
