"""Point-to-point simplex links.

A link transmits one packet at a time at a fixed bit rate, then hands the
packet to the receiving node after a propagation delay.  Links are simplex;
the topology builder installs one per direction where needed (the paper's
experiments send all traffic one way down the chain).

Utilization accounting lives here: the paper quotes per-link utilization
(83.5 %, >99 %), which is busy-time divided by elapsed time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.engine import Simulator
from repro.net.packet import Packet
from repro.stats.timeseries import TimeWeightedValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.node import Node


class Link:
    """A simplex link from one node's output port to a receiving node.

    Args:
        sim: the simulator.
        name: link name, e.g. ``"S-1->S-2"``.
        rate_bps: transmission rate in bits/s (1 Mbit/s in the paper).
        propagation_delay: one-way propagation latency in seconds.  The
            paper's delay unit ignores propagation (it reports queueing
            delay), so experiments default this to 0; it is modelled because
            a real ISPN has it.
        loss_probability: independent per-packet corruption probability.
            The paper's links are lossless (all loss is buffer overflow);
            this knob exists for failure-injection tests — e.g. TCP
            recovery under random loss rather than congestion loss.
        loss_rng: seeded ``random.Random`` driving the loss draws; required
            when ``loss_probability > 0`` so experiments stay reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float,
        propagation_delay: float = 0.0,
        loss_probability: float = 0.0,
        loss_rng=None,
    ):
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if loss_probability > 0.0 and loss_rng is None:
            raise ValueError(
                "a seeded loss_rng is required when loss_probability > 0"
            )
        self.sim = sim
        self.name = name
        self.rate_bps = float(rate_bps)
        self.propagation_delay = float(propagation_delay)
        self.receiver: Optional["Node"] = None
        self.busy = False
        self._busy_tracker = TimeWeightedValue(start_time=sim.now, initial=0.0)
        self.loss_probability = float(loss_probability)
        self._loss_rng = loss_rng
        self.packets_sent = 0
        self.packets_lost = 0
        self.packets_delivered = 0
        # Packets that finished transmitting but are still propagating
        # toward the receiver (only ever non-zero on delayed links).  The
        # conservation invariants in :mod:`repro.validate` read this plus
        # ``busy`` to account for every packet on the wire.
        self.in_transit = 0
        self.bits_sent = 0
        # Called when a transmission completes and the link goes idle; the
        # owning OutputPort uses it to pull the next packet.
        self.on_idle: Optional[Callable[[], None]] = None
        # Hot-path bindings: the link is simplex and transmits one packet
        # at a time, so the in-flight packet lives on the link instead of
        # in a per-packet closure, and the completion callback is one bound
        # method scheduled through a pre-bound ``schedule``.
        self._in_flight: Optional[Packet] = None
        self._schedule = sim.schedule

    def connect(self, receiver: "Node") -> None:
        self.receiver = receiver

    def transmission_time(self, packet: Packet) -> float:
        """Seconds needed to clock the packet onto the wire."""
        return packet.size_bits / self.rate_bps

    def transmit(self, packet: Packet) -> None:
        """Begin transmitting ``packet``.  The link must be idle.

        On completion the packet is delivered to the receiver after the
        propagation delay, and ``on_idle`` fires so the port can send more.
        """
        if self.busy:
            raise RuntimeError(f"link {self.name} is busy")
        if self.receiver is None:
            raise RuntimeError(f"link {self.name} is not connected")
        self.busy = True
        self._busy_tracker.update(self.sim.now, 1.0)
        self._in_flight = packet
        self._schedule(packet.size_bits / self.rate_bps, self._complete)

    def _complete(self) -> None:
        packet = self._in_flight
        self._in_flight = None
        self.busy = False
        self._busy_tracker.update(self.sim.now, 0.0)
        self.packets_sent += 1
        self.bits_sent += packet.size_bits
        receiver = self.receiver
        if (
            self.loss_probability > 0.0
            and self._loss_rng.random() < self.loss_probability
        ):
            # The packet was corrupted on the wire: the link was occupied
            # (utilization already counted) but nothing arrives.
            self.packets_lost += 1
            if self.on_idle is not None:
                self.on_idle()
            return
        if self.propagation_delay > 0:
            self.in_transit += 1

            def deliver() -> None:
                self.in_transit -= 1
                self.packets_delivered += 1
                receiver.receive(packet)

            self.sim.schedule(self.propagation_delay, deliver)
        else:
            self.packets_delivered += 1
            receiver.receive(packet)
        if self.on_idle is not None:
            self.on_idle()

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of time the link has been transmitting."""
        return self._busy_tracker.average(self.sim.now if now is None else now)

    def reset_utilization(self) -> None:
        """Restart utilization accounting (used to skip warm-up transients)."""
        self._busy_tracker.reset(self.sim.now)
        self.packets_sent = 0
        self.bits_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "busy" if self.busy else "idle"
        return f"<Link {self.name} {self.rate_bps / 1e6:.2f}Mbps {state}>"
