"""Network assembly and orchestration.

A :class:`Network` owns the simulator wiring for one experiment: switches,
hosts, links, output ports (each with a scheduler produced by a caller-
supplied factory), and the static routing table.  The experiment modules in
:mod:`repro.experiments` build their topologies through this class.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.link import Link
from repro.net.node import Host, Switch
from repro.net.port import OutputPort
from repro.net.routing import StaticRouting
from repro.sched.base import Scheduler
from repro.sim.engine import Simulator

# A scheduler factory receives the port name and the link it will feed, so
# rate-aware disciplines (WFQ, VirtualClock, the unified scheduler) can size
# themselves off the link speed.
SchedulerFactory = Callable[[str, Link], Scheduler]

DEFAULT_LINK_RATE_BPS = 1_000_000  # 1 Mbit/s, the paper's inter-switch rate
DEFAULT_BUFFER_PACKETS = 200  # the paper's switch buffer size


class Network:
    """Container wiring switches, hosts, links, and routing together."""

    def __init__(self, sim: Simulator, scheduler_factory: SchedulerFactory):
        self.sim = sim
        self.scheduler_factory = scheduler_factory
        self.switches: Dict[str, Switch] = {}
        self.hosts: Dict[str, Host] = {}
        self.links: Dict[str, Link] = {}
        self.ports: Dict[str, OutputPort] = {}
        self.routing = StaticRouting()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str) -> Switch:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name}")
        switch = Switch(self.sim, name)
        switch.next_hop_fn = lambda dest, _name=name: self.routing.next_hop(_name, dest)
        self.switches[name] = switch
        self.routing.add_node(name)
        return switch

    def add_host(self, name: str, switch_name: str) -> Host:
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name {name}")
        switch = self.switches[switch_name]
        host = Host(self.sim, name)
        host.attach(switch)
        self.hosts[name] = host
        # Host links are infinitely fast; routing still needs the edges.
        self.routing.add_edge(name, switch_name)
        self.routing.add_edge(switch_name, name)
        return host

    def add_link(
        self,
        src_switch: str,
        dst_switch: str,
        rate_bps: float = DEFAULT_LINK_RATE_BPS,
        propagation_delay: float = 0.0,
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    ) -> Link:
        """Install a simplex link src -> dst with its output port.

        The network-wide factory receives the port (link) name, so it is
        already per-port: discipline mixes (FIFO edges feeding a WFQ
        bottleneck) dispatch on that name — see
        :func:`repro.scenario.disciplines.resolve_port_discipline`.
        """
        src = self.switches[src_switch]
        dst = self.switches[dst_switch]
        link_name = f"{src_switch}->{dst_switch}"
        if link_name in self.links:
            raise ValueError(f"duplicate link {link_name}")
        link = Link(self.sim, link_name, rate_bps, propagation_delay)
        link.connect(dst)
        scheduler = self.scheduler_factory(link_name, link)
        port = src.add_port(dst_switch, scheduler, link, buffer_packets)
        self.links[link_name] = link
        self.ports[link_name] = port
        self.routing.add_edge(src_switch, dst_switch)
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        rate_bps: float = DEFAULT_LINK_RATE_BPS,
        propagation_delay: float = 0.0,
        buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    ) -> None:
        """Convenience: simplex links in both directions."""
        self.add_link(a, b, rate_bps, propagation_delay, buffer_packets)
        self.add_link(b, a, rate_bps, propagation_delay, buffer_packets)

    def install_routing(self, routing) -> None:
        """Swap in a fresh routing table, SDN-style.

        Every switch's ``next_hop_fn`` reads ``self.routing`` through a
        closure, so one assignment here re-routes the whole network — the
        control plane (:mod:`repro.control`) installs recomputed SPF
        tables through this seam after each link-state change.  The
        object only needs ``next_hop(here, dest)`` and ``path(src, dst)``.
        """
        self.routing = routing

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def path(self, src_host: str, dst_host: str) -> List[str]:
        """Node path from one host to another (inclusive)."""
        return self.routing.path(src_host, dst_host)

    def links_on_path(self, src_host: str, dst_host: str) -> List[Link]:
        """The inter-switch links a host-to-host flow traverses."""
        return [
            self.links[name]
            for name in self.link_names_on_path(src_host, dst_host)
        ]

    def link_names_on_path(self, src_host: str, dst_host: str) -> List[str]:
        """Names of the inter-switch links between two hosts, in path order.

        Raises:
            RoutingError: if no route exists between the endpoints.
        """
        nodes = self.path(src_host, dst_host)
        out = []
        for here, nxt in zip(nodes, nodes[1:]):
            if f"{here}->{nxt}" in self.links:  # host<->switch hops have none
                out.append(f"{here}->{nxt}")
        return out

    def port_for_link(self, link_name: str) -> OutputPort:
        return self.ports[link_name]

    def total_drops(self) -> int:
        return sum(port.packets_dropped for port in self.ports.values())

    def reset_measurements(self) -> None:
        """Restart link utilization accounting on every link (warm-up skip)."""
        for link in self.links.values():
            link.reset_utilization()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Network switches={len(self.switches)} hosts={len(self.hosts)} "
            f"links={len(self.links)}>"
        )
