"""Network nodes: switches and hosts.

Per the paper's Appendix:

* hosts connect to their switch over an infinitely fast link, so host
  traffic enters the switch with no queueing or transmission delay;
* switches are store-and-forward and output-queued;
* delivery from the last switch to the destination host is likewise
  instantaneous.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.port import OutputPort
from repro.net.routing import RoutingError
from repro.sched.base import Scheduler
from repro.sim.engine import Simulator

PacketHandler = Callable[[Packet], None]


class Node:
    """Base class for anything that can receive packets."""

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Host(Node):
    """An end host: attaches to one switch, sources and sinks packets.

    Packet delivery is dispatched per flow id; a default handler catches
    packets for flows without a registered receiver (e.g. raw datagram
    tests).
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.attached_switch: Optional["Switch"] = None
        self._flow_handlers: Dict[str, PacketHandler] = {}
        self.default_handler: Optional[PacketHandler] = None
        self.packets_received = 0
        self.packets_sent = 0

    def attach(self, switch: "Switch") -> None:
        if self.attached_switch is not None:
            raise RuntimeError(f"host {self.name} is already attached")
        self.attached_switch = switch
        switch.attach_host(self)

    def register_flow_handler(self, flow_id: str, handler: PacketHandler) -> None:
        """Route delivered packets of ``flow_id`` to ``handler`` (a sink,
        a playback buffer, or a TCP endpoint)."""
        if flow_id in self._flow_handlers:
            raise ValueError(f"flow {flow_id} already has a handler on {self.name}")
        self._flow_handlers[flow_id] = handler

    def unregister_flow_handler(self, flow_id: str) -> None:
        """Remove a flow's handler (flow teardown); late packets fall back
        to ``default_handler``.  Unknown flows are a no-op."""
        self._flow_handlers.pop(flow_id, None)

    def send(self, packet: Packet) -> None:
        """Inject a packet into the network via the attached switch.

        The host-switch link is infinitely fast (Appendix), so the packet
        arrives at the switch immediately.
        """
        if self.attached_switch is None:
            raise RuntimeError(f"host {self.name} is not attached to a switch")
        self.packets_sent += 1
        self.attached_switch.receive(packet)

    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        handler = self._flow_handlers.get(packet.flow_id, self.default_handler)
        if handler is not None:
            handler(packet)


class Switch(Node):
    """An output-queued store-and-forward switch.

    Forwarding: a received packet destined to a host attached to this switch
    is delivered instantly (infinitely fast host link); otherwise the
    routing function names the next-hop node and the packet joins that
    output port's queue.
    """

    def __init__(self, sim: Simulator, name: str):
        super().__init__(sim, name)
        self.ports: Dict[str, OutputPort] = {}  # keyed by next-hop node name
        self.attached_hosts: Dict[str, Host] = {}
        # Set by Network when the switch is added; maps (here, destination)
        # to the next-hop node name.
        self.next_hop_fn: Optional[Callable[[str], str]] = None
        self.packets_forwarded = 0
        # Per-flow ledger of packets dropped here because no route to
        # their destination existed (a link failure partitioned the
        # network).  The reroute-aware conservation invariant reads it.
        self.no_route_drops: Dict[str, int] = {}

    def attach_host(self, host: Host) -> None:
        self.attached_hosts[host.name] = host

    def add_port(
        self,
        neighbor: str,
        scheduler: Scheduler,
        link: Link,
        buffer_packets: int = 200,
    ) -> OutputPort:
        """Create the output port facing ``neighbor`` (link receiver)."""
        if neighbor in self.ports:
            raise ValueError(f"switch {self.name} already has a port to {neighbor}")
        port = OutputPort(
            self.sim,
            name=f"{self.name}->{neighbor}",
            scheduler=scheduler,
            link=link,
            buffer_packets=buffer_packets,
        )
        self.ports[neighbor] = port
        return port

    def port_to(self, neighbor: str) -> OutputPort:
        try:
            return self.ports[neighbor]
        except KeyError:
            raise KeyError(f"switch {self.name} has no port to {neighbor}") from None

    def receive(self, packet: Packet) -> None:
        destination = packet.destination
        host = self.attached_hosts.get(destination)
        if host is not None:
            host.receive(packet)
            return
        if self.next_hop_fn is None:
            raise RuntimeError(f"switch {self.name} has no routing function")
        try:
            next_hop = self.next_hop_fn(destination)
        except RoutingError:
            # The destination is unreachable (a link failure partitioned
            # the network): the packet is dropped here, ledgered so the
            # conservation invariants close.  Zero-cost when no exception
            # is raised, so static-route runs are unaffected.
            drops = self.no_route_drops
            drops[packet.flow_id] = drops.get(packet.flow_id, 0) + 1
            return
        port = self.ports.get(next_hop)
        if port is None:
            raise RuntimeError(
                f"switch {self.name}: route to {destination} via {next_hop} "
                f"but no such port"
            )
        self.packets_forwarded += 1
        port.enqueue(packet)
