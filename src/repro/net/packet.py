"""Packets and service classes.

The packet header carries exactly the scheduling state the paper calls for:

* the flow id (so switches can map a packet to its WFQ flow / priority class),
* the service class (guaranteed / predicted / datagram),
* the **FIFO+ jitter offset** field (Section 6): the accumulated difference
  between this packet's per-hop delays and its class's average delay.  The
  paper proposes this field become part of the packet header architecture
  (Section 12); here it literally is one.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Any, Dict, Optional

_packet_ids = itertools.count()


class ServiceClass(enum.Enum):
    """The three levels of service commitment (Section 3)."""

    GUARANTEED = "guaranteed"
    PREDICTED = "predicted"
    DATAGRAM = "datagram"

    @property
    def is_realtime(self) -> bool:
        return self is not ServiceClass.DATAGRAM


@dataclasses.dataclass(slots=True)
class Packet:
    """A network packet.

    Attributes:
        packet_id: globally unique id (diagnostics, conservation checks).
        flow_id: id of the flow this packet belongs to.
        size_bits: packet size in bits (the paper uses 1000 everywhere).
        created_at: source generation timestamp (end-to-end delay baseline).
        source: name of the originating host.
        destination: name of the destination host.
        service_class: guaranteed / predicted / datagram.
        priority_class: predicted-service priority level (0 = highest); for
            datagram traffic this is the lowest level by construction in the
            unified scheduler, and it is unused for guaranteed flows.
        jitter_offset: FIFO+ accumulated (delay - class average) in seconds.
        drop_preference: Section 10 extension; higher = drop/queue-behind
            first within the same delay class.
        tagged: set when an edge conformance check found the packet
            non-conforming but policy was TAG rather than DROP.
        sequence: per-flow sequence number (playback and TCP use it).
        enqueued_at: timestamp of arrival into the current output port; the
            port sets it, schedulers read it; it is per-hop scratch state.
        queueing_delay: accumulated time spent *waiting* in queues across all
            hops so far (excludes transmission and propagation) — the
            quantity the paper's tables report.
        payload: opaque per-protocol data (TCP segments ride here).
    """

    flow_id: str
    size_bits: int
    created_at: float
    source: str
    destination: str
    service_class: ServiceClass = ServiceClass.DATAGRAM
    priority_class: int = 0
    jitter_offset: float = 0.0
    drop_preference: int = 0
    tagged: bool = False
    sequence: int = 0
    enqueued_at: float = 0.0
    queueing_delay: float = 0.0
    payload: Optional[Dict[str, Any]] = None
    packet_id: int = dataclasses.field(default_factory=lambda: next(_packet_ids))
    hops: int = 0

    def queueing_key(self) -> float:
        """FIFO+ ordering key: the *expected* arrival time at this hop.

        A packet that has so far been delayed more than its class average
        (positive offset) is treated as if it arrived earlier, so it is
        scheduled sooner; a packet that has been lucky is pushed back.
        """
        return self.enqueued_at - self.jitter_offset

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet #{self.packet_id} flow={self.flow_id} "
            f"{self.source}->{self.destination} {self.service_class.value} "
            f"seq={self.sequence}>"
        )
