"""Output ports: finite buffer + pluggable scheduler + link.

This is the seam the whole reproduction turns on.  An :class:`OutputPort`
owns a :class:`~repro.sched.base.Scheduler`; comparing WFQ vs FIFO vs FIFO+
vs the unified algorithm (Tables 1-3) is a one-line scheduler swap with all
queueing/link mechanics identical.

Buffering follows the Appendix: each switch port buffers up to 200 packets;
arrivals to a full buffer are dropped (tail drop by default; schedulers may
nominate a push-out victim instead, which the Section 10 drop-preference
extension uses).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.sched.base import Scheduler
from repro.sim.engine import Simulator

# Listener signatures: (packet, now) for enqueue/drop, and
# (packet, now, wait_seconds) for departures.
EnqueueListener = Callable[[Packet, float], None]
DropListener = Callable[[Packet, float], None]
DepartListener = Callable[[Packet, float, float], None]


def _batching_disabled() -> bool:
    """``REPRO_BATCHED_LINKS=0`` turns batched link service off globally
    (read at port construction; the bit-identity harness flips it)."""
    value = os.environ.get("REPRO_BATCHED_LINKS", "").strip().lower()
    return value in ("0", "false", "no")


class OutputPort:
    """An output-queued port: scheduler + finite buffer + one link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        scheduler: Scheduler,
        link: Link,
        buffer_packets: int = 200,
    ):
        if buffer_packets <= 0:
            raise ValueError(f"buffer must hold at least 1 packet, got {buffer_packets}")
        self.sim = sim
        self.name = name
        self.scheduler = scheduler
        self.link = link
        self.buffer_packets = buffer_packets
        link.on_idle = self._on_link_idle
        # Batched link service: when the scheduler's dequeue order is
        # clock-independent (``supports_batch_drain``), completion events
        # hand control to :meth:`_drain_burst`, which serves whole bursts
        # arithmetically inside the one event.  Restores and enqueues
        # still go through the per-packet path.
        self.batching_enabled = (
            scheduler.supports_batch_drain and not _batching_disabled()
        )
        if self.batching_enabled:
            link.on_complete_idle = self._drain_burst
        self.batched_departures = 0
        # Non-work-conserving schedulers (Stop-and-Go, HRR, Jitter-EDD)
        # hold packets until they become eligible; they need a handle on
        # the port to re-poll it when a held packet matures.
        attach = getattr(scheduler, "attach_port", None)
        if attach is not None:
            attach(self)

        self.packets_in = 0
        self.packets_out = 0
        self.packets_dropped = 0
        self.queueing_delay_total = 0.0  # summed wait of departed packets
        self.on_enqueue: List[EnqueueListener] = []
        self.on_drop: List[DropListener] = []
        self.on_depart: List[DepartListener] = []
        # Edge enforcement (Section 8): admission filters run before the
        # scheduler sees the packet; any returning False drops it.  The
        # signaling layer installs the per-flow token-bucket conformance
        # check here at the *first* switch of a predicted flow's path only.
        self.filters: List[Callable[[Packet, float], bool]] = []

    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Packets waiting in the scheduler (excludes the one on the wire)."""
        return len(self.scheduler)

    @property
    def mean_queueing_delay(self) -> float:
        """Mean per-hop wait of packets that departed this port (seconds)."""
        return self.queueing_delay_total / self.packets_out if self.packets_out else 0.0

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the port.

        Returns:
            True if the packet was queued (or immediately transmitted),
            False if it was dropped.
        """
        now = self.sim.now
        self.packets_in += 1
        if self.filters:
            for admission_filter in self.filters:
                if not admission_filter(packet, now):
                    self._drop(packet, now)
                    return False
        scheduler = self.scheduler
        if len(scheduler) >= self.buffer_packets:
            victim = scheduler.select_push_out(packet)
            if victim is None:
                self._drop(packet, now)
                return False
            # Push-out: the scheduler evicted `victim` to admit `packet`.
            self._drop(victim, now)
        packet.enqueued_at = now
        if not scheduler.enqueue(packet, now):
            self._drop(packet, now)
            return False
        if self.on_enqueue:
            for listener in self.on_enqueue:
                listener(packet, now)
        if not self.link.busy:
            self._send_next()
        return True

    def _drop(self, packet: Packet, now: float) -> None:
        self.packets_dropped += 1
        if self.on_drop:
            for listener in self.on_drop:
                listener(packet, now)

    def _send_next(self) -> None:
        now = self.sim.now
        packet = self.scheduler.dequeue(now)
        if packet is None:
            return
        wait = now - packet.enqueued_at
        packet.queueing_delay += wait
        packet.hops += 1
        self.packets_out += 1
        self.queueing_delay_total += wait
        if self.on_depart:
            for listener in self.on_depart:
                listener(packet, now, wait)
        self.link.transmit(packet)

    def _on_link_idle(self) -> None:
        self._send_next()

    def _drain_burst(self) -> None:
        """Serve as many queued packets as provably unobservable, in one
        completion event.

        Runs only in link-completion context (``Link.on_complete_idle``):
        the clock sits exactly at a completion instant and no caller above
        the engine loop will read it after we return.  Each iteration
        serves the scheduler's head packet *inline* — identical departure
        accounting and delivery as the per-packet path, with the clock
        advanced arithmetically — but only when the departure would be the
        very next thing the engine does anyway: the completion time must
        not pass the ``run(until=...)`` horizon, and every pending event
        must lie strictly after it.  The moment either condition fails
        (a competing arrival, timer, outage, or window edge), we fall back
        to the ordinary schedule-one-completion-event path and return.
        """
        sim = self.sim
        link = self.link
        scheduler = self.scheduler
        rate = link.rate_bps
        on_depart = self.on_depart
        while True:
            head = scheduler.peek_next()
            if head is None:
                return
            complete_at = sim.now + head.size_bits / rate
            if complete_at > sim.horizon or sim.peek_next_time() <= complete_at:
                self._send_next()
                return
            now = sim.now
            packet = scheduler.dequeue(now)
            wait = now - packet.enqueued_at
            packet.queueing_delay += wait
            packet.hops += 1
            self.packets_out += 1
            self.queueing_delay_total += wait
            if on_depart:
                for listener in on_depart:
                    listener(packet, now, wait)
                if sim.peek_next_time() <= complete_at:
                    # A listener scheduled work inside the span: the
                    # departure is already booked, so finish this packet
                    # on the ordinary per-packet path and stop batching.
                    link.transmit(packet)
                    return
            self.batched_departures += 1
            link.serve_inline(packet, complete_at)
            if link.busy:
                # The wire died (and was re-armed) under the delivery:
                # stop; the restore path will wake us per-packet.
                return

    def flush_queue(self) -> int:
        """Drop every queued packet (link-failure teardown accounting).

        Called by the control plane when this port's link fails: queued
        packets are already committed to the dead next hop, so they leave
        through the drop ledger — ``packets_dropped`` plus the ``on_drop``
        listeners — keeping the port's conservation books closed.

        Returns:
            The number of packets flushed.
        """
        now = self.sim.now
        count = 0
        for packet in self.scheduler.drain(now):
            self._drop(packet, now)
            count += 1
        return count

    def kick(self) -> None:
        """Re-poll the scheduler if the link is free.

        Called by non-work-conserving schedulers when a held packet becomes
        eligible; a no-op while the link is transmitting (the normal idle
        callback will poll then).
        """
        if not self.link.busy:
            self._send_next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<OutputPort {self.name} qlen={self.queue_length} "
            f"in={self.packets_in} out={self.packets_out} "
            f"drop={self.packets_dropped}>"
        )
