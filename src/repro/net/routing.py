"""Static shortest-path routing.

The paper's experiments use fixed paths on a chain; routing is orthogonal to
its contribution (Section 1 explicitly scopes it out).  We provide
deterministic static shortest-path routing computed once at build time with
breadth-first search over the (directed) link graph, with ties broken by
node-name order so experiments are reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple


class RoutingError(RuntimeError):
    """No route exists between the requested endpoints."""


class StaticRouting:
    """All-pairs next-hop table over a directed graph of named nodes."""

    def __init__(self):
        self._adj: Dict[str, List[str]] = {}
        self._next_hop: Dict[Tuple[str, str], str] = {}
        self._dirty = False

    def add_node(self, name: str) -> None:
        self._adj.setdefault(name, [])
        self._dirty = True

    def add_edge(self, src: str, dst: str) -> None:
        """Declare a directed link src -> dst."""
        self.add_node(src)
        self.add_node(dst)
        if dst not in self._adj[src]:
            self._adj[src].append(dst)
        self._dirty = True

    @property
    def nodes(self) -> Iterable[str]:
        return self._adj.keys()

    def _recompute(self) -> None:
        """BFS from every node; deterministic neighbour order."""
        self._next_hop.clear()
        for src in sorted(self._adj):
            # parent[v] = predecessor of v on the shortest path from src.
            parent: Dict[str, str] = {}
            visited = {src}
            frontier = deque([src])
            while frontier:
                u = frontier.popleft()
                for v in sorted(self._adj[u]):
                    if v not in visited:
                        visited.add(v)
                        parent[v] = u
                        frontier.append(v)
            for dst in visited:
                if dst == src:
                    continue
                # Walk back from dst to find the first hop out of src.
                hop = dst
                while parent[hop] != src:
                    hop = parent[hop]
                self._next_hop[(src, dst)] = hop
        self._dirty = False

    def next_hop(self, here: str, destination: str) -> str:
        """Name of the neighbour to forward to from ``here`` toward
        ``destination``.

        Raises:
            RoutingError: if no path exists.
        """
        if self._dirty:
            self._recompute()
        try:
            return self._next_hop[(here, destination)]
        except KeyError:
            raise RoutingError(f"no route from {here} to {destination}") from None

    def path(self, src: str, dst: str) -> List[str]:
        """Full node path src..dst (inclusive)."""
        if self._dirty:
            self._recompute()
        if src == dst:
            return [src]
        path = [src]
        here = src
        seen = {src}
        while here != dst:
            here = self.next_hop(here, dst)
            if here in seen:  # pragma: no cover - defensive
                raise RoutingError(f"routing loop from {src} to {dst}")
            seen.add(here)
            path.append(here)
        return path
