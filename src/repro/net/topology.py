"""Topology builders for the paper's experiments.

* :func:`single_link_topology` — the Table 1 configuration: one bottleneck
  link shared by N flows.
* :func:`chain_topology` — a chain of switches, one host per switch.
* :func:`paper_figure1_topology` — Figure 1: Host-1..Host-5 on S-1..S-5 with
  four 1 Mbit/s inter-switch links, all traffic flowing left-to-right.
"""

from __future__ import annotations

from typing import List

from repro.net.network import (
    DEFAULT_BUFFER_PACKETS,
    DEFAULT_LINK_RATE_BPS,
    Network,
    SchedulerFactory,
)
from repro.sim.engine import Simulator

FIGURE1_SWITCHES = ["S-1", "S-2", "S-3", "S-4", "S-5"]
FIGURE1_HOSTS = ["Host-1", "Host-2", "Host-3", "Host-4", "Host-5"]


def single_link_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
) -> Network:
    """Two switches, one link A->B, hosts ``src-host`` and ``dst-host``.

    All Table-1 flows source at ``src-host`` and sink at ``dst-host``, so
    every packet crosses the single 1 Mbit/s bottleneck.
    """
    net = Network(sim, scheduler_factory)
    net.add_switch("A")
    net.add_switch("B")
    net.add_link("A", "B", rate_bps, buffer_packets=buffer_packets)
    net.add_host("src-host", "A")
    net.add_host("dst-host", "B")
    return net


def chain_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    num_switches: int,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    duplex: bool = False,
    switch_names: List[str] | None = None,
    host_names: List[str] | None = None,
) -> Network:
    """A chain S1 - S2 - ... - Sn with one host per switch.

    Args:
        duplex: install links in both directions.  The paper's traffic all
            flows one way, but TCP needs a reverse path for ACKs, so the
            Table 3 experiment builds the chain duplex.
    """
    if num_switches < 2:
        raise ValueError("a chain needs at least 2 switches")
    switch_names = switch_names or [f"S-{i + 1}" for i in range(num_switches)]
    host_names = host_names or [f"Host-{i + 1}" for i in range(num_switches)]
    if len(switch_names) != num_switches or len(host_names) != num_switches:
        raise ValueError("name lists must match num_switches")
    net = Network(sim, scheduler_factory)
    for s in switch_names:
        net.add_switch(s)
    for left, right in zip(switch_names, switch_names[1:]):
        if duplex:
            net.add_duplex_link(left, right, rate_bps, buffer_packets=buffer_packets)
        else:
            net.add_link(left, right, rate_bps, buffer_packets=buffer_packets)
    for host, switch in zip(host_names, switch_names):
        net.add_host(host, switch)
    return net


def paper_figure1_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    duplex: bool = False,
) -> Network:
    """The Figure 1 network: five switches, five hosts, four links.

    All experiment traffic travels in the Host-1 -> Host-5 direction; each
    of the four inter-switch links is shared by 10 flows in the Table 2/3
    workloads.
    """
    return chain_topology(
        sim,
        scheduler_factory,
        num_switches=5,
        rate_bps=rate_bps,
        buffer_packets=buffer_packets,
        duplex=duplex,
        switch_names=list(FIGURE1_SWITCHES),
        host_names=list(FIGURE1_HOSTS),
    )


def figure1_ascii() -> str:
    """ASCII rendering of Figure 1 (the topology 'figure' deliverable)."""
    return (
        "Host-1    Host-2    Host-3    Host-4    Host-5\n"
        "  |         |         |         |         |\n"
        " S-1 ----- S-2 ----- S-3 ----- S-4 ----- S-5\n"
        "     1Mb/s     1Mb/s     1Mb/s     1Mb/s\n"
    )
