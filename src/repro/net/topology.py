"""Topology builders: declarative graphs plus the paper's named networks.

Every topology is described by three plain-data sequences — switch names,
directed link definitions, and host attachments — and realized by
:func:`build_network`.  The named constructors the experiments use are
*compilers* to that graph form:

* :func:`single_link_graph` — the Table 1 configuration: one bottleneck
  link shared by N flows.
* :func:`chain_graph` — a chain of switches, one host per switch.
* :func:`figure1_graph` — Figure 1: Host-1..Host-5 on S-1..S-5 with four
  1 Mbit/s inter-switch links, all traffic flowing left-to-right.
* :func:`parking_lot_graph` — the multi-hop merge network (a chain where
  fresh cross traffic enters and leaves at every hop), the classic
  congestion-avoidance workload the paper's FIFO+ story is about.

The legacy ``*_topology`` helpers build the same networks in one call and
are kept for hand-wired tests; spec-driven code goes through
:class:`repro.scenario.TopologySpec`, which compiles to the identical
graph tuples, so both paths construct bit-identical networks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.net.network import (
    DEFAULT_BUFFER_PACKETS,
    DEFAULT_LINK_RATE_BPS,
    Network,
    SchedulerFactory,
)
from repro.sim.engine import Simulator

FIGURE1_SWITCHES = ["S-1", "S-2", "S-3", "S-4", "S-5"]
FIGURE1_HOSTS = ["Host-1", "Host-2", "Host-3", "Host-4", "Host-5"]

# Graph form: plain tuples so the net layer stays dependency-free.
# A link is (src, dst, rate_bps, propagation_delay, buffer_packets);
# a host attachment is (host_name, switch_name).
LinkDef = Tuple[str, str, float, float, int]
HostDef = Tuple[str, str]
GraphDef = Tuple[Tuple[str, ...], Tuple[LinkDef, ...], Tuple[HostDef, ...]]


def build_network(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    nodes: Sequence[str],
    links: Sequence[LinkDef],
    host_attachments: Sequence[HostDef],
) -> Network:
    """Realize a declarative graph: switches, then links, then hosts.

    The construction order (all switches, all links, all hosts) is the
    invariant the golden-equivalence tests pin: dict insertion order
    downstream (ports, measurement attachment, accounting) follows it.
    """
    net = Network(sim, scheduler_factory)
    for name in nodes:
        net.add_switch(name)
    for src, dst, rate_bps, propagation_delay, buffer_packets in links:
        net.add_link(src, dst, rate_bps, propagation_delay, buffer_packets)
    for host, switch in host_attachments:
        net.add_host(host, switch)
    return net


# ----------------------------------------------------------------------
# Graph compilers for the named topologies
# ----------------------------------------------------------------------


def single_link_graph(
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
) -> GraphDef:
    """Two switches, one link A->B, hosts ``src-host`` and ``dst-host``."""
    return (
        ("A", "B"),
        (("A", "B", rate_bps, 0.0, buffer_packets),),
        (("src-host", "A"), ("dst-host", "B")),
    )


def chain_graph(
    num_switches: int,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    duplex: bool = False,
    switch_names: Optional[Sequence[str]] = None,
    host_names: Optional[Sequence[str]] = None,
) -> GraphDef:
    """A chain S1 - S2 - ... - Sn with one host per switch.

    Args:
        duplex: install links in both directions.  The paper's traffic all
            flows one way, but TCP needs a reverse path for ACKs, so the
            Table 3 experiment builds the chain duplex.
    """
    if num_switches < 2:
        raise ValueError("a chain needs at least 2 switches")
    switch_names = list(
        switch_names or (f"S-{i + 1}" for i in range(num_switches))
    )
    host_names = list(
        host_names or (f"Host-{i + 1}" for i in range(num_switches))
    )
    if len(switch_names) != num_switches or len(host_names) != num_switches:
        raise ValueError("name lists must match num_switches")
    links: List[LinkDef] = []
    for left, right in zip(switch_names, switch_names[1:]):
        links.append((left, right, rate_bps, 0.0, buffer_packets))
        if duplex:
            links.append((right, left, rate_bps, 0.0, buffer_packets))
    hosts = tuple(zip(host_names, switch_names))
    return tuple(switch_names), tuple(links), hosts


def figure1_graph(
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    duplex: bool = False,
) -> GraphDef:
    """The Figure 1 network: five switches, five hosts, four links."""
    return chain_graph(
        num_switches=5,
        rate_bps=rate_bps,
        buffer_packets=buffer_packets,
        duplex=duplex,
        switch_names=list(FIGURE1_SWITCHES),
        host_names=list(FIGURE1_HOSTS),
    )


def parking_lot_graph(
    num_hops: int = 4,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
) -> GraphDef:
    """The parking-lot merge network: a chain with per-hop cross hosts.

    One long path crosses ``num_hops`` links (``thru-src`` on the first
    switch, ``thru-dst`` on the last); at hop k, cross traffic enters at
    ``cross-src-k`` and leaves one switch later at ``cross-dst-k``, so
    every link is a merge point where fresh traffic converges with the
    long-haul flows — the DEC-TR-506 congestion-avoidance workload.
    """
    if num_hops < 1:
        raise ValueError("a parking lot needs at least 1 hop")
    switches = tuple(f"S-{i + 1}" for i in range(num_hops + 1))
    links = tuple(
        (left, right, rate_bps, 0.0, buffer_packets)
        for left, right in zip(switches, switches[1:])
    )
    hosts: List[HostDef] = [("thru-src", switches[0]), ("thru-dst", switches[-1])]
    for k in range(num_hops):
        hosts.append((f"cross-src-{k + 1}", switches[k]))
        hosts.append((f"cross-dst-{k + 1}", switches[k + 1]))
    return switches, links, tuple(hosts)


# ----------------------------------------------------------------------
# One-call builders (hand-wired tests and benches)
# ----------------------------------------------------------------------


def single_link_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
) -> Network:
    """Two switches, one link A->B, hosts ``src-host`` and ``dst-host``.

    All Table-1 flows source at ``src-host`` and sink at ``dst-host``, so
    every packet crosses the single 1 Mbit/s bottleneck.
    """
    return build_network(
        sim, scheduler_factory, *single_link_graph(rate_bps, buffer_packets)
    )


def chain_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    num_switches: int,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    duplex: bool = False,
    switch_names: List[str] | None = None,
    host_names: List[str] | None = None,
) -> Network:
    """A chain S1 - S2 - ... - Sn with one host per switch."""
    return build_network(
        sim,
        scheduler_factory,
        *chain_graph(
            num_switches,
            rate_bps=rate_bps,
            buffer_packets=buffer_packets,
            duplex=duplex,
            switch_names=switch_names,
            host_names=host_names,
        ),
    )


def paper_figure1_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
    duplex: bool = False,
) -> Network:
    """The Figure 1 network: five switches, five hosts, four links.

    All experiment traffic travels in the Host-1 -> Host-5 direction; each
    of the four inter-switch links is shared by 10 flows in the Table 2/3
    workloads.
    """
    return build_network(
        sim,
        scheduler_factory,
        *figure1_graph(rate_bps, buffer_packets, duplex=duplex),
    )


def parking_lot_topology(
    sim: Simulator,
    scheduler_factory: SchedulerFactory,
    num_hops: int = 4,
    rate_bps: float = DEFAULT_LINK_RATE_BPS,
    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
) -> Network:
    """The parking-lot merge network (see :func:`parking_lot_graph`)."""
    return build_network(
        sim,
        scheduler_factory,
        *parking_lot_graph(num_hops, rate_bps, buffer_packets),
    )


def figure1_ascii() -> str:
    """ASCII rendering of Figure 1 (the topology 'figure' deliverable)."""
    return (
        "Host-1    Host-2    Host-3    Host-4    Host-5\n"
        "  |         |         |         |         |\n"
        " S-1 ----- S-2 ----- S-3 ----- S-4 ----- S-5\n"
        "     1Mb/s     1Mb/s     1Mb/s     1Mb/s\n"
    )


def parking_lot_ascii(num_hops: int = 4) -> str:
    """ASCII rendering of the parking-lot merge topology."""
    top = "thru-src" + "".join(
        f"   cross-src-{k + 1}" for k in range(num_hops)
    )
    row = " " + " ----- ".join(f"S-{k + 1}" for k in range(num_hops + 1))
    bottom = "          " + "   ".join(
        f"cross-dst-{k + 1}" for k in range(num_hops)
    )
    return (
        f"{top}\n"
        f"{row}  -- thru-dst\n"
        f"{bottom}\n"
        "(cross traffic enters before, and exits after, every link)\n"
    )
