"""Declarative scenarios: one spec → build → run → structured results.

The subsystem the experiment layer is founded on:

* :mod:`repro.scenario.spec` — frozen dataclasses fully describing a run
  (:class:`TopologySpec`, :class:`FlowSpec`, :class:`DisciplineSpec`,
  :class:`ScenarioSpec`, service requests, TCP load, admission control);
* :mod:`repro.scenario.builder` — fluent construction with the paper's
  Appendix constants baked in (``paper_chain()``, ``paper_flows()``);
* :mod:`repro.scenario.runner` — :class:`ScenarioRunner` builds and runs
  one simulation per discipline with paired arrivals guaranteed by
  construction, returning a JSON-exportable :class:`ScenarioResult`;
* :mod:`repro.scenario.sweep` — parameter/seed sweeps, bit-identical to
  serial execution;
* :mod:`repro.scenario.executor` — the persistent sweep execution engine
  behind ``sweep()`` and ``ScenarioRunner.run(workers=)``: flattened
  (override × seed × discipline) task graph, warm-started workers fed
  compact deltas, streaming collection, per-run wall-clock budgets, and
  early stopping;
* :mod:`repro.scenario.generators` — seeded, deterministic scenario
  generators (random/scale-free graphs, WAN paths, access/core fan-in)
  registered under ``gen:`` names, with populations sized to a target
  utilization and :mod:`repro.validate` invariant checks on by default;
* :mod:`repro.scenario.paper` — the Appendix constants and the Figure-1
  placement tables, the single source of truth.
"""

from repro.scenario import paper, registry
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.executor import (
    BUDGET_EXPIRED,
    COMPLETED,
    STOPPED,
    SweepExecutor,
    SweepOutcome,
    SweepRun,
    TaskResult,
    stop_when_ci_below,
)
from repro.scenario.disciplines import (
    build_scheduler,
    discipline_kinds,
    resolve_port_discipline,
)
from repro.scenario.runner import (
    DisciplineRunResult,
    FlowStats,
    ScenarioContext,
    ScenarioResult,
    ScenarioRunner,
    TcpStats,
)
from repro.scenario.spec import (
    AdmissionSpec,
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    HostAttachment,
    LinkSpec,
    OutageEvent,
    OutageSpec,
    PredictedRequest,
    ScenarioSpec,
    TcpSpec,
    TopologySpec,
)
from repro.scenario.sweep import expand, sweep
from repro.scenario import generators  # noqa: E402  (needs spec/registry)

__all__ = [
    "paper",
    "registry",
    "generators",
    "AdmissionSpec",
    "BUDGET_EXPIRED",
    "COMPLETED",
    "STOPPED",
    "SweepExecutor",
    "SweepOutcome",
    "SweepRun",
    "TaskResult",
    "stop_when_ci_below",
    "DisciplineSpec",
    "DisciplineRunResult",
    "FlowSpec",
    "FlowStats",
    "GuaranteedRequest",
    "HostAttachment",
    "LinkSpec",
    "OutageEvent",
    "OutageSpec",
    "PredictedRequest",
    "ScenarioBuilder",
    "ScenarioContext",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TcpSpec",
    "TcpStats",
    "TopologySpec",
    "build_scheduler",
    "discipline_kinds",
    "expand",
    "resolve_port_discipline",
    "sweep",
]
