"""Fluent construction of :class:`ScenarioSpec` objects.

The builder encodes the Appendix's constants once: ``single_link()`` is
the Table-1 bottleneck, ``paper_chain()`` the Figure-1 network,
``paper_flows(n)`` the homogeneous on/off population, and
``figure1_flows()`` the 22-flow placement whose per-link census the paper
states.  Everything returns ``self`` so specs read as one expression::

    spec = (ScenarioBuilder("table1")
            .single_link()
            .paper_flows(10)
            .disciplines(DisciplineSpec.wfq(equal_share_flows=10),
                         DisciplineSpec.fifo())
            .duration(600.0).seed(1)
            .build())
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.scenario import paper
from repro.scenario.spec import (
    AdmissionSpec,
    DisciplineSpec,
    FlowSpec,
    OutageSpec,
    ScenarioSpec,
    TcpSpec,
    TopologySpec,
)


class ScenarioBuilder:
    """Accumulates the pieces of a :class:`ScenarioSpec`."""

    def __init__(self, name: str = "scenario"):
        self._name = name
        self._topology: Optional[TopologySpec] = None
        self._flows: list = []
        self._disciplines: list = []
        self._tcps: list = []
        self._admission: Optional[AdmissionSpec] = None
        self._establish_order: Optional[Tuple[str, ...]] = None
        self._duration = paper.PAPER_DURATION_SECONDS
        self._warmup = paper.DEFAULT_WARMUP_SECONDS
        self._seed = 1
        self._percentiles: Optional[Tuple[float, ...]] = None
        self._link_accounting = False
        self._validate = False
        self._outages: Optional[OutageSpec] = None

    # -- topology ------------------------------------------------------
    def topology(self, spec: TopologySpec) -> "ScenarioBuilder":
        self._topology = spec
        return self

    def single_link(self, **kwargs) -> "ScenarioBuilder":
        """The Table-1 configuration: one 1 Mbit/s bottleneck link."""
        return self.topology(TopologySpec.single_link(**kwargs))

    def chain(self, num_switches: int, **kwargs) -> "ScenarioBuilder":
        return self.topology(TopologySpec.chain(num_switches, **kwargs))

    def paper_chain(self, duplex: bool = False, **kwargs) -> "ScenarioBuilder":
        """Figure 1: five switches, four 1 Mbit/s links (duplex for TCP)."""
        return self.topology(TopologySpec.figure1(duplex=duplex, **kwargs))

    def parking_lot(self, num_hops: int = 4, **kwargs) -> "ScenarioBuilder":
        """The merge network: cross traffic in and out at every hop."""
        return self.topology(TopologySpec.parking_lot(num_hops, **kwargs))

    def graph(self, nodes, links, host_attachments) -> "ScenarioBuilder":
        """A free-form declarative graph (see :meth:`TopologySpec.graph`)."""
        return self.topology(TopologySpec.graph(nodes, links, host_attachments))

    # -- flows ---------------------------------------------------------
    def flow(self, flow: FlowSpec) -> "ScenarioBuilder":
        self._flows.append(flow)
        return self

    def add_flow(self, name: str, source_host: str, dest_host: str, **kwargs) -> "ScenarioBuilder":
        return self.flow(FlowSpec(name, source_host, dest_host, **kwargs))

    def paper_flows(
        self,
        count: int = 10,
        prefix: str = "flow-",
        source_host: str = "src-host",
        dest_host: str = "dst-host",
        **kwargs,
    ) -> "ScenarioBuilder":
        """``count`` identical Appendix sources sharing one bottleneck —
        the Table-1 workload at 83.5 % load for count=10."""
        for i in range(count):
            self.add_flow(f"{prefix}{i}", source_host, dest_host, **kwargs)
        return self

    def figure1_flows(self, **kwargs) -> "ScenarioBuilder":
        """The 22-flow Figure-1 placement (10 flows per inter-switch link;
        12/4/4/2 by path length).  ``kwargs`` apply to every flow."""
        for name, src, dst, hops in paper.FIGURE1_PLACEMENTS:
            self.add_flow(name, src, dst, hops=hops, **kwargs)
        return self

    # -- disciplines / service ----------------------------------------
    def discipline(self, spec: DisciplineSpec) -> "ScenarioBuilder":
        self._disciplines.append(spec)
        return self

    def disciplines(self, *specs: DisciplineSpec) -> "ScenarioBuilder":
        self._disciplines.extend(specs)
        return self

    def admission(
        self,
        realtime_quota: float = 0.9,
        class_bounds_seconds: Sequence[float] = (0.15, 1.5),
        utilization_safety: float = 1.0,
        delay_safety: float = 1.0,
    ) -> "ScenarioBuilder":
        self._admission = AdmissionSpec(
            realtime_quota=realtime_quota,
            class_bounds_seconds=tuple(class_bounds_seconds),
            utilization_safety=utilization_safety,
            delay_safety=delay_safety,
        )
        return self

    def establish_order(self, *names: str) -> "ScenarioBuilder":
        self._establish_order = tuple(names)
        return self

    def tcp(
        self, name: str, source_host: str, dest_host: str, max_cwnd: float = 64.0
    ) -> "ScenarioBuilder":
        self._tcps.append(TcpSpec(name, source_host, dest_host, max_cwnd=max_cwnd))
        return self

    # -- run parameters ------------------------------------------------
    def duration(self, seconds: float) -> "ScenarioBuilder":
        self._duration = seconds
        return self

    def warmup(self, seconds: float) -> "ScenarioBuilder":
        self._warmup = seconds
        return self

    def seed(self, seed: int) -> "ScenarioBuilder":
        self._seed = seed
        return self

    def percentiles(self, *points: float) -> "ScenarioBuilder":
        self._percentiles = tuple(points)
        return self

    def link_accounting(self, enabled: bool = True) -> "ScenarioBuilder":
        self._link_accounting = enabled
        return self

    def validate(self, enabled: bool = True) -> "ScenarioBuilder":
        """Opt into the :mod:`repro.validate` invariant checks."""
        self._validate = enabled
        return self

    def outages(self, spec: OutageSpec) -> "ScenarioBuilder":
        """Declare link failures, activating the :mod:`repro.control`
        plane (link-state SPF rerouting + flow re-establishment)."""
        self._outages = spec
        return self

    # ------------------------------------------------------------------
    def build(self) -> ScenarioSpec:
        if self._topology is None:
            raise ValueError(
                "a topology is required "
                "(single_link/chain/paper_chain/parking_lot/graph)"
            )
        if not self._disciplines:
            raise ValueError("at least one discipline is required")
        kwargs = {}
        if self._percentiles is not None:
            kwargs["percentile_points"] = self._percentiles
        return ScenarioSpec(
            name=self._name,
            topology=self._topology,
            flows=tuple(self._flows),
            disciplines=tuple(self._disciplines),
            tcps=tuple(self._tcps),
            admission=self._admission,
            establish_order=self._establish_order,
            duration=self._duration,
            warmup=self._warmup,
            seed=self._seed,
            link_accounting=self._link_accounting,
            validate=self._validate,
            outages=self._outages,
            **kwargs,
        )
