"""Generated datacenter scenarios: ``gen:fat-tree`` / ``gen:leaf-spine``.

These are the scale companions of :mod:`repro.scenario.generators`: the
same seeded determinism contract (every random draw comes from a
string-seeded stream, so a (name, gen_seed) pair rebuilds the identical
spec forever), but populations of 10k–1M flows over the fabric families
in :mod:`repro.net.fabric` — far beyond what the packet engine can
advance, and exactly what the fluid engine exists for.  Generated specs
default to ``engine="fluid"`` and to seeded ECMP path spreading
(``ecmp_seed=gen_seed``); both are plain spec fields, so any instance
small enough can be re-run on the packet engine by passing
``engine="packet"`` — that is how the equivalence goldens pin the
generator family itself.

Sizing works differently from the small generators: with 100k+ flows,
placing flows one at a time against a utilization watermark is both
slow and unnecessary.  Instead the builder places ``num_flows`` seeded
host pairs up front, computes the exact per-link offered load over each
flow's *actual* route (ECMP or static), and then scales every flow's
rate by one common factor so the most-loaded link sits at
``target_utilization``.  The relative load pattern — which tiers are
hot, how ECMP spreads pods — is preserved; only the absolute scale
moves.

Only a seeded sample of ``record_flows`` flows carries ``record=True``:
delay statistics need per-epoch samples per recorded flow, and a
million recorded flows would drown the result payload.  Aggregate
truth (per-link utilization, queueing, drops) always covers every flow.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.net.fabric import (
    EcmpPaths,
    fat_tree_topology,
    leaf_spine_topology,
)
from repro.net.packet import ServiceClass
from repro.scenario import paper, registry
from repro.scenario.generators import (
    DEFAULT_MIX,
    GEN_PREFIX,
    _pick_service,
    _rng,
    topology_routes,
)
from repro.scenario.spec import (
    AdmissionSpec,
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    PredictedRequest,
    ScenarioSpec,
    TopologySpec,
)

#: Tier-override patterns per fabric kind: tier name -> link globs.
_TIER_PATTERNS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "fat-tree": {
        "edge": ("E-*->A-*", "A-*->E-*"),
        "core": ("A-*->C-*", "C-*->A-*"),
    },
    "leaf-spine": {
        "spine": ("L-*->SP-*", "SP-*->L-*"),
    },
}


def _tier_discipline(kind: str, tier: str, link_rate_bps: float,
                     flows_per_link: float) -> DisciplineSpec:
    """A named override discipline for one fabric tier."""
    name = f"{kind}-{tier}"
    if kind == "fifo":
        return DisciplineSpec.fifo(name=name)
    if kind == "fifoplus":
        return DisciplineSpec.fifoplus(name=name)
    if kind == "unified":
        return DisciplineSpec.unified(name=name)
    if kind == "wfq":
        return DisciplineSpec.wfq(
            name=name,
            auto_register_rate_bps=link_rate_bps / max(flows_per_link, 1.0),
        )
    raise ValueError(
        f"unknown tier discipline kind {kind!r}; "
        "expected fifo|fifoplus|unified|wfq"
    )


def _with_tier_overrides(
    disciplines: Tuple[DisciplineSpec, ...],
    topology: TopologySpec,
    tier_kinds: Optional[Dict[str, str]],
    flows_per_link: float,
) -> Tuple[DisciplineSpec, ...]:
    """Apply per-tier scheduler overrides (e.g. ``{"core": "fifo"}``:
    cheap FIFO in the core, the spec discipline at the edge — the
    classic 'complex edge, simple core' deployment question)."""
    if not tier_kinds:
        return disciplines
    patterns = _TIER_PATTERNS[topology.kind]
    unknown = set(tier_kinds) - set(patterns)
    if unknown:
        raise ValueError(
            f"unknown {topology.kind} tiers {sorted(unknown)}; "
            f"expected {sorted(patterns)}"
        )
    link_rate = max(link.rate_bps for link in topology.links)
    out = []
    for disc in disciplines:
        for tier, kind in sorted(tier_kinds.items()):
            override = _tier_discipline(kind, tier, link_rate,
                                        flows_per_link)
            for pattern in patterns[tier]:
                disc = disc.override(pattern, override)
        out.append(disc)
    return tuple(out)


def datacenter_flows(
    topology: TopologySpec,
    gen_seed: int,
    num_flows: int,
    target_utilization: float = 0.85,
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX,
    record_flows: int = 32,
    ecmp_seed: Optional[int] = None,
    with_requests: bool = False,
    packet_size_bits: int = paper.PACKET_BITS,
) -> Tuple[FlowSpec, ...]:
    """``num_flows`` seeded host pairs, rate-normalised to the target.

    Every flow starts from the paper's canonical source shape
    (:data:`paper.AVERAGE_RATE_PPS`, peak = 2x average); after placement
    the exact per-link offered load over each flow's actual route (the
    seeded ECMP choice when ``ecmp_seed`` is set, else the static
    shortest path) is computed and *all* rates are scaled by the single
    factor that puts the hottest link at ``target_utilization``.
    """
    if num_flows < 1:
        raise ValueError("num_flows must be >= 1")
    rng = _rng(gen_seed, "dc-population")
    hosts = list(topology.host_names)
    if len(hosts) < 2:
        raise ValueError("datacenter topology needs >= 2 hosts")

    if ecmp_seed is not None:
        path_of = EcmpPaths.shared(topology, seed=ecmp_seed).path
    else:
        routing = topology_routes(topology)
        path_of = lambda src, dst, name: routing.path(src, dst)

    link_rates = {link.name: link.rate_bps for link in topology.links}
    # (src, dst) node pair -> link name: route hops resolve through one
    # tuple lookup instead of building an "a->b" string per hop (host
    # attachment hops fall out as misses, exactly as before).
    pair_name = {
        (link.src, link.dst): link.name for link in topology.links
    }
    # Static routes are a pure function of (src, dst) — memoize the
    # resolved link list across the population.
    static_routes: Optional[Dict[Tuple[str, str], List[str]]] = (
        {} if ecmp_seed is None else None
    )
    crossings: Counter = Counter()
    placements: List[Tuple[str, str, str, int, object, List[str]]] = []
    base_rate_bps = float(paper.AVERAGE_RATE_PPS * packet_size_bits)
    num_hosts = len(hosts)
    randrange = rng.randrange
    static_get = (
        static_routes.get if static_routes is not None else None
    )
    pair_get = pair_name.get
    place = placements.append
    count_route = crossings.update
    for i in range(num_flows):
        src = hosts[randrange(num_hosts)]
        dst = hosts[randrange(num_hosts)]
        while dst == src:
            dst = hosts[randrange(num_hosts)]
        name = f"dc-{i}"
        route = static_get((src, dst)) if static_get is not None else None
        if route is None:
            nodes = path_of(src, dst, name)
            route = [
                ln for ln in map(pair_get, zip(nodes, nodes[1:]))
                if ln is not None
            ]
            if static_routes is not None:
                static_routes[(src, dst)] = route
        service = _pick_service(rng, mix)
        place((name, src, dst, i, service, route))
        count_route(route)
    offered: Dict[str, float] = {
        link: base_rate_bps * count for link, count in crossings.items()
    }

    peak_util = max(
        (offered[link] / link_rates[link] for link in offered), default=0.0
    )
    if peak_util <= 0:
        raise ValueError("no generated flow crosses an inter-switch link")
    factor = target_utilization / peak_util
    rate_pps = paper.AVERAGE_RATE_PPS * factor

    recorded = set(
        rng.sample(range(num_flows), min(record_flows, num_flows))
    )
    # Per-service constants, resolved once instead of per flow; request
    # objects are immutable specs, so one instance per service is shared
    # by every flow of that service (requests scale with the common
    # rate, identical across the population).
    classes: Dict[str, Tuple[ServiceClass, int, object]] = {
        "guaranteed": (
            ServiceClass.GUARANTEED, 0,
            GuaranteedRequest(
                clock_rate_bps=2.0 * rate_pps * packet_size_bits
            ) if with_requests else None,
        ),
        "predicted_high": (
            ServiceClass.PREDICTED, 0,
            PredictedRequest(
                token_rate_bps=2.0 * rate_pps * packet_size_bits,
                bucket_depth_bits=50.0 * packet_size_bits,
                target_delay_seconds=0.5,
            ) if with_requests else None,
        ),
        "predicted_low": (ServiceClass.PREDICTED, 1, None),
    }
    datagram = (ServiceClass.DATAGRAM, 0, None)
    flows: List[FlowSpec] = []
    add_flow = flows.append
    for name, src, dst, i, service, route in placements:
        service_class, priority_class, request = classes.get(
            service, datagram
        )
        add_flow(
            FlowSpec(
                name=name,
                source_host=src,
                dest_host=dst,
                average_rate_pps=rate_pps,
                packet_size_bits=packet_size_bits,
                service_class=service_class,
                priority_class=priority_class,
                request=request,
                record=i in recorded,
                hops=len(route),
            )
        )
    return tuple(flows)


def _assemble_dc(
    name: str,
    topology: TopologySpec,
    gen_seed: int,
    num_flows: int,
    target_utilization: float,
    record_flows: int,
    duration: float,
    seed: int,
    warmup: float,
    disciplines: Optional[Tuple[DisciplineSpec, ...]],
    validate: bool,
    engine: str,
    ecmp: bool,
    with_requests: bool,
    admission: bool,
    tier_kinds: Optional[Dict[str, str]],
) -> ScenarioSpec:
    ecmp_seed = gen_seed if ecmp else None
    flows = datacenter_flows(
        topology,
        gen_seed,
        num_flows=num_flows,
        target_utilization=target_utilization,
        record_flows=record_flows,
        ecmp_seed=ecmp_seed,
        with_requests=with_requests,
    )
    mean_path = (
        sum(f.hops or 0 for f in flows) / len(flows) if flows else 1.0
    )
    flows_per_link = num_flows * mean_path / max(len(topology.links), 1)
    base = disciplines or (
        DisciplineSpec.fifo(),
        DisciplineSpec.unified(name="CSZ"),
    )
    return ScenarioSpec(
        name=name,
        topology=topology,
        flows=flows,
        disciplines=_with_tier_overrides(
            tuple(base), topology, tier_kinds, flows_per_link
        ),
        duration=duration,
        warmup=warmup,
        seed=seed,
        validate=validate,
        admission=AdmissionSpec() if admission else None,
        engine=engine,
        ecmp_seed=ecmp_seed,
    )


@registry.register(GEN_PREFIX + "fat-tree")
def fat_tree(
    gen_seed: int = 1,
    k: int = 4,
    hosts_per_edge: int = 0,
    oversubscription: float = 1.0,
    num_flows: int = 0,
    target_utilization: float = 0.85,
    record_flows: int = 32,
    duration: float = 60.0,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    disciplines: Optional[Tuple[DisciplineSpec, ...]] = None,
    validate: bool = True,
    engine: str = "fluid",
    ecmp: bool = True,
    with_requests: bool = False,
    admission: bool = False,
    tier_kinds: Optional[Dict[str, str]] = None,
) -> ScenarioSpec:
    """A k-ary fat-tree under a seeded many-flow population.

    ``num_flows`` defaults to 16 flows per host.  ``tier_kinds`` maps
    ``edge`` / ``core`` to a scheduler kind for per-tier overrides.
    """
    topology = fat_tree_topology(
        k=k,
        hosts_per_edge=hosts_per_edge,
        oversubscription=oversubscription,
    )
    num_flows = num_flows or 16 * len(topology.host_names)
    return _assemble_dc(
        f"fat-tree-k{k}-g{gen_seed}",
        topology, gen_seed, num_flows, target_utilization, record_flows,
        duration, seed, warmup, disciplines, validate, engine, ecmp,
        with_requests, admission, tier_kinds,
    )


@registry.register(GEN_PREFIX + "leaf-spine")
def leaf_spine(
    gen_seed: int = 1,
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 4,
    num_flows: int = 0,
    target_utilization: float = 0.85,
    record_flows: int = 32,
    duration: float = 60.0,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    disciplines: Optional[Tuple[DisciplineSpec, ...]] = None,
    validate: bool = True,
    engine: str = "fluid",
    ecmp: bool = True,
    with_requests: bool = False,
    admission: bool = False,
    tier_kinds: Optional[Dict[str, str]] = None,
) -> ScenarioSpec:
    """A leaf-spine fabric under a seeded many-flow population."""
    topology = leaf_spine_topology(
        leaves=leaves, spines=spines, hosts_per_leaf=hosts_per_leaf
    )
    num_flows = num_flows or 16 * len(topology.host_names)
    return _assemble_dc(
        f"leaf-spine-{leaves}x{spines}-g{gen_seed}",
        topology, gen_seed, num_flows, target_utilization, record_flows,
        duration, seed, warmup, disciplines, validate, engine, ecmp,
        with_requests, admission, tier_kinds,
    )
