"""Registry turning :class:`DisciplineSpec` kinds into live schedulers.

Each builder receives the spec's parameters, the simulator (some
disciplines — Stop-and-Go, Jitter-EDD — need the clock), and the link the
port will feed (rate-aware disciplines size themselves off the link speed).
"""

from __future__ import annotations

import fnmatch
from typing import Any, Callable, Dict, Mapping

from repro.net.link import Link
from repro.scenario.spec import DisciplineSpec
from repro.sched.base import Scheduler
from repro.sched.edf import EdfScheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import DEFAULT_EWMA_GAIN, FifoPlusScheduler
from repro.sched.jacobson_floyd import JacobsonFloydScheduler
from repro.sched.nonwork import JitterEddScheduler, StopAndGoScheduler
from repro.sched.priority import PriorityScheduler
from repro.sched.round_robin import (
    DeficitRoundRobinScheduler,
    RoundRobinScheduler,
)
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sched.virtual_clock import VirtualClockScheduler
from repro.sched.wfq import WfqScheduler
from repro.sim.engine import Simulator


def _share_rate(params: Mapping[str, Any], link: Link) -> float | None:
    """Resolve the auto-register rate from either parameter spelling."""
    flows = params.get("equal_share_flows")
    if flows:
        return link.rate_bps / flows
    return params.get("auto_register_rate_bps")


def _build_wfq(params, sim, link):
    return WfqScheduler(link.rate_bps, auto_register_rate=_share_rate(params, link))


def _build_virtual_clock(params, sim, link):
    return VirtualClockScheduler(auto_register_rate=_share_rate(params, link))


def _build_unified(params, sim, link):
    return UnifiedScheduler(
        UnifiedConfig(
            capacity_bps=link.rate_bps,
            num_predicted_classes=params.get("num_predicted_classes", 2),
        )
    )


_REGISTRY: Dict[str, Callable[[Mapping[str, Any], Simulator, Link], Scheduler]] = {
    "fifo": lambda params, sim, link: FifoScheduler(),
    "fifoplus": lambda params, sim, link: FifoPlusScheduler(
        ewma_gain=params.get("ewma_gain", DEFAULT_EWMA_GAIN),
        stale_offset_threshold=params.get("stale_offset_threshold"),
    ),
    "wfq": _build_wfq,
    "priority": lambda params, sim, link: PriorityScheduler(**dict(params)),
    "unified": _build_unified,
    "virtual_clock": _build_virtual_clock,
    "round_robin": lambda params, sim, link: RoundRobinScheduler(),
    "drr": lambda params, sim, link: DeficitRoundRobinScheduler(
        quantum_bits=params.get("quantum_bits", 1000)
    ),
    "edf": lambda params, sim, link: EdfScheduler(
        default_target=params.get("default_target", 0.1)
    ),
    "jacobson_floyd": lambda params, sim, link: JacobsonFloydScheduler(
        num_classes=params.get("num_classes", 1)
    ),
    "stop_and_go": lambda params, sim, link: StopAndGoScheduler(
        sim, frame_seconds=params.get("frame_seconds", 0.05)
    ),
    "jitter_edd": lambda params, sim, link: JitterEddScheduler(
        sim, default_target=params.get("default_target", 0.08)
    ),
}


def discipline_kinds() -> tuple:
    """The registered kinds (plus ``custom`` via a factory)."""
    return tuple(sorted(_REGISTRY)) + ("custom",)


def resolve_port_discipline(
    spec: DisciplineSpec, port_name: str
) -> DisciplineSpec:
    """The discipline that actually schedules ``port_name``.

    Walks the spec's per-port overrides in declaration order and returns
    the first whose glob pattern matches the port (link) name; the spec
    itself is the fallback for unmatched ports.
    """
    for pattern, override in spec.ports:
        if fnmatch.fnmatchcase(port_name, pattern):
            return override
    return spec


def build_scheduler(
    spec: DisciplineSpec, sim: Simulator, port_name: str, link: Link
) -> Scheduler:
    """Instantiate the scheduler a :class:`DisciplineSpec` describes for
    one port (per-port overrides resolved first)."""
    spec = resolve_port_discipline(spec, port_name)
    if spec.factory is not None:
        return spec.factory(sim, port_name, link)
    builder = _REGISTRY.get(spec.kind)
    if builder is None:
        raise ValueError(
            f"unknown discipline kind {spec.kind!r}; known: {discipline_kinds()}"
        )
    return builder(spec.param_dict, sim, link)
