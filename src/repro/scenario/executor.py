"""Persistent sweep execution engine.

The orchestration layer between declarative sweeps and the process pool.
:class:`SweepExecutor` replaces the old per-call ``multiprocessing.Pool``
fan-out with four structural changes:

* **Flattened task graph.**  A sweep of (overrides × seeds) runs, each
  comparing D disciplines, becomes ``runs × D`` independently schedulable
  tasks — one discipline simulation each — instead of one coarse task per
  run whose disciplines execute serially inside a worker.  Load balance
  improves whenever runs are fewer than workers or disciplines differ in
  cost, and early results stream out per simulation, not per run.
* **Warm workers, compact tasks.**  The pool is created once per base
  spec and reused across ``run_sweep`` calls: a pool initializer ships the
  pickled base :class:`ScenarioSpec` to every worker a single time, and
  each task travels as a small ``(override, seed, discipline-index)``
  delta.  :func:`resolve_task_spec` reconstructs the exact spec the serial
  path would build, so placement cannot perturb results.
* **Streaming collection.**  Results arrive through ``imap_unordered``
  and are reassembled deterministically into expansion order; an
  ``on_result`` callback fires as each run finishes (completion order) for
  progress reporting or incremental JSON writing.
* **Budgets and early stopping.**  A per-run wall-clock budget slices
  each simulation into engine ``run(until=...)`` windows and abandons it
  once the budget is spent (``budget_expired``); an ``early_stop``
  predicate over the completed runs stops dispatching further runs
  (``stopped``).  Both outcomes are recorded explicitly in the result
  list; *completed* runs are bit-identical to serial execution — slicing
  fires the identical event sequence, only the stopping rule changes.

Determinism contract: serial, pooled, and streamed execution produce
bit-identical ``comparable_dict()`` payloads for every completed run.
Which runs complete under a budget or an early-stop predicate is
inherently timing-dependent (wall clocks and completion order vary);
what a completed run contains is not.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import pickle
import threading
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.scenario.runner import (
    DisciplineRunResult,
    ScenarioContext,
    ScenarioResult,
)
from repro.scenario.spec import ScenarioSpec

Override = Union[Mapping, ScenarioSpec]

#: Task / run statuses recorded in sweep outcomes.
COMPLETED = "completed"
BUDGET_EXPIRED = "budget_expired"
STOPPED = "stopped"

#: How many ``run(until=...)`` windows a budgeted simulation is sliced
#: into.  Slicing is behaviour-neutral (the engine fires the identical
#: event sequence); more slices only tighten how promptly an expired
#: budget is noticed.
DEFAULT_BUDGET_SLICES = 32

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL
_UNSET = object()


# ----------------------------------------------------------------------
# Expansion: one base spec -> (override, seed) deltas -> flattened tasks
# ----------------------------------------------------------------------


def expand_deltas(
    spec: ScenarioSpec,
    over: Optional[Iterable[Override]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[Tuple[Override, int]]:
    """The sweep's run list as compact ``(override, seed)`` deltas.

    Mirrors :func:`repro.scenario.sweep.expand` (override-major,
    seed-minor) without materializing a full spec per run: workers rebuild
    specs from these deltas, and :func:`resolve_run_spec` is the single
    authoritative reconstruction both sides share.
    """
    overrides = list(over) if over is not None else [{}]
    seed_list = list(seeds) if seeds is not None else None
    if not overrides:
        raise ValueError("over must contain at least one entry")
    if seed_list is not None and not seed_list:
        raise ValueError("seeds must contain at least one seed")
    deltas: List[Tuple[Override, int]] = []
    for override in overrides:
        if seed_list is not None:
            own_seeds: Sequence[int] = seed_list
        elif isinstance(override, ScenarioSpec):
            # A whole-spec override keeps its own seed.
            own_seeds = [override.seed]
        else:
            own_seeds = [dict(override).get("seed", spec.seed)]
        for seed in own_seeds:
            deltas.append((override, seed))
    return deltas


def resolve_run_spec(
    base: ScenarioSpec, override: Override, seed: int
) -> ScenarioSpec:
    """The concrete spec of one run, rebuilt from its delta.

    Identical on the parent and in workers: apply the override (a field
    mapping via :meth:`ScenarioSpec.replace`, or a whole replacement
    spec), then pin the seed.
    """
    spec = override if isinstance(override, ScenarioSpec) else base.replace(**override)
    return spec.replace(seed=seed)


def resolve_task_spec(
    base: ScenarioSpec, override: Override, seed: int, discipline_index: int
) -> ScenarioSpec:
    """The single-discipline spec of one flattened task."""
    run_spec = resolve_run_spec(base, override, seed)
    return run_spec.replace(
        disciplines=(run_spec.disciplines[discipline_index],)
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TaskResult:
    """One flattened task's outcome (a single discipline simulation).

    ``result`` is the :class:`DisciplineRunResult` for completed default
    tasks, the ``task_fn`` return value for custom tasks, or ``None`` when
    the budget expired.  ``sim_seconds`` records how far the simulation
    clock got (equal to the spec duration on completion).
    """

    index: int
    run_index: int
    discipline_index: int
    discipline: str
    status: str
    result: Any
    wall_seconds: float
    sim_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "discipline": self.discipline,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "sim_seconds": self.sim_seconds,
        }


@dataclasses.dataclass(frozen=True)
class SweepRun:
    """One expanded run of a sweep, with its explicit outcome.

    ``status`` is :data:`COMPLETED` when every discipline task finished
    (``result`` then holds the assembled :class:`ScenarioResult`),
    :data:`BUDGET_EXPIRED` when any task ran out of wall-clock budget, or
    :data:`STOPPED` when early stopping cancelled tasks before they were
    dispatched.  ``tasks`` holds whatever task results exist, in
    discipline order.
    """

    index: int
    spec: ScenarioSpec
    status: str
    result: Optional[ScenarioResult]
    tasks: Tuple[TaskResult, ...]

    @property
    def wall_seconds(self) -> float:
        return sum(task.wall_seconds for task in self.tasks)

    @property
    def payloads(self) -> Tuple[Any, ...]:
        """Raw per-task results (useful with a custom ``task_fn``)."""
        return tuple(task.result for task in self.tasks)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "scenario": self.spec.name,
            "seed": self.spec.seed,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "tasks": [task.to_dict() for task in self.tasks],
            "result": (
                self.result.to_dict() if self.result is not None else None
            ),
        }


class SweepOutcome(Sequence):
    """All runs of one sweep, in expansion order, statuses explicit."""

    def __init__(self, runs: Iterable[SweepRun]):
        self.runs: Tuple[SweepRun, ...] = tuple(runs)

    def __len__(self) -> int:
        return len(self.runs)

    def __getitem__(self, index):
        return self.runs[index]

    @property
    def results(self) -> List[ScenarioResult]:
        """Completed :class:`ScenarioResult`\\ s, in expansion order."""
        return [
            run.result
            for run in self.runs
            if run.status == COMPLETED and run.result is not None
        ]

    def with_status(self, status: str) -> List[SweepRun]:
        return [run for run in self.runs if run.status == status]

    @property
    def counts(self) -> Dict[str, int]:
        counts = {COMPLETED: 0, BUDGET_EXPIRED: 0, STOPPED: 0}
        for run in self.runs:
            counts[run.status] = counts.get(run.status, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counts": self.counts,
            "runs": [run.to_dict() for run in self.runs],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        counts = self.counts
        return (
            f"<SweepOutcome runs={len(self.runs)} "
            f"completed={counts[COMPLETED]} "
            f"budget_expired={counts[BUDGET_EXPIRED]} "
            f"stopped={counts[STOPPED]}>"
        )


# ----------------------------------------------------------------------
# Early-stopping helpers
# ----------------------------------------------------------------------


def stop_when_ci_below(
    metric: Callable[[Any], float],
    rel_half_width: float = 0.05,
    min_runs: int = 4,
    z: float = 1.96,
) -> Callable[[List[SweepRun]], bool]:
    """An ``early_stop`` predicate closing a seed ladder on confidence.

    Stops once the normal-approximation confidence interval of ``metric``
    across the completed runs has half-width ``<= rel_half_width *
    |mean|``.  The classic use: replicate a scenario across seeds until
    the estimate is tight, instead of always paying for the full ladder.

    ``metric`` receives each completed run's :class:`ScenarioResult` —
    or, for custom-``task_fn`` sweeps (where ``SweepRun.result`` is
    ``None``), the task's raw payload — so task-function replication
    ladders can close on their own estimand too.
    """
    if min_runs < 2:
        raise ValueError("min_runs must be at least 2")

    def predicate(completed: List[SweepRun]) -> bool:
        values = [
            metric(
                run.result if run.result is not None else run.payloads[0]
            )
            for run in completed
        ]
        n = len(values)
        if n < min_runs:
            return False
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        half_width = z * math.sqrt(variance / n)
        # A zero mean with zero variance is a closed (width-0) interval;
        # a zero mean with spread never satisfies the relative criterion.
        return half_width <= rel_half_width * abs(mean)

    return predicate


# ----------------------------------------------------------------------
# Task execution (runs in workers; module-level so it pickles)
# ----------------------------------------------------------------------

# The base spec a pool's workers were warm-started with (one-cell mutable
# so the initializer can assign it under fork and spawn alike), and the
# whole-spec overrides shipped alongside it, keyed by blob fingerprint.
# Whole-spec overrides (``gen:*`` sweeps replace the entire spec per run)
# would otherwise be re-pickled into every task payload; instead each
# distinct spec ships once per worker at pool start and task payloads
# carry a ``(_SPEC_REF, fingerprint)`` marker.
_WORKER_BASE: List[Optional[ScenarioSpec]] = [None]
_WORKER_SPECS: Dict[str, ScenarioSpec] = {}

_SPEC_REF = "__specref__"


def _fingerprint(blob: bytes) -> str:
    return hashlib.sha1(blob).hexdigest()


def _deref_override(
    override: Any, table: Dict[str, ScenarioSpec]
) -> Override:
    """Resolve a spec-reference marker back to its shipped spec."""
    if (
        isinstance(override, tuple)
        and len(override) == 2
        and override[0] == _SPEC_REF
    ):
        return table[override[1]]
    return override


def _init_worker(
    base_blob: bytes, override_blobs: Tuple[Tuple[str, bytes], ...] = ()
) -> None:
    """Pool initializer: unpack the base spec (and any whole-spec
    overrides) shipped once per worker."""
    _WORKER_BASE[0] = pickle.loads(base_blob)
    _WORKER_SPECS.clear()
    for fingerprint, blob in override_blobs:
        _WORKER_SPECS[fingerprint] = pickle.loads(blob)


def _execute_delta(payload: tuple) -> TaskResult:
    """Worker entry point: rebuild the task's spec from its delta and run."""
    index, run_index, discipline_index, override, seed, budget, slices, task_fn = payload
    override = _deref_override(override, _WORKER_SPECS)
    if task_fn is not None:
        # Custom task functions own the whole run (all disciplines).
        spec = resolve_run_spec(_WORKER_BASE[0], override, seed)
    else:
        spec = resolve_task_spec(
            _WORKER_BASE[0], override, seed, discipline_index
        )
    return run_task(
        spec,
        index=index,
        run_index=run_index,
        discipline_index=discipline_index,
        budget_seconds=budget,
        budget_slices=slices,
        task_fn=task_fn,
    )


def run_task(
    spec: ScenarioSpec,
    index: int = 0,
    run_index: int = 0,
    discipline_index: int = 0,
    budget_seconds: Optional[float] = None,
    budget_slices: int = DEFAULT_BUDGET_SLICES,
    task_fn: Optional[Callable[[ScenarioSpec], Any]] = None,
) -> TaskResult:
    """Run one flattened task: a single-discipline spec to completion.

    With a ``budget_seconds``, the simulation advances in
    ``duration / budget_slices`` windows and is abandoned
    (:data:`BUDGET_EXPIRED`) once the wall clock exceeds the budget with
    simulated time still remaining.  Slicing fires the identical event
    sequence as one uninterrupted run, so completed budgeted runs stay
    bit-identical to unbudgeted ones.

    A custom ``task_fn`` (orchestrated scenarios: mid-run admission, phase
    waves) replaces the default build-run-collect; it receives the
    reconstructed spec and its return value becomes ``TaskResult.result``.
    Budgets do not apply to custom task functions.
    """
    started = time.perf_counter()
    if task_fn is not None:
        payload = task_fn(spec)
        return TaskResult(
            index=index,
            run_index=run_index,
            discipline_index=discipline_index,
            discipline="+".join(d.name for d in spec.disciplines),
            status=COMPLETED,
            result=payload,
            wall_seconds=time.perf_counter() - started,
            sim_seconds=spec.duration,
        )
    from repro.fluid.engine import effective_engine, run_fluid_discipline

    if effective_engine(spec) == "fluid":
        # The fluid engine advances whole epochs, not events; budgets
        # (already coarse-grained guards) do not slice it.
        return TaskResult(
            index=index,
            run_index=run_index,
            discipline_index=discipline_index,
            discipline=spec.disciplines[0].name,
            status=COMPLETED,
            result=run_fluid_discipline(spec),
            wall_seconds=time.perf_counter() - started,
            sim_seconds=spec.duration,
        )
    context = ScenarioContext(spec, spec.disciplines[0])
    status = COMPLETED
    if budget_seconds is None:
        context.run()
    else:
        step = spec.duration / max(int(budget_slices), 1)
        window = 0
        while context.sim.now < spec.duration:
            window += 1
            context.run(until=min(spec.duration, step * window))
            if (
                time.perf_counter() - started > budget_seconds
                and context.sim.now < spec.duration
            ):
                status = BUDGET_EXPIRED
                break
    return TaskResult(
        index=index,
        run_index=run_index,
        discipline_index=discipline_index,
        discipline=spec.disciplines[0].name,
        status=status,
        result=context.collect() if status == COMPLETED else None,
        wall_seconds=time.perf_counter() - started,
        sim_seconds=context.sim.now,
    )


# ----------------------------------------------------------------------
# Deterministic reassembly + streaming callbacks
# ----------------------------------------------------------------------


class _Assembler:
    """Folds streaming task results back into runs, in any arrival order.

    A run finishes when all its tasks have reported; ``on_result`` fires
    then (completion order), and ``early_stop`` — evaluated over the
    completed runs — raises the stop flag the dispatchers watch.
    """

    def __init__(
        self,
        run_specs: List[ScenarioSpec],
        run_task_counts: List[int],
        early_stop: Optional[Callable[[List[SweepRun]], bool]],
        on_result: Optional[Callable[[SweepRun], None]],
        custom_tasks: bool,
    ):
        self._run_specs = run_specs
        self._counts = run_task_counts
        self._early_stop = early_stop
        self._on_result = on_result
        self._custom_tasks = custom_tasks
        self._slots: List[Dict[int, TaskResult]] = [{} for _ in run_specs]
        self._finished: Dict[int, SweepRun] = {}
        self.completed: List[SweepRun] = []  # streaming (completion) order
        self.stop = False

    def offer(self, task: TaskResult) -> None:
        slot = self._slots[task.run_index]
        slot[task.discipline_index] = task
        if len(slot) < self._counts[task.run_index]:
            return
        run = self._assemble(task.run_index)
        self._finished[task.run_index] = run
        if self._on_result is not None:
            self._on_result(run)
        if run.status == COMPLETED:
            self.completed.append(run)
            if (
                not self.stop
                and self._early_stop is not None
                and self._early_stop(list(self.completed))
            ):
                self.stop = True

    def _assemble(self, run_index: int) -> SweepRun:
        spec = self._run_specs[run_index]
        tasks = tuple(
            self._slots[run_index][d] for d in sorted(self._slots[run_index])
        )
        if any(task.status == BUDGET_EXPIRED for task in tasks):
            return SweepRun(run_index, spec, BUDGET_EXPIRED, None, tasks)
        result = None
        if not self._custom_tasks:
            result = ScenarioResult(
                scenario=spec.name,
                seed=spec.seed,
                duration=spec.duration,
                warmup=spec.warmup,
                runs=tuple(task.result for task in tasks),
            )
        return SweepRun(run_index, spec, COMPLETED, result, tasks)

    def outcome(self) -> SweepOutcome:
        """All runs in expansion order; unfinished ones marked stopped."""
        runs = []
        for run_index, spec in enumerate(self._run_specs):
            run = self._finished.get(run_index)
            if run is None:
                tasks = tuple(
                    self._slots[run_index][d]
                    for d in sorted(self._slots[run_index])
                )
                run = SweepRun(run_index, spec, STOPPED, None, tasks)
            runs.append(run)
        return SweepOutcome(runs)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class SweepExecutor:
    """Persistent, reusable sweep execution engine.

    Args:
        workers: process count; ``None``/``0``/``1`` executes serially in
            this process (still streaming through ``on_result``).
        budget_seconds: default per-task wall-clock budget applied to
            every ``run_sweep`` call that does not override it.
        budget_slices: granularity of the budget check (see
            :func:`run_task`).
        window: maximum tasks in flight beyond the workers' hands; bounds
            how much already-dispatched work an early stop can waste.
            Defaults to ``2 * workers``.

    The pool is created lazily on the first pooled sweep and reused across
    subsequent sweeps of the same base spec — workers are warm-started
    with the base spec once (pool initializer), and every task ships as a
    compact ``(override, seed, discipline-index)`` delta.  Sweeping a
    different base spec recycles the pool (the one moment the full spec
    crosses a process boundary again).  Use as a context manager, or call
    :meth:`close` when done.

    ``stats`` accumulates orchestration telemetry across the executor's
    lifetime: pools created, sweeps run, tasks dispatched / completed /
    expired / skipped, and pickled bytes shipped (base spec per worker;
    per-task delta bytes only when ``track_task_bytes=True``, since
    measuring them costs a second serialization) — the quantities
    ``benchmarks/perf/sweepbench.py`` tracks.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        budget_seconds: Optional[float] = None,
        budget_slices: int = DEFAULT_BUDGET_SLICES,
        window: Optional[int] = None,
        track_task_bytes: bool = False,
    ):
        self.workers = int(workers) if workers else 0
        self.budget_seconds = budget_seconds
        self.budget_slices = budget_slices
        self.window = window
        self.track_task_bytes = track_task_bytes
        self._pool = None
        self._pool_base: Optional[ScenarioSpec] = None
        self._pool_size = 0
        self._pool_fps: frozenset = frozenset()
        self.stats: Dict[str, int] = {
            "pools_created": 0,
            "sweeps": 0,
            "tasks_total": 0,
            "tasks_dispatched": 0,
            "tasks_completed": 0,
            "tasks_budget_expired": 0,
            "tasks_skipped": 0,
            "base_bytes": 0,
            "task_bytes": 0,
            "override_specs_shipped": 0,
            "override_bytes": 0,
        }

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_base = None
            self._pool_size = 0
            self._pool_fps = frozenset()

    def _ensure_pool(
        self,
        base: ScenarioSpec,
        task_count: int,
        override_blobs: Optional[Dict[str, bytes]] = None,
    ) -> None:
        # Never fork more workers than there are tasks; grow (recycle) a
        # pool that was sized for a smaller earlier sweep.  Reuse also
        # requires the workers to already hold every whole-spec override
        # this sweep references (initializers only run at worker start).
        override_blobs = override_blobs or {}
        size = min(self.workers, task_count)
        fps = frozenset(override_blobs)
        if (
            self._pool is not None
            and self._pool_base == base
            and self._pool_size >= size
            and fps <= self._pool_fps
        ):
            return
        self.close()
        import multiprocessing

        blob = pickle.dumps(base, _PICKLE_PROTOCOL)
        shipped = tuple(sorted(override_blobs.items()))
        self._pool = multiprocessing.Pool(
            size, initializer=_init_worker, initargs=(blob, shipped)
        )
        self._pool_base = base
        self._pool_size = size
        self._pool_fps = fps
        self.stats["pools_created"] += 1
        self.stats["base_bytes"] += len(blob) * size
        self.stats["override_specs_shipped"] += len(shipped) * size
        self.stats["override_bytes"] += (
            sum(len(b) for _, b in shipped) * size
        )

    # -- the sweep -----------------------------------------------------
    def run_sweep(
        self,
        spec: ScenarioSpec,
        over: Optional[Iterable[Override]] = None,
        seeds: Optional[Sequence[int]] = None,
        *,
        budget_seconds=_UNSET,
        early_stop: Optional[Callable[[List[SweepRun]], bool]] = None,
        on_result: Optional[Callable[[SweepRun], None]] = None,
        task_fn: Optional[Callable[[ScenarioSpec], Any]] = None,
    ) -> SweepOutcome:
        """Execute one sweep through the flattened task graph.

        Args:
            over / seeds: the expansion, exactly as in
                :func:`repro.scenario.sweep.expand`.
            budget_seconds: per-task wall-clock budget for this sweep
                (defaults to the executor's).  Each discipline simulation
                of a run gets its own budget; a D-discipline run may
                therefore spend up to D times this much wall clock and
                still complete.  Incompatible with ``task_fn`` (raises
                ``ValueError``).
            early_stop: predicate over the completed :class:`SweepRun`
                list (completion order); returning True stops dispatching
                new runs.  Undispatched runs are reported ``stopped``.
            on_result: called with each :class:`SweepRun` as it finishes
                (completed or budget-expired), in completion order —
                serial execution makes that expansion order.
            task_fn: optional module-level callable ``spec -> payload``
                replacing the default single-discipline simulation; the
                sweep then dispatches one task per *run* (the function
                owns its whole scenario, e.g. mid-run orchestration) and
                ``SweepRun.result`` stays ``None`` — read
                ``SweepRun.payloads`` instead.

        Returns:
            A :class:`SweepOutcome` — every expanded run in expansion
            order with an explicit status.
        """
        budget = (
            self.budget_seconds if budget_seconds is _UNSET else budget_seconds
        )
        if task_fn is not None and budget is not None:
            # Budget slicing lives in the default build-run-collect task;
            # a custom task function owns its own loop, so accepting a
            # budget here would silently not enforce it.
            raise ValueError(
                "budget_seconds does not apply to a custom task_fn; "
                "enforce budgets inside the task function instead"
            )
        deltas = expand_deltas(spec, over=over, seeds=seeds)
        run_specs = [
            resolve_run_spec(spec, override, seed) for override, seed in deltas
        ]
        # Whole-spec overrides are pickled once here, deduplicated by
        # fingerprint, and replaced in task payloads by a tiny reference:
        # workers get the spec table at pool start instead of a full
        # spec inside every task.
        override_blobs: Dict[str, bytes] = {}
        ref_specs: Dict[str, ScenarioSpec] = {}
        payload_overrides: List[Any] = []
        for override, _seed in deltas:
            if isinstance(override, ScenarioSpec):
                blob = pickle.dumps(override, _PICKLE_PROTOCOL)
                fingerprint = _fingerprint(blob)
                override_blobs.setdefault(fingerprint, blob)
                ref_specs.setdefault(fingerprint, override)
                payload_overrides.append((_SPEC_REF, fingerprint))
            else:
                payload_overrides.append(override)
        payloads: List[tuple] = []
        run_task_counts: List[int] = []
        for run_index, ((override, seed), run_spec) in enumerate(
            zip(deltas, run_specs)
        ):
            count = 1 if task_fn is not None else len(run_spec.disciplines)
            run_task_counts.append(count)
            for discipline_index in range(count):
                payloads.append(
                    (
                        len(payloads),
                        run_index,
                        discipline_index,
                        payload_overrides[run_index],
                        seed,
                        budget,
                        self.budget_slices,
                        task_fn,
                    )
                )
        self.stats["sweeps"] += 1
        self.stats["tasks_total"] += len(payloads)

        assembler = _Assembler(
            run_specs,
            run_task_counts,
            early_stop,
            on_result,
            custom_tasks=task_fn is not None,
        )
        if self.workers > 1 and len(payloads) > 1:
            self._run_pooled(spec, payloads, assembler, override_blobs)
        else:
            self._run_serial(spec, payloads, assembler, ref_specs)
        outcome = assembler.outcome()
        for run in outcome.runs:
            for task in run.tasks:
                if task.status == COMPLETED:
                    self.stats["tasks_completed"] += 1
                elif task.status == BUDGET_EXPIRED:
                    self.stats["tasks_budget_expired"] += 1
        self.stats["tasks_skipped"] += len(payloads) - sum(
            len(run.tasks) for run in outcome.runs
        )
        return outcome

    # -- serial path ---------------------------------------------------
    def _run_serial(
        self,
        base: ScenarioSpec,
        payloads: List[tuple],
        assembler: _Assembler,
        ref_specs: Optional[Dict[str, ScenarioSpec]] = None,
    ) -> None:
        for payload in payloads:
            if assembler.stop:
                break
            (index, run_index, discipline_index, override, seed, budget,
             slices, task_fn) = payload
            override = _deref_override(override, ref_specs or {})
            self.stats["tasks_dispatched"] += 1
            if task_fn is not None:
                spec = resolve_run_spec(base, override, seed)
            else:
                spec = resolve_task_spec(
                    base, override, seed, discipline_index
                )
            assembler.offer(
                run_task(
                    spec,
                    index=index,
                    run_index=run_index,
                    discipline_index=discipline_index,
                    budget_seconds=budget,
                    budget_slices=slices,
                    task_fn=task_fn,
                )
            )

    # -- pooled path ---------------------------------------------------
    def _run_pooled(
        self,
        base: ScenarioSpec,
        payloads: List[tuple],
        assembler: _Assembler,
        override_blobs: Optional[Dict[str, bytes]] = None,
    ) -> None:
        self._ensure_pool(base, len(payloads), override_blobs)
        window = self.window or max(2 * self._pool_size, 4)
        slots = threading.Semaphore(window)
        # Byte accounting re-pickles each payload; off by default so the
        # dispatch path does the serialization work exactly once (the
        # pool's own).  sweepbench switches it on to measure.
        track_bytes = self.track_task_bytes

        def stream():
            # Runs in the pool's task-feeder thread.  The semaphore is the
            # back-pressure that makes early stopping effective: at most
            # ``window`` tasks are in flight, so a stop wastes bounded
            # work instead of having dispatched the whole sweep already.
            for payload in payloads:
                slots.acquire()
                if assembler.stop:
                    return
                self.stats["tasks_dispatched"] += 1
                if track_bytes:
                    self.stats["task_bytes"] += len(
                        pickle.dumps(payload, _PICKLE_PROTOCOL)
                    )
                yield payload

        iterator = self._pool.imap_unordered(
            _execute_delta, stream(), chunksize=1
        )
        try:
            for task_result in iterator:
                assembler.offer(task_result)
                slots.release()
        except BaseException:
            # Unwedge the feeder thread (it may be blocked on a slot),
            # then drop the pool: its queues are in an unknown state.
            assembler.stop = True
            slots.release()
            self.close()
            raise
