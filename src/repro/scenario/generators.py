"""Seeded, deterministic scenario generators.

The paper demonstrates its architecture claims on a handful of
hand-picked topologies; this module samples whole families of operating
points — and every sample is a frozen, serializable
:class:`~repro.scenario.spec.ScenarioSpec` that regenerates bit-identically
from its ``gen_seed`` in any process (generation draws only from
``random.Random(str)``, whose string seeding is version-stable).

Topology families:

* :func:`random_graph_topology` — Erdős–Rényi-style directed graphs, or
  Barabási–Albert-style scale-free graphs (``scale_free=True``), with a
  random ring repair that guarantees strong connectivity
  (``repair=False`` keeps the raw sample, which may be disconnected —
  building a spec whose flow has no route then raises
  :class:`~repro.net.routing.RoutingError` naming the flow).
* :func:`wan_path_topology` — a propagation-delay-dominated WAN chain:
  per-link propagation sampled from ``propagation_range`` (seconds),
  typically tens of packet transmission times.
* :func:`access_core_topology` — asymmetric access links (rates sampled
  from ``leaf_rate_range``) fanning into one fast core/egress link.

Flow population: :func:`generate_flows` places a mixed
guaranteed/predicted/datagram population over candidate host pairs and
sizes it so the most-loaded link reaches ``target_utilization``,
computing per-link offered load over the exact static routes the
simulator will use.  Longest paths are seeded first so every scenario
has multi-hop flows to measure jitter on.

Scenario builders (:func:`random_graph`, :func:`wan_path`,
:func:`access_core`, :func:`wan_guaranteed`) are registered in the
scenario registry under ``gen:`` names — run them from the CLI with
``--spec gen:random-graph --gen-seed N`` — and, being plain specs, sweep
like anything else (``sweep(base, over=[...generated specs...])``).
Generated specs opt into the :mod:`repro.validate` invariant checks by
default.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.routing import RoutingError, StaticRouting
from repro.scenario import paper, registry
from repro.scenario.spec import (
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    HostAttachment,
    LinkSpec,
    OutageSpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.net.packet import ServiceClass

GEN_PREFIX = "gen:"

#: Default service mix of generated populations (must sum to 1):
#: two predicted classes plus datagram background, the regime the
#: FIFO/FIFO+/CSZ flagship compares.
DEFAULT_MIX: Tuple[Tuple[str, float], ...] = (
    ("predicted_high", 0.35),
    ("predicted_low", 0.35),
    ("datagram", 0.30),
)

#: Hard cap on generated population size, so an unreachable utilization
#: target (e.g. a topology whose bottleneck the flows cannot load)
#: terminates with the achievable load instead of spinning.
MAX_FLOWS = 240

#: Fraction of a link's rate guaranteed clock commitments may occupy.
GUARANTEED_QUOTA = 0.6


def _rng(gen_seed: int, salt: str) -> random.Random:
    """A deterministic stream per (gen_seed, purpose)."""
    return random.Random(f"{salt}:{int(gen_seed)}")


# ----------------------------------------------------------------------
# Topology generators
# ----------------------------------------------------------------------


def random_graph_topology(
    gen_seed: int,
    num_switches: int = 8,
    edge_prob: float = 0.25,
    scale_free: bool = False,
    attach_edges: int = 2,
    rate_bps: float = paper.LINK_RATE_BPS,
    buffer_packets: int = paper.BUFFER_PACKETS,
    propagation_range: Tuple[float, float] = (0.0, 0.0),
    repair: bool = True,
) -> TopologySpec:
    """A seeded random directed graph with one host per switch.

    Args:
        edge_prob: probability of each directed switch pair getting a
            link (ignored when ``scale_free``).
        scale_free: grow the graph by preferential attachment instead —
            each new switch links (duplex) to ``attach_edges`` existing
            switches chosen proportionally to their degree, yielding the
            hub-dominated topologies of real internetworks.
        repair: add a random ring over all switches so the graph is
            strongly connected (every host pair routable).  ``False``
            keeps the raw sample; a disconnected sample then surfaces as
            a :class:`RoutingError` naming the affected flow when a spec
            over it is built.
    """
    if num_switches < 2:
        raise ValueError("a random graph needs at least 2 switches")
    rng = _rng(gen_seed, "random-graph-topology")
    nodes = tuple(f"N-{i + 1}" for i in range(num_switches))
    edges = set()
    if scale_free:
        edges.add((nodes[0], nodes[1]))
        edges.add((nodes[1], nodes[0]))
        degree = {nodes[0]: 1, nodes[1]: 1}
        for new in nodes[2:]:
            existing = [n for n in nodes if n in degree]
            targets: List[str] = []
            for _ in range(min(attach_edges, len(existing))):
                pool = [n for n in existing if n not in targets]
                weights = [degree[n] for n in pool]
                targets.append(rng.choices(pool, weights=weights)[0])
            degree[new] = 0
            for target in targets:
                edges.add((new, target))
                edges.add((target, new))
                degree[new] += 1
                degree[target] += 1
    else:
        for src in nodes:
            for dst in nodes:
                if src != dst and rng.random() < edge_prob:
                    edges.add((src, dst))
    if repair:
        ring = list(nodes)
        rng.shuffle(ring)
        for here, there in zip(ring, ring[1:] + ring[:1]):
            edges.add((here, there))
    links = []
    for src, dst in sorted(edges):
        delay = (
            rng.uniform(*propagation_range)
            if propagation_range[1] > 0
            else 0.0
        )
        links.append(
            LinkSpec(
                src=src,
                dst=dst,
                rate_bps=rate_bps,
                buffer_packets=buffer_packets,
                propagation_delay=delay,
            )
        )
    hosts = tuple(
        HostAttachment(host=f"H-{i + 1}", switch=node)
        for i, node in enumerate(nodes)
    )
    return TopologySpec(
        nodes=nodes, links=tuple(links), host_attachments=hosts
    )


def wan_path_topology(
    gen_seed: int,
    hops: int = 6,
    propagation_range: Tuple[float, float] = (0.005, 0.03),
    rate_bps: float = paper.LINK_RATE_BPS,
    buffer_packets: int = paper.BUFFER_PACKETS,
) -> TopologySpec:
    """A WAN chain whose links carry sampled propagation delays.

    With the default range each hop adds 5–30 ms of propagation — 5 to
    30 packet transmission times at the paper's 1 Mbit/s — so end-to-end
    delay is dominated by distance, not queueing: the regime where
    jitter (not mean delay) is the whole story.
    """
    if hops < 1:
        raise ValueError("a WAN path needs at least 1 hop")
    rng = _rng(gen_seed, "wan-path-topology")
    nodes = tuple(f"W-{i + 1}" for i in range(hops + 1))
    links = tuple(
        LinkSpec(
            src=here,
            dst=there,
            rate_bps=rate_bps,
            buffer_packets=buffer_packets,
            propagation_delay=rng.uniform(*propagation_range),
        )
        for here, there in zip(nodes, nodes[1:])
    )
    hosts = tuple(
        HostAttachment(host=f"H-{i + 1}", switch=node)
        for i, node in enumerate(nodes)
    )
    return TopologySpec(
        nodes=nodes, links=links, host_attachments=hosts
    )


def access_core_topology(
    gen_seed: int,
    num_leaves: int = 6,
    leaf_rate_range: Tuple[float, float] = (256_000.0, 768_000.0),
    core_rate_bps: float = paper.LINK_RATE_BPS,
    buffer_packets: int = paper.BUFFER_PACKETS,
) -> TopologySpec:
    """Asymmetric access links feeding a fast core.

    ``num_leaves`` access switches, each with one host and an uplink to
    the core at a rate sampled from ``leaf_rate_range``; the core drains
    into an egress switch (where the sink host lives) at
    ``core_rate_bps``.  The sampled uplinks typically sum to more than
    the core rate, so the core link is the shared bottleneck and every
    access link shapes its own fan-in differently.
    """
    if num_leaves < 2:
        raise ValueError("an access/core topology needs at least 2 leaves")
    rng = _rng(gen_seed, "access-core-topology")
    leaves = tuple(f"L-{i + 1}" for i in range(num_leaves))
    nodes = leaves + ("CORE", "EGRESS")
    links = tuple(
        LinkSpec(
            src=leaf,
            dst="CORE",
            rate_bps=rng.uniform(*leaf_rate_range),
            buffer_packets=buffer_packets,
        )
        for leaf in leaves
    ) + (
        LinkSpec(
            src="CORE",
            dst="EGRESS",
            rate_bps=core_rate_bps,
            buffer_packets=buffer_packets,
        ),
    )
    hosts = tuple(
        HostAttachment(host=f"src-{i + 1}", switch=leaf)
        for i, leaf in enumerate(leaves)
    ) + (HostAttachment(host="sink-host", switch="EGRESS"),)
    return TopologySpec(
        nodes=nodes, links=links, host_attachments=hosts
    )


# ----------------------------------------------------------------------
# Route + load bookkeeping over a TopologySpec (pre-build)
# ----------------------------------------------------------------------


def topology_routes(topology: TopologySpec) -> StaticRouting:
    """The exact static routing the simulator will compute at build time.

    Mirrors :class:`~repro.net.network.Network` construction: directed
    edges for inter-switch links, bidirectional edges for host
    attachments.
    """
    routing = StaticRouting()
    for node in topology.nodes:
        routing.add_node(node)
    for link in topology.links:
        routing.add_edge(link.src, link.dst)
    for att in topology.host_attachments:
        routing.add_edge(att.host, att.switch)
        routing.add_edge(att.switch, att.host)
    return routing


def links_on_route(
    topology: TopologySpec,
    routing: StaticRouting,
    src_host: str,
    dst_host: str,
) -> Tuple[str, ...]:
    """Inter-switch link names a host pair's flow will traverse."""
    link_names = set(topology.link_names)
    nodes = routing.path(src_host, dst_host)
    return tuple(
        f"{here}->{there}"
        for here, there in zip(nodes, nodes[1:])
        if f"{here}->{there}" in link_names
    )


# ----------------------------------------------------------------------
# Flow population
# ----------------------------------------------------------------------


def _pick_service(rng: random.Random, mix: Tuple[Tuple[str, float], ...]):
    draw = rng.random()
    acc = 0.0
    for name, weight in mix:
        acc += weight
        if draw < acc:
            return name
    return mix[-1][0]


def generate_flows(
    topology: TopologySpec,
    gen_seed: int,
    target_utilization: float = 0.85,
    mix: Tuple[Tuple[str, float], ...] = DEFAULT_MIX,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ensure_multihop: int = 2,
    max_flows: int = MAX_FLOWS,
    average_rate_pps: float = paper.AVERAGE_RATE_PPS,
    packet_size_bits: int = paper.PACKET_BITS,
    with_requests: bool = False,
    packet_size_range: Optional[Tuple[int, int]] = None,
) -> Tuple[FlowSpec, ...]:
    """A mixed flow population sized to a target bottleneck utilization.

    Flows are placed over ``pairs`` (default: every distinct host pair
    with at least one inter-switch link between them) in a seeded random
    cycle — after the ``ensure_multihop`` longest-path pairs, so every
    scenario has long-haul flows whose jitter the multi-hop disciplines
    differentiate on.  Placement stops once the most-loaded link's
    offered load reaches ``target_utilization`` of its rate (or at
    ``max_flows``).

    Service mix entries: ``guaranteed`` (service class stamped; with
    ``with_requests`` also a :class:`GuaranteedRequest` at the peak rate,
    capped so committed clock rates stay under ``GUARANTEED_QUOTA`` of
    every traversed link), ``predicted_high`` / ``predicted_low``
    (priority classes 0 / 1), ``datagram``.

    ``packet_size_range`` makes the population heterogeneous: each flow
    draws its own packet size (bits, uniform inclusive) and its offered
    load and guaranteed peak rate scale with that size.  When ``None``
    (the default) no extra draw is consumed, so existing generated
    populations regenerate bit-identically.

    Raises:
        RoutingError: naming the generated flow, when a candidate pair
            has no route (a disconnected unrepaired sample).
    """
    if not 0 < target_utilization:
        raise ValueError("target utilization must be positive")
    rng = _rng(gen_seed, "flow-population")
    routing = topology_routes(topology)
    hosts = topology.host_names
    if pairs is None:
        pairs = [
            (src, dst) for src in hosts for dst in hosts if src != dst
        ]
    if not pairs:
        raise ValueError("no candidate host pairs to place flows over")

    # Resolve every candidate pair's path once; a missing route is a
    # build-time error naming the flow, never a hang.
    routed: List[Tuple[Tuple[str, str], Tuple[str, ...]]] = []
    for index, (src, dst) in enumerate(pairs):
        try:
            route = links_on_route(topology, routing, src, dst)
        except RoutingError as exc:
            raise RoutingError(
                f"generated flow gen-{index} ({src} -> {dst}): {exc}"
            ) from None
        if route:  # same-switch pairs add no load; skip them
            routed.append(((src, dst), route))
    if not routed:
        raise ValueError("no candidate pair crosses an inter-switch link")

    # Longest paths first (deterministic tie-break), then a seeded cycle.
    longest = sorted(routed, key=lambda item: (-len(item[1]), item[0]))
    head = longest[: max(0, ensure_multihop)]
    tail = [item for item in routed if item not in head]
    rng.shuffle(tail)
    order = head + tail

    rates = {link.name: link.rate_bps for link in topology.links}
    offered: Dict[str, float] = {name: 0.0 for name in rates}
    committed: Dict[str, float] = {name: 0.0 for name in rates}

    def bottleneck() -> float:
        return max(offered[name] / rates[name] for name in offered)

    flows: List[FlowSpec] = []
    position = 0
    while len(flows) < max_flows and bottleneck() < target_utilization:
        (src, dst), route = order[position % len(order)]
        position += 1
        size_bits = (
            rng.randint(*packet_size_range)
            if packet_size_range is not None
            else packet_size_bits
        )
        flow_rate_bps = average_rate_pps * size_bits
        peak_rate_bps = 2.0 * flow_rate_bps
        service = _pick_service(rng, mix)
        service_class = ServiceClass.DATAGRAM
        priority_class = 0
        request = None
        if service == "guaranteed":
            fits = all(
                committed[name] + peak_rate_bps
                <= GUARANTEED_QUOTA * rates[name]
                for name in route
            )
            if fits:
                service_class = ServiceClass.GUARANTEED
                if with_requests:
                    request = GuaranteedRequest(
                        clock_rate_bps=peak_rate_bps
                    )
                for name in route:
                    committed[name] += peak_rate_bps
            else:  # no headroom left: ride as predicted instead
                service, priority_class = "predicted_low", 1
                service_class = ServiceClass.PREDICTED
        if service == "predicted_high":
            service_class, priority_class = ServiceClass.PREDICTED, 0
        elif service == "predicted_low":
            service_class, priority_class = ServiceClass.PREDICTED, 1
        flows.append(
            FlowSpec(
                name=f"gen-{len(flows)}",
                source_host=src,
                dest_host=dst,
                average_rate_pps=average_rate_pps,
                packet_size_bits=size_bits,
                service_class=service_class,
                priority_class=priority_class,
                request=request,
                hops=len(route),
            )
        )
        for name in route:
            offered[name] += flow_rate_bps
    return tuple(flows)


def wfq_auto_rate(
    topology: TopologySpec, flows: Sequence[FlowSpec]
) -> float:
    """A safe WFQ auto-register rate for a generated population.

    Sized so that, on every link, committed guaranteed clock rates plus
    this rate for each remaining flow stay within the link rate — the
    precondition of the Parekh-Gallager bound.  (Floor 1 kbit/s.)
    """
    routing = topology_routes(topology)
    rates = {link.name: link.rate_bps for link in topology.links}
    committed: Dict[str, float] = {name: 0.0 for name in rates}
    others: Dict[str, int] = {name: 0 for name in rates}
    for flow in flows:
        route = links_on_route(
            topology, routing, flow.source_host, flow.dest_host
        )
        for name in route:
            if isinstance(flow.request, GuaranteedRequest):
                committed[name] += flow.request.clock_rate_bps
            else:
                others[name] += 1
    candidates = [
        (rates[name] - committed[name]) / others[name]
        for name in rates
        if others[name]
    ]
    return max(1000.0, min(candidates) if candidates else 1000.0)


# ----------------------------------------------------------------------
# Scenario builders (registered under gen: names)
# ----------------------------------------------------------------------


def _default_disciplines() -> Tuple[DisciplineSpec, ...]:
    return (
        DisciplineSpec.fifo(),
        DisciplineSpec.fifoplus(),
        DisciplineSpec.unified(name="CSZ"),
    )


def _assemble(
    name: str,
    topology: TopologySpec,
    flows: Tuple[FlowSpec, ...],
    disciplines: Optional[Tuple[DisciplineSpec, ...]],
    duration: float,
    seed: int,
    warmup: float,
    validate: bool,
) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        topology=topology,
        flows=flows,
        disciplines=tuple(disciplines or _default_disciplines()),
        duration=duration,
        warmup=warmup,
        seed=seed,
        validate=validate,
    )


@registry.register(GEN_PREFIX + "random-graph")
def random_graph(
    gen_seed: int = 1,
    num_switches: int = 8,
    edge_prob: float = 0.25,
    scale_free: bool = False,
    target_utilization: float = 0.85,
    duration: float = paper.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    disciplines: Optional[Tuple[DisciplineSpec, ...]] = None,
    repair: bool = True,
    validate: bool = True,
    propagation_range: Tuple[float, float] = (0.0, 0.0),
) -> ScenarioSpec:
    """A seeded random multi-bottleneck graph under a mixed population."""
    topology = random_graph_topology(
        gen_seed,
        num_switches=num_switches,
        edge_prob=edge_prob,
        scale_free=scale_free,
        repair=repair,
        propagation_range=propagation_range,
    )
    flows = generate_flows(
        topology, gen_seed, target_utilization=target_utilization
    )
    kind = "scale-free" if scale_free else "random-graph"
    return _assemble(
        f"{kind}-g{gen_seed}",
        topology,
        flows,
        disciplines,
        duration,
        seed,
        warmup,
        validate,
    )


@registry.register(GEN_PREFIX + "scale-free")
def scale_free(gen_seed: int = 1, **kwargs) -> ScenarioSpec:
    """The preferential-attachment variant of :func:`random_graph`."""
    return random_graph(gen_seed, scale_free=True, **kwargs)


@registry.register(GEN_PREFIX + "wan-path")
def wan_path(
    gen_seed: int = 1,
    hops: int = 6,
    propagation_range: Tuple[float, float] = (0.005, 0.03),
    target_utilization: float = 0.85,
    duration: float = paper.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    disciplines: Optional[Tuple[DisciplineSpec, ...]] = None,
    validate: bool = True,
) -> ScenarioSpec:
    """A propagation-delay-dominated WAN chain under cross traffic."""
    topology = wan_path_topology(
        gen_seed, hops=hops, propagation_range=propagation_range
    )
    hosts = topology.host_names
    # The chain is one-way: only forward pairs are routable.
    pairs = [
        (hosts[i], hosts[j])
        for i in range(len(hosts))
        for j in range(i + 1, len(hosts))
    ]
    flows = generate_flows(
        topology,
        gen_seed,
        target_utilization=target_utilization,
        pairs=pairs,
    )
    return _assemble(
        f"wan-path-g{gen_seed}",
        topology,
        flows,
        disciplines,
        duration,
        seed,
        warmup,
        validate,
    )


@registry.register(GEN_PREFIX + "access-core")
def access_core(
    gen_seed: int = 1,
    num_leaves: int = 6,
    leaf_rate_range: Tuple[float, float] = (256_000.0, 768_000.0),
    core_rate_bps: float = paper.LINK_RATE_BPS,
    target_utilization: float = 0.85,
    duration: float = paper.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    disciplines: Optional[Tuple[DisciplineSpec, ...]] = None,
    validate: bool = True,
) -> ScenarioSpec:
    """Asymmetric access links fanning into a fast shared core."""
    topology = access_core_topology(
        gen_seed,
        num_leaves=num_leaves,
        leaf_rate_range=leaf_rate_range,
        core_rate_bps=core_rate_bps,
    )
    pairs = [
        (host, "sink-host")
        for host in topology.host_names
        if host != "sink-host"
    ]
    flows = generate_flows(
        topology,
        gen_seed,
        target_utilization=target_utilization,
        pairs=pairs,
    )
    return _assemble(
        f"access-core-g{gen_seed}",
        topology,
        flows,
        disciplines,
        duration,
        seed,
        warmup,
        validate,
    )


@registry.register(GEN_PREFIX + "wan-guaranteed")
def wan_guaranteed(
    gen_seed: int = 1,
    hops: int = 4,
    propagation_range: Tuple[float, float] = (0.005, 0.02),
    target_utilization: float = 0.8,
    guaranteed_share: float = 0.25,
    duration: float = paper.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    validate: bool = True,
) -> ScenarioSpec:
    """Guaranteed-service flows (with installed clock rates) on a WAN path.

    Compares the unified CSZ scheduler against plain WFQ, both
    rate-capable, so every guaranteed request installs its clock rate at
    each hop and the ``guaranteed-delay-bound`` invariant actively
    checks the Parekh-Gallager commitment.  The WFQ side's
    auto-register rate is sized (:func:`wfq_auto_rate`) so total clock
    rates never exceed any link rate — the bound's precondition.
    """
    topology = wan_path_topology(
        gen_seed, hops=hops, propagation_range=propagation_range
    )
    hosts = topology.host_names
    pairs = [
        (hosts[i], hosts[j])
        for i in range(len(hosts))
        for j in range(i + 1, len(hosts))
    ]
    mix = (
        ("guaranteed", guaranteed_share),
        ("predicted_high", (1.0 - guaranteed_share) / 2),
        ("datagram", (1.0 - guaranteed_share) / 2),
    )
    flows = generate_flows(
        topology,
        gen_seed,
        target_utilization=target_utilization,
        mix=mix,
        pairs=pairs,
        with_requests=True,
    )
    disciplines = (
        DisciplineSpec.unified(name="CSZ"),
        DisciplineSpec.wfq(
            auto_register_rate_bps=wfq_auto_rate(topology, flows)
        ),
    )
    return _assemble(
        f"wan-guaranteed-g{gen_seed}",
        topology,
        flows,
        disciplines,
        duration,
        seed,
        warmup,
        validate,
    )


@registry.register(GEN_PREFIX + "outage")
def outage(
    gen_seed: int = 1,
    num_switches: int = 8,
    edge_prob: float = 0.3,
    target_utilization: float = 0.7,
    outage_rate_per_second: float = 0.1,
    mean_outage_seconds: float = 2.0,
    correlated_links: int = 1,
    packet_size_range: Tuple[int, int] = (500, 2_000),
    duration: float = paper.PAPER_DURATION_SECONDS,
    seed: int = 1,
    warmup: float = paper.DEFAULT_WARMUP_SECONDS,
    disciplines: Optional[Tuple[DisciplineSpec, ...]] = None,
    validate: bool = True,
) -> ScenarioSpec:
    """A random repaired graph under a sampled link-outage process.

    The ring repair guarantees strong connectivity, so most single-link
    failures leave an alternate path for the control plane to reroute
    onto; the heterogeneous packet-size population exercises
    conservation under mixed sizes across those reroutes.  Outages start
    after the warmup so statistics windows always contain failover
    transients, and the outage schedule rides its own fixed-name random
    stream — identical across the compared disciplines.
    """
    topology = random_graph_topology(
        gen_seed, num_switches=num_switches, edge_prob=edge_prob
    )
    flows = generate_flows(
        topology,
        gen_seed,
        target_utilization=target_utilization,
        packet_size_range=packet_size_range,
    )
    base = _assemble(
        f"outage-g{gen_seed}",
        topology,
        flows,
        disciplines,
        duration,
        seed,
        warmup,
        validate,
    )
    return dataclasses.replace(
        base,
        outages=OutageSpec(
            rate_per_second=outage_rate_per_second,
            mean_duration_seconds=mean_outage_seconds,
            correlated_links=correlated_links,
            start_after=warmup,
        ),
    )


def generator_names() -> Tuple[str, ...]:
    """The registered ``gen:`` scenario names."""
    return tuple(
        name for name in registry.names() if name.startswith(GEN_PREFIX)
    )
