"""The paper's Appendix constants and canonical workload layouts.

Single source of truth for the numbers every experiment shares: 1000-bit
packets, 1 Mbit/s inter-switch links (so the delay unit — one packet
transmission time — is 1 ms), 200-packet switch buffers, on/off sources
with A = 85 packets/s, B = 5, P = 2A, an (A, 50) token bucket at each
source, and 10-minute runs.  :mod:`repro.experiments.common` re-exports
these for backwards compatibility.
"""

from __future__ import annotations

from typing import List, Tuple

PACKET_BITS = 1000
LINK_RATE_BPS = 1_000_000
TX_TIME_SECONDS = PACKET_BITS / LINK_RATE_BPS  # 1 ms, the paper's delay unit
BUFFER_PACKETS = 200
AVERAGE_RATE_PPS = 85.0
MEAN_BURST_PACKETS = 5.0
BUCKET_PACKETS = 50.0
PAPER_DURATION_SECONDS = 600.0  # "10 minutes of simulated time"
DEFAULT_WARMUP_SECONDS = 5.0

# ----------------------------------------------------------------------
# The Table 2 / Table 3 flow layout on the Figure 1 chain.
#
# 22 flows chosen so each of the four inter-switch links carries exactly
# 10: 12 one-hop, 4 two-hop, 4 three-hop, 2 four-hop (Appendix).  "Hops"
# counts inter-switch links, the paper's path length.
# ----------------------------------------------------------------------

# (name, source host, destination host, hops)
Figure1Placement = Tuple[str, str, str, int]


def _placements() -> List[Figure1Placement]:
    placements: List[Figure1Placement] = []

    def add(count: int, prefix: str, src: int, dst: int) -> None:
        hops = dst - src
        for k in range(count):
            placements.append(
                (f"{prefix}{k + 1}", f"Host-{src}", f"Host-{dst}", hops)
            )

    add(4, "a", 1, 2)  # one-hop on link 1
    add(2, "b", 2, 3)  # one-hop on link 2
    add(2, "c", 3, 4)  # one-hop on link 3
    add(4, "d", 4, 5)  # one-hop on link 4
    add(2, "e", 1, 3)  # two-hop (links 1-2)
    add(2, "f", 3, 5)  # two-hop (links 3-4)
    add(2, "g", 1, 4)  # three-hop (links 1-3)
    add(2, "h", 2, 5)  # three-hop (links 2-4)
    add(2, "i", 1, 5)  # four-hop (links 1-4)
    assert len(placements) == 22
    return placements


FIGURE1_PLACEMENTS: Tuple[Figure1Placement, ...] = tuple(_placements())

# Table 3's commitment assignment.  Chosen so that every link carries
# exactly 2 Guaranteed-Peak, 1 Guaranteed-Average, 3 Predicted-High, and
# 4 Predicted-Low flows — the per-link census the paper states — and so
# that the sampled (type, path length) combinations of Table 3 all exist:
# Peak/4, Peak/2, Avg/3, Avg/1, High/4, High/2, Low/3, Low/1.
GUARANTEED_PEAK_FLOWS = ("e1", "f1", "i1")
GUARANTEED_AVERAGE_FLOWS = ("g1", "d1")
PREDICTED_HIGH_FLOWS = ("i2", "e2", "f2", "a1", "b1", "c1", "d2")
PREDICTED_LOW_FLOWS = ("a2", "a3", "a4", "b2", "c2", "d3", "d4", "g2", "h1", "h2")

# The Table 3 sample rows, exactly as the paper lists them.
TABLE3_SAMPLES: Tuple[Tuple[str, str, int], ...] = (
    ("Peak", "i1", 4),
    ("Peak", "e1", 2),
    ("Average", "g1", 3),
    ("Average", "d1", 1),
    ("High", "i2", 4),
    ("High", "e2", 2),
    ("Low", "h1", 3),
    ("Low", "a2", 1),
)


def in_tx_units(seconds: float) -> float:
    """Convert seconds to the paper's unit (packet transmission times)."""
    return seconds / TX_TIME_SECONDS
