"""Named scenario registry: specs findable by name, runnable from the CLI.

A registered scenario is a callable returning a :class:`ScenarioSpec`
(keyword arguments such as ``duration`` / ``seed`` are forwarded when the
caller supplies them, so one registration serves both full-length and
smoke-test runs)::

    from repro.scenario import registry

    @registry.register("my_sweep")
    def my_sweep(duration=600.0, seed=1):
        return ScenarioBuilder("my_sweep")...build()

    spec = registry.build("my_sweep", duration=30.0)

``python -m repro.experiments --spec <name>`` resolves names through this
registry (and falls back to reading ``<name>`` as a JSON spec file), so
every registered scenario — and every serialized spec — is one command
away.  The experiment modules register the paper's workloads on import.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional

from repro.scenario.spec import ScenarioSpec

SpecBuilder = Callable[..., ScenarioSpec]

_REGISTRY: Dict[str, SpecBuilder] = {}


def register(
    name: str, builder: Optional[SpecBuilder] = None
) -> Callable[[SpecBuilder], SpecBuilder]:
    """Register a spec builder under ``name`` (usable as a decorator)."""

    def _register(fn: SpecBuilder) -> SpecBuilder:
        if name in _REGISTRY and _REGISTRY[name] is not fn:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    return _register(builder) if builder is not None else _register


def _load_builtins() -> None:
    """Import the modules whose registrations populate the registry.

    Lazy (and inside a function) because experiments import the scenario
    package; importing them at module load would be circular.
    """
    import repro.experiments  # noqa: F401  (side effect: registrations)
    import repro.scenario.generators  # noqa: F401  (gen: scenarios)
    import repro.scenario.datacenter  # noqa: F401  (gen: fabrics)


def names() -> tuple:
    """All registered scenario names, sorted."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def get(name: str) -> SpecBuilder:
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no scenario named {name!r}; registered: {', '.join(names())}"
        ) from None


def build(name: str, **kwargs) -> ScenarioSpec:
    """Build a registered scenario, forwarding only the kwargs its
    builder accepts (so generic callers can always offer duration/seed)."""
    builder = get(name)
    accepted = inspect.signature(builder).parameters
    if not any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in accepted.values()
    ):
        kwargs = {k: v for k, v in kwargs.items() if k in accepted}
    return builder(**kwargs)
