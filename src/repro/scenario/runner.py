"""Build and run scenarios; return structured, serializable results.

:class:`ScenarioRunner` turns a :class:`ScenarioSpec` into live simulations
— one per discipline — and collects a :class:`ScenarioResult`.  Two
properties are guaranteed by construction:

* **Paired arrivals.**  Every source draws from a random stream keyed only
  by its flow name (``source:<name>``), so all disciplines of one spec see
  the identical packet arrival process — the paper's A/B methodology.
* **Determinism.**  Components are constructed in spec order, admission
  requests are processed in ``establish_order``, and neither signaling nor
  measurement schedules events, so results are bit-identical across
  repeated runs and across serial vs multiprocess execution.

:meth:`ScenarioRunner.build` exposes the live :class:`ScenarioContext` for
scenarios that need mid-run orchestration (the dynamics experiment admits
and tears down flows at phase boundaries) or custom receivers (playback
applications instead of delay sinks).
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.measurement import MeasurementConfig, SwitchMeasurement
from repro.core.service import (
    FlowSpec as CoreFlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
)
from repro.core.signaling import FlowGrant, SignalingAgent
from repro.net.packet import Packet, ServiceClass
from repro.net.routing import RoutingError
from repro.scenario.disciplines import build_scheduler, resolve_port_discipline
from repro.scenario.spec import (
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    PredictedRequest,
    ScenarioSpec,
)
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource, OnOffParams
from repro.traffic.sink import DelayRecordingSink
from repro.traffic.token_bucket import TokenBucketFilter
from repro.transport.tcp import TcpConfig, TcpConnection

SOURCE_STREAM_PREFIX = "source:"

#: Named random stream feeding the sampled outage process.  Keyed by a
#: fixed name (not per-discipline state), so paired discipline runs see
#: the identical outage schedule — and adding it perturbs no source
#: stream.
OUTAGE_STREAM_NAME = "outage:process"


# ----------------------------------------------------------------------
# Structured results
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FlowStats:
    """Queueing-delay statistics of one recorded flow (seconds).

    ``percentiles`` holds the spec's requested points.  ``generated`` /
    ``emitted`` / ``filtered`` describe the source side (the arrival
    process — identical across disciplines of one spec); ``received`` /
    ``recorded`` the sink side (``recorded`` excludes warm-up samples).
    ``jitter_seconds`` is the path-level delay spread (max minus min
    recorded queueing delay) — the quantity FIFO+ exists to shrink.
    """

    name: str
    generated: int
    emitted: int
    filtered: int
    received: int
    recorded: int
    mean_seconds: float
    max_seconds: float
    jitter_seconds: float
    percentiles: Tuple[Tuple[float, float], ...]  # (pct, delay seconds)

    # -- unit conversion (the paper reports packet transmission times) --
    def mean_in(self, unit_seconds: float) -> float:
        return self.mean_seconds / unit_seconds

    def max_in(self, unit_seconds: float) -> float:
        return self.max_seconds / unit_seconds

    def percentile_in(self, pct: float, unit_seconds: float = 1.0) -> float:
        for point, value in self.percentiles:
            if point == pct:
                return value / unit_seconds
        raise KeyError(f"percentile {pct} was not collected")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "generated": self.generated,
            "emitted": self.emitted,
            "filtered": self.filtered,
            "received": self.received,
            "recorded": self.recorded,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
            "jitter_seconds": self.jitter_seconds,
            "percentiles": {str(pct): value for pct, value in self.percentiles},
        }


@dataclasses.dataclass(frozen=True)
class TcpStats:
    name: str
    segments_sent: int
    acks_sent: int
    goodput_bps: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class DisciplineRunResult:
    """Everything measured in one discipline's simulation.

    ``link_queueing`` is the mean per-hop wait at each link's output port
    (seconds) — the per-link view of where delay accumulates on multi-hop
    paths.  ``port_disciplines`` records the scheduler each port actually
    got after per-port overrides resolved.  ``invariants`` holds the
    :mod:`repro.validate` check results for validated runs
    (``spec.validate``) and is ``None`` otherwise.  ``control`` likewise
    carries a :class:`repro.control.ControlPlaneStats` summary —
    outages processed, SPF recomputes, per-flow reroutes/re-admissions,
    and the failure-drop ledgers — only when the spec declared outages.
    """

    discipline: str
    flows: Tuple[FlowStats, ...]
    link_utilizations: Tuple[Tuple[str, float], ...]
    link_queueing: Tuple[Tuple[str, float], ...]
    link_drops: Tuple[Tuple[str, int], ...]
    port_disciplines: Tuple[Tuple[str, str], ...]
    realtime_fraction: Tuple[Tuple[str, float], ...]  # link accounting only
    datagram_dropped: int
    tcp_stats: Tuple[TcpStats, ...]
    events_processed: int
    wall_seconds: float
    worker_pid: int
    invariants: Optional[Tuple[Any, ...]] = None  # InvariantCheck tuple
    control: Optional[Any] = None  # ControlPlaneStats for outage runs

    @property
    def total_drops(self) -> int:
        return sum(count for _, count in self.link_drops)

    @property
    def datagram_sent(self) -> int:
        """Datagram packets injected (TCP segments + ACKs)."""
        return sum(t.segments_sent + t.acks_sent for t in self.tcp_stats)

    @property
    def events_per_second(self) -> float:
        return self.events_processed / self.wall_seconds if self.wall_seconds else 0.0

    def flow(self, name: str) -> FlowStats:
        for stats in self.flows:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def utilization(self, link_name: str) -> float:
        for name, value in self.link_utilizations:
            if name == link_name:
                return value
        raise KeyError(link_name)

    def queueing(self, link_name: str) -> float:
        """Mean per-hop queueing delay at one link (seconds)."""
        for name, value in self.link_queueing:
            if name == link_name:
                return value
        raise KeyError(link_name)

    def port_discipline(self, link_name: str) -> str:
        """Name of the discipline that scheduled one port."""
        for name, value in self.port_disciplines:
            if name == link_name:
                return value
        raise KeyError(link_name)

    def tcp(self, name: str) -> TcpStats:
        for stats in self.tcp_stats:
            if stats.name == name:
                return stats
        raise KeyError(name)

    @property
    def invariants_clean(self) -> bool:
        """All invariant checks passed.  Raises if the run was not
        validated (``spec.validate`` off)."""
        if self.invariants is None:
            raise ValueError(
                f"run {self.discipline!r} was not validated; set "
                "ScenarioSpec(validate=True)"
            )
        return all(check.ok for check in self.invariants)

    def invariant(self, name: str):
        """One named :class:`~repro.validate.InvariantCheck` of this run."""
        for check in self.invariants or ():
            if check.name == name:
                return check
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "discipline": self.discipline,
            "flows": {stats.name: stats.to_dict() for stats in self.flows},
            "link_utilizations": dict(self.link_utilizations),
            "link_queueing": dict(self.link_queueing),
            "link_drops": dict(self.link_drops),
            "port_disciplines": dict(self.port_disciplines),
            "realtime_fraction": dict(self.realtime_fraction),
            "datagram_dropped": self.datagram_dropped,
            "datagram_sent": self.datagram_sent,
            "tcp": {stats.name: stats.to_dict() for stats in self.tcp_stats},
            "events_processed": self.events_processed,
            "runtime": {
                "wall_seconds": self.wall_seconds,
                "events_per_second": self.events_per_second,
                "worker_pid": self.worker_pid,
            },
        }
        if self.invariants is not None:
            # Only validated runs carry the key, so unvalidated payloads
            # (and the goldens pinning them) are byte-identical to before.
            data["invariants"] = [check.to_dict() for check in self.invariants]
        if self.control is not None:
            # Same only-when-present rule: outage-free payloads carry no
            # control-plane key.
            data["control"] = self.control.to_dict()
        return data

    def comparable_dict(self) -> Dict[str, Any]:
        """The deterministic payload (runtime/PID stripped) — equal across
        serial and parallel execution of the same spec."""
        data = self.to_dict()
        del data["runtime"]
        return data


@dataclasses.dataclass(frozen=True)
class ScenarioResult:
    """All disciplines of one scenario, plus run metadata."""

    scenario: str
    seed: int
    duration: float
    warmup: float
    runs: Tuple[DisciplineRunResult, ...]

    def run(self, discipline: str) -> DisciplineRunResult:
        for run in self.runs:
            if run.discipline == discipline:
                return run
        raise KeyError(discipline)

    @property
    def disciplines(self) -> Tuple[str, ...]:
        return tuple(run.discipline for run in self.runs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "runs": [run.to_dict() for run in self.runs],
        }

    def comparable_dict(self) -> Dict[str, Any]:
        data = self.to_dict()
        data["runs"] = [run.comparable_dict() for run in self.runs]
        return data


# ----------------------------------------------------------------------
# Live context
# ----------------------------------------------------------------------

# A sink factory receives (context, flow_spec) after the flow's source has
# been created and returns a receiver object (or None for a no-op handler).
SinkFactory = Callable[["ScenarioContext", FlowSpec], Any]


class ScenarioContext:
    """One discipline's live simulation, built from a spec.

    Exposes every constructed component (``sim``, ``net``, ``sources``,
    ``sinks``, ``signaling``, ``grants``) so orchestrated scenarios can
    admit flows mid-run (:meth:`add_flow`), install custom receivers, or
    inspect schedulers directly.
    """

    def __init__(self, spec: ScenarioSpec, discipline: DisciplineSpec):
        self.spec = spec
        self.discipline = discipline
        self.sim = Simulator()
        self.streams = RandomStreams(seed=spec.seed)
        self.port_disciplines: Dict[str, str] = {}

        def factory(port_name, link):
            # Record what this port will run; build_scheduler performs the
            # same resolution itself (single authoritative resolver).
            self.port_disciplines[port_name] = resolve_port_discipline(
                discipline, port_name
            ).name
            return build_scheduler(discipline, self.sim, port_name, link)

        self.net = spec.topology.build(self.sim, factory)
        # Surface unroutable flows now, with the flow named, instead of a
        # bare RoutingError in the middle of the event loop.
        for flow in spec.flows:
            self._check_route(flow.name, flow.source_host, flow.dest_host)
        for tcp in spec.tcps:
            self._check_route(tcp.name, tcp.source_host, tcp.dest_host)
            self._check_route(tcp.name, tcp.dest_host, tcp.source_host)

        # The invariant audit taps the port listener seam; attached before
        # any traffic component exists so it observes every packet.  It
        # neither schedules events nor consumes random draws — audited
        # runs are bit-identical to unaudited ones.
        self.audit = None
        if spec.validate:
            from repro.validate.audit import SimulationAudit

            self.audit = SimulationAudit(self.sim, self.net)

        self.admission: Optional[AdmissionController] = None
        self.signaling: Optional[SignalingAgent] = None
        if spec.admission is not None:
            self.admission = AdmissionController(
                AdmissionConfig(
                    realtime_quota=spec.admission.realtime_quota,
                    class_bounds_seconds=spec.admission.class_bounds_seconds,
                )
            )
            measurement_config = MeasurementConfig(
                utilization_safety=spec.admission.utilization_safety,
                delay_safety=spec.admission.delay_safety,
            )
            for link_name, port in self.net.ports.items():
                self.admission.attach_measurement(
                    link_name, SwitchMeasurement(port, measurement_config)
                )
            self.signaling = SignalingAgent(self.net, self.admission)

        self.grants: Dict[str, FlowGrant] = {}
        self.sources: Dict[str, OnOffMarkovSource] = {}
        self.sinks: Dict[str, DelayRecordingSink] = {}
        self.receivers: Dict[str, Any] = {}
        self.tcps: Dict[str, TcpConnection] = {}

        # The control plane exists only when the spec declares outages:
        # otherwise no controller is constructed, no events are scheduled,
        # and no random draws are consumed, so outage-free runs stay
        # bit-identical to pre-control-plane ones.
        self.controller = None
        self.outage_process = None
        if spec.outages is not None:
            from repro.control import LinkStateController, OutageProcess

            self.controller = LinkStateController(
                self.net,
                signaling=self.signaling,
                on_rerouted=self._on_flow_rerouted,
                on_torn_down=self._on_flow_torn_down,
            )
            outage_rng = (
                self.streams.stream(OUTAGE_STREAM_NAME)
                if spec.outages.rate_per_second > 0
                else None
            )
            self.outage_process = OutageProcess(
                self.sim, self.controller, spec.outages, outage_rng
            )

        # Guaranteed reservations are installed before any traffic exists,
        # then predicted classes are assigned — Table 3's establishment
        # discipline.  Neither step schedules events or consumes random
        # draws, so batching establishments ahead of source creation is
        # observationally identical to interleaving them.
        flows_by_name = {flow.name: flow for flow in spec.flows}
        order = list(spec.establish_order or ())
        listed = set(order)
        # A partial establish_order only *prioritizes*: every remaining
        # request-bearing flow still visits admission, in spec order.
        order += [
            f.name
            for f in spec.flows
            if f.request is not None and f.name not in listed
        ]
        for name in order:
            self.establish(flows_by_name[name])
        for flow in spec.flows:
            self.add_flow(flow, establish=False)
        for tcp in spec.tcps:
            self.tcps[tcp.name] = TcpConnection(
                self.sim,
                self.net.hosts[tcp.source_host],
                self.net.hosts[tcp.dest_host],
                tcp.name,
                TcpConfig(max_cwnd=tcp.max_cwnd),
            )

        self._realtime_bits: Dict[str, int] = {}
        self._total_bits: Dict[str, int] = {}
        self._datagram_dropped = 0
        if spec.link_accounting:
            for link_name in self.net.ports:
                self._attach_accounting(link_name)

        self._wall_seconds: Optional[float] = None

    # ------------------------------------------------------------------
    def _on_flow_rerouted(self, name: str, grant: FlowGrant) -> None:
        """Controller callback: a flow was re-admitted on a new path."""
        self.grants[name] = grant

    def _on_flow_torn_down(self, name: str) -> None:
        """Controller callback: re-establishment was refused — stop the
        source so the teardown is an *accounted* one (everything already
        sent stays ledgered; nothing new enters).  The sink stays
        registered so in-flight stragglers are still counted."""
        source = self.sources.get(name)
        if source is not None:
            source.stop()
        self.grants.pop(name, None)

    # ------------------------------------------------------------------
    def _check_route(self, name: str, src: str, dst: str) -> None:
        try:
            self.net.path(src, dst)
        except RoutingError as exc:
            raise RoutingError(f"flow {name!r}: {exc}") from None

    # ------------------------------------------------------------------
    def establish(self, flow: FlowSpec) -> Optional[FlowGrant]:
        """Run the flow's service request through admission/signaling.

        Without an admission-controlled scenario, a guaranteed request is
        honoured by installing its clock rate directly at every hop.
        """
        if flow.request is None:
            return None
        if self.signaling is not None:
            grant = self.signaling.establish(self._core_spec(flow))
            self.grants[flow.name] = grant
            return grant
        if isinstance(flow.request, GuaranteedRequest):
            # Same installer the signaling path uses, so rate-capable
            # schedulers (unified, WFQ, virtual clock) are recognized
            # consistently and anything else is rejected.
            for link in self.net.links_on_path(flow.source_host, flow.dest_host):
                SignalingAgent._install_clock_rate(
                    self.net.port_for_link(link.name),
                    flow.name,
                    flow.request.clock_rate_bps,
                )
        return None

    @staticmethod
    def _core_spec(flow: FlowSpec) -> CoreFlowSpec:
        request = flow.request
        if isinstance(request, GuaranteedRequest):
            service = GuaranteedServiceSpec(clock_rate_bps=request.clock_rate_bps)
        elif isinstance(request, PredictedRequest):
            service = PredictedServiceSpec(
                token_rate_bps=request.token_rate_bps,
                bucket_depth_bits=request.bucket_depth_bits,
                target_delay_seconds=request.target_delay_seconds,
                target_loss_rate=request.target_loss_rate,
            )
        else:  # pragma: no cover - guarded by FlowSpec typing
            raise TypeError(f"unknown request type {type(request)!r}")
        return CoreFlowSpec(
            flow_id=flow.name,
            source=flow.source_host,
            destination=flow.dest_host,
            spec=service,
        )

    def _resolve_service(self, flow: FlowSpec) -> Tuple[ServiceClass, int]:
        """Service class and predicted priority the source should stamp."""
        grant = self.grants.get(flow.name)
        if grant is not None:
            return grant.service_class, grant.priority_class or 0
        if isinstance(flow.request, GuaranteedRequest):
            return ServiceClass.GUARANTEED, 0
        if isinstance(flow.request, PredictedRequest):
            return ServiceClass.PREDICTED, flow.priority_class
        return flow.service_class, flow.priority_class

    def add_flow(
        self,
        flow: FlowSpec,
        sink_factory: Optional[SinkFactory] = None,
        establish: bool = True,
    ) -> OnOffMarkovSource:
        """Create a flow's source (and receiver) — at build time or mid-run.

        Mid-run admission (the dynamics experiment's load waves) passes
        ``establish=True`` so the request visits admission control first.
        """
        if flow.name in self.sources:
            raise ValueError(f"flow {flow.name} already exists")
        self._check_route(flow.name, flow.source_host, flow.dest_host)
        if establish and flow.request is not None:
            self.establish(flow)
        service_class, priority_class = self._resolve_service(flow)
        bucket = None
        if flow.bucket_packets is not None:
            bucket = TokenBucketFilter(
                rate_bps=flow.average_rate_pps * flow.packet_size_bits,
                depth_bits=flow.bucket_packets * flow.packet_size_bits,
            )
        source = OnOffMarkovSource(
            self.sim,
            self.net.hosts[flow.source_host],
            flow.name,
            flow.dest_host,
            OnOffParams(
                average_rate_pps=flow.average_rate_pps,
                mean_burst_packets=flow.mean_burst_packets,
                peak_rate_pps=flow.peak_rate_pps,
            ),
            self.streams.stream(f"{SOURCE_STREAM_PREFIX}{flow.name}"),
            packet_size_bits=flow.packet_size_bits,
            service_class=service_class,
            priority_class=priority_class,
            source_filter=bucket,
        )
        self.sources[flow.name] = source
        if self.controller is not None:
            self.controller.track_flow(
                flow.name,
                flow.source_host,
                flow.dest_host,
                core_spec=(
                    self._core_spec(flow)
                    if flow.request is not None and self.signaling is not None
                    else None
                ),
            )
        if sink_factory is not None:
            receiver = sink_factory(self, flow)
            if receiver is None:
                self._register_noop(flow)
            else:
                self.receivers[flow.name] = receiver
        elif flow.record:
            self.sinks[flow.name] = DelayRecordingSink(
                self.sim,
                self.net.hosts[flow.dest_host],
                flow.name,
                warmup=self.spec.warmup,
            )
        else:
            self._register_noop(flow)
        return source

    def _register_noop(self, flow: FlowSpec) -> None:
        # Under an audit, even unrecorded (background) flows count their
        # deliveries so per-flow conservation closes network-wide.
        handler = (
            self.audit.delivery_counter(flow.name)
            if self.audit is not None
            else lambda packet: None
        )
        self.net.hosts[flow.dest_host].register_flow_handler(
            flow.name, handler
        )

    def remove_flow(self, name: str) -> None:
        """Stop a flow's source, release its commitments, and free its name.

        The flow's sink/receiver is detached too (late packets fall back
        to the host's default handler), so the name can be re-added by a
        later load wave.  Snapshot the sink first if its statistics are
        still needed.
        """
        source = self.sources.pop(name, None)
        if source is not None:
            source.stop()
            self.net.hosts[source.destination].unregister_flow_handler(name)
        self.sinks.pop(name, None)
        self.receivers.pop(name, None)
        if self.controller is not None:
            self.controller.untrack_flow(name)
        if self.signaling is not None and name in self.grants:
            self.signaling.teardown(name)
            del self.grants[name]

    # ------------------------------------------------------------------
    def _attach_accounting(self, link_name: str) -> None:
        self._realtime_bits[link_name] = 0
        self._total_bits[link_name] = 0

        def on_depart(packet: Packet, now: float, wait: float) -> None:
            self._total_bits[link_name] += packet.size_bits
            if packet.service_class.is_realtime:
                self._realtime_bits[link_name] += packet.size_bits

        def on_drop(packet: Packet, now: float) -> None:
            if packet.service_class is ServiceClass.DATAGRAM:
                self._datagram_dropped += 1

        self.net.ports[link_name].on_depart.append(on_depart)
        self.net.ports[link_name].on_drop.append(on_drop)

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> "ScenarioContext":
        """Advance the simulation (to the spec's duration by default)."""
        started = time.perf_counter()
        self.sim.run(until=self.spec.duration if until is None else until)
        elapsed = time.perf_counter() - started
        self._wall_seconds = (self._wall_seconds or 0.0) + elapsed
        return self

    def collect(self) -> DisciplineRunResult:
        """Snapshot this simulation into a serializable result."""
        flow_stats = []
        for flow in self.spec.flows:
            sink = self.sinks.get(flow.name)
            if sink is None:
                continue
            flow_stats.append(self._flow_stats(flow.name, sink))
        for name, sink in self.sinks.items():
            if name not in {s.name for s in flow_stats}:
                flow_stats.append(self._flow_stats(name, sink))
        invariants = None
        if self.audit is not None:
            from repro.validate.invariants import check_invariants

            invariants = check_invariants(self)
        return DisciplineRunResult(
            discipline=self.discipline.name,
            flows=tuple(flow_stats),
            link_utilizations=tuple(
                (name, link.utilization()) for name, link in self.net.links.items()
            ),
            link_queueing=tuple(
                (name, port.mean_queueing_delay)
                for name, port in self.net.ports.items()
            ),
            link_drops=tuple(
                (name, port.packets_dropped)
                for name, port in self.net.ports.items()
            ),
            port_disciplines=tuple(sorted(self.port_disciplines.items())),
            realtime_fraction=tuple(
                (
                    name,
                    (
                        self._realtime_bits[name] / self._total_bits[name]
                        if self._total_bits[name]
                        else 0.0
                    ),
                )
                for name in self._total_bits
            ),
            datagram_dropped=self._datagram_dropped,
            tcp_stats=tuple(
                TcpStats(
                    name=name,
                    segments_sent=tcp.segments_sent,
                    acks_sent=tcp.acks_sent,
                    # sim.now, not spec.duration: partial runs via
                    # run(until=...) must not dilute the denominator.
                    goodput_bps=tcp.goodput_bps(self.sim.now),
                )
                for name, tcp in self.tcps.items()
            ),
            events_processed=self.sim.events_processed,
            wall_seconds=self._wall_seconds or 0.0,
            worker_pid=os.getpid(),
            invariants=invariants,
            control=(
                self.controller.summary()
                if self.controller is not None
                else None
            ),
        )

    def _flow_stats(self, name: str, sink: DelayRecordingSink) -> FlowStats:
        source = self.sources.get(name)
        recorded = sink.recorded
        return FlowStats(
            name=name,
            generated=source.generated if source else 0,
            emitted=source.sent if source else 0,
            filtered=source.filtered if source else 0,
            received=sink.received,
            recorded=recorded,
            mean_seconds=sink.queueing.mean if recorded else 0.0,
            max_seconds=sink.queueing.max if recorded else 0.0,
            jitter_seconds=(
                sink.queueing.max - sink.queueing.min if recorded else 0.0
            ),
            percentiles=tuple(
                (pct, sink.queueing_pct.percentile(pct) if recorded else 0.0)
                for pct in self.spec.percentile_points
            ),
        )


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def _run_one_discipline(spec: ScenarioSpec) -> DisciplineRunResult:
    """Worker entry point: run a single-discipline spec to completion.

    Dispatches on the engine seam: ``spec.engine`` (or the
    ``REPRO_ENGINE`` override) routes to the packet simulator or the
    flow-level fluid model; both emit the same result shape.
    """
    from repro.fluid.engine import effective_engine, run_fluid_discipline

    if effective_engine(spec) == "fluid":
        return run_fluid_discipline(spec)
    context = ScenarioContext(spec, spec.disciplines[0])
    context.run()
    return context.collect()


class ScenarioRunner:
    """Runs every discipline of a spec and assembles the result."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec

    def build(
        self, discipline: Union[str, DisciplineSpec, None] = None
    ) -> ScenarioContext:
        """Build (without running) one discipline's live simulation."""
        return ScenarioContext(self.spec, self._resolve(discipline))

    def run_discipline(
        self, discipline: Union[str, DisciplineSpec, None] = None
    ) -> DisciplineRunResult:
        resolved = self._resolve(discipline)
        sub = self.spec.replace(disciplines=(resolved,))
        return _run_one_discipline(sub)

    def run(self, workers: Optional[int] = None) -> ScenarioResult:
        """Run all disciplines (paired arrivals), serially or in parallel.

        ``workers > 1`` distributes the per-discipline simulations over a
        process pool (via the :mod:`repro.scenario.executor` engine: each
        discipline is one flattened task); results are bit-identical to
        the serial path because every simulation is self-contained and
        deterministic.
        """
        # Imported here: the executor builds on this module.
        from repro.scenario.executor import SweepExecutor

        with SweepExecutor(workers=workers) as executor:
            outcome = executor.run_sweep(self.spec)
        return outcome.runs[0].result

    def _resolve(
        self, discipline: Union[str, DisciplineSpec, None]
    ) -> DisciplineSpec:
        if discipline is None:
            return self.spec.disciplines[0]
        if isinstance(discipline, DisciplineSpec):
            return discipline
        return self.spec.discipline(discipline)
