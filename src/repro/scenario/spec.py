"""Declarative scenario specifications.

A :class:`ScenarioSpec` fully describes one experiment: topology, flows
(placement + source process + service request), scheduling disciplines to
compare, optional TCP datagram load, and admission control.  Specs are
frozen dataclasses — hashable, picklable (so sweeps can fan out across
processes), and serializable via ``to_dict``/``from_dict``.

The paired-arrival guarantee of the paper's methodology is encoded here:
every source draws from a random stream keyed *only* by its flow name, so
the same spec + seed produces the identical packet arrival process under
every discipline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.net.network import Network
from repro.net.packet import ServiceClass
from repro.net.topology import (
    chain_topology,
    paper_figure1_topology,
    single_link_topology,
)
from repro.scenario import paper
from repro.sim.engine import Simulator

TOPOLOGY_KINDS = ("single_link", "chain", "figure1")


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """Which network to build, declaratively.

    Attributes:
        kind: one of ``single_link`` (the Table-1 bottleneck), ``chain``
            (N switches, one host each), ``figure1`` (the paper's
            5-switch chain).
        num_switches: chain length; required for ``chain`` only.
        duplex: install links in both directions (needed for TCP ACKs).
    """

    kind: str = "single_link"
    num_switches: Optional[int] = None
    rate_bps: float = paper.LINK_RATE_BPS
    buffer_packets: int = paper.BUFFER_PACKETS
    duplex: bool = False

    def __post_init__(self):
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{TOPOLOGY_KINDS}"
            )
        if self.kind == "chain" and (
            self.num_switches is None or self.num_switches < 2
        ):
            raise ValueError("chain topologies need num_switches >= 2")
        if self.kind == "single_link" and self.duplex:
            raise ValueError("single_link topologies are simplex")
        if self.rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if self.buffer_packets <= 0:
            raise ValueError("buffer size must be positive")

    @classmethod
    def single_link(cls, **kwargs) -> "TopologySpec":
        return cls(kind="single_link", **kwargs)

    @classmethod
    def chain(cls, num_switches: int, **kwargs) -> "TopologySpec":
        return cls(kind="chain", num_switches=num_switches, **kwargs)

    @classmethod
    def figure1(cls, **kwargs) -> "TopologySpec":
        return cls(kind="figure1", **kwargs)

    def build(self, sim: Simulator, scheduler_factory) -> Network:
        """Construct the live :class:`Network` this spec describes."""
        if self.kind == "single_link":
            return single_link_topology(
                sim,
                scheduler_factory,
                rate_bps=self.rate_bps,
                buffer_packets=self.buffer_packets,
            )
        if self.kind == "figure1":
            return paper_figure1_topology(
                sim,
                scheduler_factory,
                rate_bps=self.rate_bps,
                buffer_packets=self.buffer_packets,
                duplex=self.duplex,
            )
        return chain_topology(
            sim,
            scheduler_factory,
            num_switches=self.num_switches,
            rate_bps=self.rate_bps,
            buffer_packets=self.buffer_packets,
            duplex=self.duplex,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class GuaranteedRequest:
    """Request guaranteed service at a WFQ clock rate (Section 8)."""

    clock_rate_bps: float

    def __post_init__(self):
        if self.clock_rate_bps <= 0:
            raise ValueError("clock rate must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"service": "guaranteed", **dataclasses.asdict(self)}


@dataclasses.dataclass(frozen=True)
class PredictedRequest:
    """Request predicted service with a declared bucket and (D, L) target."""

    token_rate_bps: float
    bucket_depth_bits: float
    target_delay_seconds: float
    target_loss_rate: float = 0.01

    def __post_init__(self):
        if self.token_rate_bps <= 0 or self.bucket_depth_bits <= 0:
            raise ValueError("token bucket parameters must be positive")
        if self.target_delay_seconds <= 0:
            raise ValueError("target delay must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"service": "predicted", **dataclasses.asdict(self)}


ServiceRequest = Union[GuaranteedRequest, PredictedRequest]


def _request_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[ServiceRequest]:
    if data is None:
        return None
    payload = dict(data)
    service = payload.pop("service")
    if service == "guaranteed":
        return GuaranteedRequest(**payload)
    if service == "predicted":
        return PredictedRequest(**payload)
    raise ValueError(f"unknown service request kind {service!r}")


@dataclasses.dataclass(frozen=True)
class FlowSpec:
    """One traffic flow: placement, source process, and service terms.

    Defaults are the Appendix source (A = 85 pkt/s, B = 5, P = 2A, an
    (A, 50) token bucket, 1000-bit packets).  ``bucket_packets=None``
    removes the source-side filter.

    Attributes:
        request: optional service request.  With an admission-controlled
            scenario the flow is established through signaling before any
            traffic starts and its service class / predicted priority come
            from the grant; without admission a guaranteed request still
            installs its clock rate directly at every hop.
        record: attach a delay-recording sink (the default); ``False``
            delivers to a no-op handler (background load).
        hops: optional path-length metadata (Figure-1 placements).
    """

    name: str
    source_host: str
    dest_host: str
    average_rate_pps: float = paper.AVERAGE_RATE_PPS
    mean_burst_packets: float = paper.MEAN_BURST_PACKETS
    peak_rate_pps: Optional[float] = None  # defaults to 2A, as in the paper
    bucket_packets: Optional[float] = paper.BUCKET_PACKETS
    packet_size_bits: int = paper.PACKET_BITS
    service_class: ServiceClass = ServiceClass.DATAGRAM
    priority_class: int = 0
    request: Optional[ServiceRequest] = None
    record: bool = True
    hops: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("flow name must be non-empty")
        if self.average_rate_pps <= 0:
            raise ValueError("average rate must be positive")
        if self.packet_size_bits <= 0:
            raise ValueError("packet size must be positive")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["service_class"] = self.service_class.name
        data["request"] = self.request.to_dict() if self.request else None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        payload = dict(data)
        payload["service_class"] = ServiceClass[payload["service_class"]]
        payload["request"] = _request_from_dict(payload.get("request"))
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class DisciplineSpec:
    """One scheduling discipline, by registry kind plus parameters.

    ``params`` is a sorted tuple of (key, value) pairs so the spec stays
    hashable; :attr:`param_dict` exposes it as a mapping.  ``factory`` is
    an escape hatch for disciplines outside the registry — a callable
    ``(sim, port_name, link) -> Scheduler``; it must be a module-level
    function to survive pickling into sweep workers.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    factory: Optional[Callable] = None

    @classmethod
    def of(cls, name: str, kind: str, **params) -> "DisciplineSpec":
        return cls(name=name, kind=kind, params=tuple(sorted(params.items())))

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    # -- the disciplines the paper builds or compares ------------------
    @classmethod
    def fifo(cls, name: str = "FIFO") -> "DisciplineSpec":
        return cls.of(name, "fifo")

    @classmethod
    def fifoplus(
        cls,
        name: str = "FIFO+",
        ewma_gain: Optional[float] = None,
        stale_offset_threshold: Optional[float] = None,
    ) -> "DisciplineSpec":
        """FIFO+; ``stale_offset_threshold`` enables the Section 10
        in-network discard of hopelessly late packets."""
        params = {}
        if ewma_gain is not None:
            params["ewma_gain"] = ewma_gain
        if stale_offset_threshold is not None:
            params["stale_offset_threshold"] = stale_offset_threshold
        return cls.of(name, "fifoplus", **params)

    @classmethod
    def wfq(
        cls,
        name: str = "WFQ",
        equal_share_flows: Optional[int] = None,
        auto_register_rate_bps: Optional[float] = None,
    ) -> "DisciplineSpec":
        """WFQ; ``equal_share_flows=N`` gives unknown flows a clock rate of
        link_rate/N (the paper's "equal clock rates" configuration)."""
        return cls.of(
            name,
            "wfq",
            equal_share_flows=equal_share_flows,
            auto_register_rate_bps=auto_register_rate_bps,
        )

    @classmethod
    def unified(
        cls, name: str = "CSZ", num_predicted_classes: int = 2
    ) -> "DisciplineSpec":
        return cls.of(name, "unified", num_predicted_classes=num_predicted_classes)

    @classmethod
    def priority(cls, name: str = "Priority", **params) -> "DisciplineSpec":
        return cls.of(name, "priority", **params)

    @classmethod
    def virtual_clock(
        cls, name: str = "VirtualClock", equal_share_flows: Optional[int] = None
    ) -> "DisciplineSpec":
        return cls.of(name, "virtual_clock", equal_share_flows=equal_share_flows)

    @classmethod
    def round_robin(cls, name: str = "RR") -> "DisciplineSpec":
        return cls.of(name, "round_robin")

    @classmethod
    def drr(cls, name: str = "DRR", quantum_bits: int = 1000) -> "DisciplineSpec":
        return cls.of(name, "drr", quantum_bits=quantum_bits)

    @classmethod
    def edf(cls, name: str = "EDF", default_target: float = 0.1) -> "DisciplineSpec":
        return cls.of(name, "edf", default_target=default_target)

    @classmethod
    def jacobson_floyd(
        cls, name: str = "J-F", num_classes: int = 1
    ) -> "DisciplineSpec":
        return cls.of(name, "jacobson_floyd", num_classes=num_classes)

    @classmethod
    def stop_and_go(
        cls, name: str = "Stop-and-Go", frame_seconds: float = 0.05
    ) -> "DisciplineSpec":
        return cls.of(name, "stop_and_go", frame_seconds=frame_seconds)

    @classmethod
    def jitter_edd(
        cls, name: str = "Jitter-EDD", default_target: float = 0.08
    ) -> "DisciplineSpec":
        return cls.of(name, "jitter_edd", default_target=default_target)

    @classmethod
    def custom(cls, name: str, factory: Callable) -> "DisciplineSpec":
        return cls(name=name, kind="custom", factory=factory)

    def to_dict(self) -> Dict[str, Any]:
        if self.factory is not None:
            raise ValueError(
                f"discipline {self.name!r} uses a custom factory and cannot "
                "be serialized"
            )
        return {"name": self.name, "kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DisciplineSpec":
        return cls.of(data["name"], data["kind"], **dict(data.get("params", {})))


@dataclasses.dataclass(frozen=True)
class TcpSpec:
    """A TCP connection supplying datagram background load."""

    name: str
    source_host: str
    dest_host: str
    max_cwnd: float = 64.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TcpSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class AdmissionSpec:
    """Measurement-based admission control at every output port."""

    realtime_quota: float = 0.9
    class_bounds_seconds: Tuple[float, ...] = (0.15, 1.5)

    def __post_init__(self):
        if not 0 < self.realtime_quota <= 1:
            raise ValueError("realtime quota must be in (0, 1]")
        if not self.class_bounds_seconds:
            raise ValueError("at least one predicted class bound is required")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdmissionSpec":
        payload = dict(data)
        payload["class_bounds_seconds"] = tuple(payload["class_bounds_seconds"])
        return cls(**payload)


DEFAULT_PERCENTILES = (50.0, 90.0, 99.0, 99.9, 99.99)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative experiment: build → run → structured results.

    Attributes:
        disciplines: one simulation per discipline, each fed the identical
            arrival process (paired comparison, as in the paper's tables).
        establish_order: flow names in the order their service requests
            visit admission control; defaults to spec order.  A partial
            list only prioritizes — request-bearing flows not listed are
            established afterwards, in spec order.  Table 3 establishes
            guaranteed flows before predicted ones so later checks see
            the reservations.
        link_accounting: count per-link real-time vs total bits and
            datagram drops (the Table-3 bookkeeping); off by default to
            keep the hot path lean.
        percentile_points: queueing-delay percentiles computed per flow.
    """

    name: str
    topology: TopologySpec
    flows: Tuple[FlowSpec, ...]
    disciplines: Tuple[DisciplineSpec, ...]
    tcps: Tuple[TcpSpec, ...] = ()
    admission: Optional[AdmissionSpec] = None
    establish_order: Optional[Tuple[str, ...]] = None
    duration: float = paper.PAPER_DURATION_SECONDS
    warmup: float = paper.DEFAULT_WARMUP_SECONDS
    seed: int = 1
    percentile_points: Tuple[float, ...] = DEFAULT_PERCENTILES
    link_accounting: bool = False

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup cannot be negative")
        if not self.disciplines:
            raise ValueError("at least one discipline is required")
        flow_names = [flow.name for flow in self.flows]
        if len(set(flow_names)) != len(flow_names):
            raise ValueError("flow names must be unique")
        discipline_names = [d.name for d in self.disciplines]
        if len(set(discipline_names)) != len(discipline_names):
            raise ValueError("discipline names must be unique")
        if self.establish_order is not None:
            known = set(flow_names)
            unknown = [n for n in self.establish_order if n not in known]
            if unknown:
                raise ValueError(f"establish_order names unknown flows: {unknown}")
            if len(set(self.establish_order)) != len(self.establish_order):
                raise ValueError("establish_order must not repeat flow names")

    # ------------------------------------------------------------------
    def flow(self, name: str) -> FlowSpec:
        for flow in self.flows:
            if flow.name == name:
                return flow
        raise KeyError(name)

    def discipline(self, name: str) -> DisciplineSpec:
        for discipline in self.disciplines:
            if discipline.name == name:
                return discipline
        raise KeyError(name)

    def replace(self, **changes) -> "ScenarioSpec":
        """A modified copy (frozen specs compose by replacement)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "flows": [flow.to_dict() for flow in self.flows],
            "disciplines": [d.to_dict() for d in self.disciplines],
            "tcps": [tcp.to_dict() for tcp in self.tcps],
            "admission": self.admission.to_dict() if self.admission else None,
            "establish_order": (
                list(self.establish_order)
                if self.establish_order is not None
                else None
            ),
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "percentile_points": list(self.percentile_points),
            "link_accounting": self.link_accounting,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            topology=TopologySpec.from_dict(data["topology"]),
            flows=tuple(FlowSpec.from_dict(f) for f in data["flows"]),
            disciplines=tuple(
                DisciplineSpec.from_dict(d) for d in data["disciplines"]
            ),
            tcps=tuple(TcpSpec.from_dict(t) for t in data.get("tcps", ())),
            admission=(
                AdmissionSpec.from_dict(data["admission"])
                if data.get("admission")
                else None
            ),
            establish_order=(
                tuple(data["establish_order"])
                if data.get("establish_order") is not None
                else None
            ),
            duration=data.get("duration", paper.PAPER_DURATION_SECONDS),
            warmup=data.get("warmup", paper.DEFAULT_WARMUP_SECONDS),
            seed=data.get("seed", 1),
            percentile_points=tuple(
                data.get("percentile_points", DEFAULT_PERCENTILES)
            ),
            link_accounting=data.get("link_accounting", False),
        )
