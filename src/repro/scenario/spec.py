"""Declarative scenario specifications.

A :class:`ScenarioSpec` fully describes one experiment: topology, flows
(placement + source process + service request), scheduling disciplines to
compare, optional TCP datagram load, and admission control.  Specs are
frozen dataclasses — hashable, picklable (so sweeps can fan out across
processes), and serializable via ``to_dict``/``from_dict``.

The paired-arrival guarantee of the paper's methodology is encoded here:
every source draws from a random stream keyed *only* by its flow name, so
the same spec + seed produces the identical packet arrival process under
every discipline.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.net.network import Network
from repro.net.topology import (
    build_network,
    chain_graph,
    figure1_graph,
    parking_lot_graph,
    single_link_graph,
)
from repro.net.packet import ServiceClass
from repro.scenario import paper
from repro.sim.engine import Simulator

# Provenance tags the named constructors stamp; free-form graphs are
# "graph".  from_dict still accepts the legacy serialized forms of the
# named kinds (num_switches/rate_bps/duplex) and recompiles them.
TOPOLOGY_KINDS = (
    "graph",
    "single_link",
    "chain",
    "figure1",
    "parking_lot",
    "fat-tree",
    "leaf-spine",
)


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """One directed link of a topology graph, with its own parameters."""

    src: str
    dst: str
    rate_bps: float = paper.LINK_RATE_BPS
    buffer_packets: int = paper.BUFFER_PACKETS
    propagation_delay: float = 0.0

    def __post_init__(self):
        if self.src == self.dst:
            raise ValueError(f"link {self.src}->{self.dst} is a self-loop")
        if self.rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if self.buffer_packets <= 0:
            raise ValueError("buffer size must be positive")
        if self.propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LinkSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class HostAttachment:
    """One host and the switch it hangs off (infinitely fast access link)."""

    host: str
    switch: str

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HostAttachment":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class TopologySpec:
    """A network as a declarative graph: switches, links, host attachments.

    Any directed graph is expressible; the paper's named networks are
    constructors that compile to this form (``single_link()``, ``chain()``,
    ``figure1()``) along with the ``parking_lot()`` merge network.  Build
    order is nodes, then links, then hosts — the order the golden
    equivalence tests pin.

    Attributes:
        nodes: switch names, in construction order.
        links: directed links, each with its own rate / buffer /
            propagation delay.
        host_attachments: (host, switch) pairs.
        kind: provenance tag (``graph`` for free-form topologies).
    """

    nodes: Tuple[str, ...] = ()
    links: Tuple[LinkSpec, ...] = ()
    host_attachments: Tuple[HostAttachment, ...] = ()
    kind: str = "graph"

    def __post_init__(self):
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; expected one of "
                f"{TOPOLOGY_KINDS}"
            )
        if not self.nodes:
            raise ValueError("a topology needs at least one switch")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError("switch names must be unique")
        switches = set(self.nodes)
        seen_links = set()
        for link in self.links:
            if link.src not in switches or link.dst not in switches:
                raise ValueError(
                    f"link {link.name} references an unknown switch"
                )
            if link.name in seen_links:
                raise ValueError(f"duplicate link {link.name}")
            seen_links.add(link.name)
        seen_hosts = set()
        for attachment in self.host_attachments:
            if attachment.switch not in switches:
                raise ValueError(
                    f"host {attachment.host} attaches to unknown switch "
                    f"{attachment.switch}"
                )
            if attachment.host in seen_hosts or attachment.host in switches:
                raise ValueError(f"duplicate node name {attachment.host}")
            seen_hosts.add(attachment.host)

    # -- named constructors (compile to graph form) --------------------
    @classmethod
    def single_link(
        cls,
        rate_bps: float = paper.LINK_RATE_BPS,
        buffer_packets: int = paper.BUFFER_PACKETS,
    ) -> "TopologySpec":
        return cls._from_graph(
            single_link_graph(rate_bps, buffer_packets), kind="single_link"
        )

    @classmethod
    def chain(cls, num_switches: int, **kwargs) -> "TopologySpec":
        return cls._from_graph(
            chain_graph(num_switches, **kwargs), kind="chain"
        )

    @classmethod
    def figure1(cls, **kwargs) -> "TopologySpec":
        return cls._from_graph(figure1_graph(**kwargs), kind="figure1")

    @classmethod
    def parking_lot(cls, num_hops: int = 4, **kwargs) -> "TopologySpec":
        return cls._from_graph(
            parking_lot_graph(num_hops, **kwargs), kind="parking_lot"
        )

    @classmethod
    def graph(
        cls,
        nodes: Sequence[str],
        links: Sequence[Union[LinkSpec, Mapping[str, Any]]],
        host_attachments: Sequence[
            Union[HostAttachment, Tuple[str, str], Mapping[str, Any]]
        ],
    ) -> "TopologySpec":
        """A free-form topology; links/attachments may be given as dicts."""
        return cls(
            nodes=tuple(nodes),
            links=tuple(
                link if isinstance(link, LinkSpec) else LinkSpec(**dict(link))
                for link in links
            ),
            host_attachments=tuple(
                att
                if isinstance(att, HostAttachment)
                else (
                    HostAttachment(*att)
                    if isinstance(att, (tuple, list))
                    else HostAttachment(**dict(att))
                )
                for att in host_attachments
            ),
        )

    @classmethod
    def _from_graph(cls, graph, kind: str) -> "TopologySpec":
        nodes, links, hosts = graph
        return cls(
            nodes=tuple(nodes),
            links=tuple(
                LinkSpec(
                    src=src,
                    dst=dst,
                    rate_bps=rate,
                    buffer_packets=buffer,
                    propagation_delay=delay,
                )
                for src, dst, rate, delay, buffer in links
            ),
            host_attachments=tuple(
                HostAttachment(host=host, switch=switch)
                for host, switch in hosts
            ),
            kind=kind,
        )

    # -- queries -------------------------------------------------------
    @property
    def host_names(self) -> Tuple[str, ...]:
        return tuple(att.host for att in self.host_attachments)

    @property
    def link_names(self) -> Tuple[str, ...]:
        return tuple(link.name for link in self.links)

    @property
    def num_switches(self) -> int:
        return len(self.nodes)

    def _uniform(self, attribute: str):
        values = {getattr(link, attribute) for link in self.links}
        if len(values) != 1:
            raise ValueError(
                f"topology links have heterogeneous {attribute}: "
                f"{sorted(values)}"
            )
        return values.pop()

    @property
    def rate_bps(self) -> float:
        """The uniform link rate; raises on heterogeneous-rate graphs."""
        return self._uniform("rate_bps")

    @property
    def buffer_packets(self) -> int:
        """The uniform buffer size; raises on heterogeneous graphs."""
        return self._uniform("buffer_packets")

    # -- realization ---------------------------------------------------
    def build(self, sim: Simulator, scheduler_factory) -> Network:
        """Construct the live :class:`Network` this spec describes."""
        return build_network(
            sim,
            scheduler_factory,
            self.nodes,
            tuple(
                (
                    link.src,
                    link.dst,
                    link.rate_bps,
                    link.propagation_delay,
                    link.buffer_packets,
                )
                for link in self.links
            ),
            tuple((att.host, att.switch) for att in self.host_attachments),
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "nodes": list(self.nodes),
            "links": [link.to_dict() for link in self.links],
            "host_attachments": [
                att.to_dict() for att in self.host_attachments
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        if "nodes" in data:
            return cls(
                nodes=tuple(data["nodes"]),
                links=tuple(
                    LinkSpec.from_dict(link) for link in data.get("links", ())
                ),
                host_attachments=tuple(
                    HostAttachment.from_dict(att)
                    for att in data.get("host_attachments", ())
                ),
                kind=data.get("kind", "graph"),
            )
        # Legacy serialized form (pre-graph): kind + scalar parameters.
        payload = dict(data)
        kind = payload.pop("kind", "single_link")
        if kind == "single_link":
            payload.pop("num_switches", None)
            payload.pop("duplex", None)
            return cls.single_link(**payload)
        if kind == "chain":
            return cls.chain(payload.pop("num_switches"), **payload)
        if kind == "figure1":
            payload.pop("num_switches", None)
            return cls.figure1(**payload)
        raise ValueError(f"unknown topology kind {kind!r}")


@dataclasses.dataclass(frozen=True)
class GuaranteedRequest:
    """Request guaranteed service at a WFQ clock rate (Section 8)."""

    clock_rate_bps: float

    def __post_init__(self):
        if self.clock_rate_bps <= 0:
            raise ValueError("clock rate must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"service": "guaranteed", **dataclasses.asdict(self)}


@dataclasses.dataclass(frozen=True)
class PredictedRequest:
    """Request predicted service with a declared bucket and (D, L) target."""

    token_rate_bps: float
    bucket_depth_bits: float
    target_delay_seconds: float
    target_loss_rate: float = 0.01

    def __post_init__(self):
        if self.token_rate_bps <= 0 or self.bucket_depth_bits <= 0:
            raise ValueError("token bucket parameters must be positive")
        if self.target_delay_seconds <= 0:
            raise ValueError("target delay must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {"service": "predicted", **dataclasses.asdict(self)}


ServiceRequest = Union[GuaranteedRequest, PredictedRequest]


def _request_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[ServiceRequest]:
    if data is None:
        return None
    payload = dict(data)
    service = payload.pop("service")
    if service == "guaranteed":
        return GuaranteedRequest(**payload)
    if service == "predicted":
        return PredictedRequest(**payload)
    raise ValueError(f"unknown service request kind {service!r}")


@dataclasses.dataclass(frozen=True)
class FlowSpec:
    """One traffic flow: placement, source process, and service terms.

    Defaults are the Appendix source (A = 85 pkt/s, B = 5, P = 2A, an
    (A, 50) token bucket, 1000-bit packets).  ``bucket_packets=None``
    removes the source-side filter.

    Attributes:
        request: optional service request.  With an admission-controlled
            scenario the flow is established through signaling before any
            traffic starts and its service class / predicted priority come
            from the grant; without admission a guaranteed request still
            installs its clock rate directly at every hop.
        record: attach a delay-recording sink (the default); ``False``
            delivers to a no-op handler (background load).
        hops: optional path-length metadata (Figure-1 placements).
    """

    name: str
    source_host: str
    dest_host: str
    average_rate_pps: float = paper.AVERAGE_RATE_PPS
    mean_burst_packets: float = paper.MEAN_BURST_PACKETS
    peak_rate_pps: Optional[float] = None  # defaults to 2A, as in the paper
    bucket_packets: Optional[float] = paper.BUCKET_PACKETS
    packet_size_bits: int = paper.PACKET_BITS
    service_class: ServiceClass = ServiceClass.DATAGRAM
    priority_class: int = 0
    request: Optional[ServiceRequest] = None
    record: bool = True
    hops: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("flow name must be non-empty")
        if self.average_rate_pps <= 0:
            raise ValueError("average rate must be positive")
        if self.packet_size_bits <= 0:
            raise ValueError("packet size must be positive")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["service_class"] = self.service_class.name
        data["request"] = self.request.to_dict() if self.request else None
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        payload = dict(data)
        payload["service_class"] = ServiceClass[payload["service_class"]]
        payload["request"] = _request_from_dict(payload.get("request"))
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class DisciplineSpec:
    """One scheduling discipline, by registry kind plus parameters.

    ``params`` is a sorted tuple of (key, value) pairs so the spec stays
    hashable; :attr:`param_dict` exposes it as a mapping.  ``factory`` is
    an escape hatch for disciplines outside the registry — a callable
    ``(sim, port_name, link) -> Scheduler``; it must be a module-level
    function to survive pickling into sweep workers.

    ``ports`` maps port-name glob patterns (``fnmatch`` style, e.g.
    ``"S-2->S-3"`` or ``"*->S-3"``) to override disciplines, so one
    discipline entry can schedule different ports differently — FIFO edge
    ports feeding a WFQ bottleneck, say.  The first matching pattern wins;
    unmatched ports get this spec's own kind.  Build with
    :meth:`override`.
    """

    name: str
    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()
    factory: Optional[Callable] = None
    ports: Tuple[Tuple[str, "DisciplineSpec"], ...] = ()

    def __post_init__(self):
        for pattern, override in self.ports:
            if override.ports:
                raise ValueError(
                    f"port override {pattern!r} of {self.name!r} must not "
                    "carry its own port overrides"
                )

    @classmethod
    def of(cls, name: str, kind: str, **params) -> "DisciplineSpec":
        return cls(name=name, kind=kind, params=tuple(sorted(params.items())))

    def override(
        self, pattern: str, discipline: "DisciplineSpec"
    ) -> "DisciplineSpec":
        """A copy that schedules ports matching ``pattern`` with
        ``discipline`` instead (earlier overrides take precedence)."""
        return dataclasses.replace(
            self, ports=self.ports + ((pattern, discipline),)
        )

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    # -- the disciplines the paper builds or compares ------------------
    @classmethod
    def fifo(cls, name: str = "FIFO") -> "DisciplineSpec":
        return cls.of(name, "fifo")

    @classmethod
    def fifoplus(
        cls,
        name: str = "FIFO+",
        ewma_gain: Optional[float] = None,
        stale_offset_threshold: Optional[float] = None,
    ) -> "DisciplineSpec":
        """FIFO+; ``stale_offset_threshold`` enables the Section 10
        in-network discard of hopelessly late packets."""
        params = {}
        if ewma_gain is not None:
            params["ewma_gain"] = ewma_gain
        if stale_offset_threshold is not None:
            params["stale_offset_threshold"] = stale_offset_threshold
        return cls.of(name, "fifoplus", **params)

    @classmethod
    def wfq(
        cls,
        name: str = "WFQ",
        equal_share_flows: Optional[int] = None,
        auto_register_rate_bps: Optional[float] = None,
    ) -> "DisciplineSpec":
        """WFQ; ``equal_share_flows=N`` gives unknown flows a clock rate of
        link_rate/N (the paper's "equal clock rates" configuration)."""
        return cls.of(
            name,
            "wfq",
            equal_share_flows=equal_share_flows,
            auto_register_rate_bps=auto_register_rate_bps,
        )

    @classmethod
    def unified(
        cls, name: str = "CSZ", num_predicted_classes: int = 2
    ) -> "DisciplineSpec":
        return cls.of(name, "unified", num_predicted_classes=num_predicted_classes)

    @classmethod
    def priority(cls, name: str = "Priority", **params) -> "DisciplineSpec":
        return cls.of(name, "priority", **params)

    @classmethod
    def virtual_clock(
        cls, name: str = "VirtualClock", equal_share_flows: Optional[int] = None
    ) -> "DisciplineSpec":
        return cls.of(name, "virtual_clock", equal_share_flows=equal_share_flows)

    @classmethod
    def round_robin(cls, name: str = "RR") -> "DisciplineSpec":
        return cls.of(name, "round_robin")

    @classmethod
    def drr(cls, name: str = "DRR", quantum_bits: int = 1000) -> "DisciplineSpec":
        return cls.of(name, "drr", quantum_bits=quantum_bits)

    @classmethod
    def edf(cls, name: str = "EDF", default_target: float = 0.1) -> "DisciplineSpec":
        return cls.of(name, "edf", default_target=default_target)

    @classmethod
    def jacobson_floyd(
        cls, name: str = "J-F", num_classes: int = 1
    ) -> "DisciplineSpec":
        return cls.of(name, "jacobson_floyd", num_classes=num_classes)

    @classmethod
    def stop_and_go(
        cls, name: str = "Stop-and-Go", frame_seconds: float = 0.05
    ) -> "DisciplineSpec":
        return cls.of(name, "stop_and_go", frame_seconds=frame_seconds)

    @classmethod
    def jitter_edd(
        cls, name: str = "Jitter-EDD", default_target: float = 0.08
    ) -> "DisciplineSpec":
        return cls.of(name, "jitter_edd", default_target=default_target)

    @classmethod
    def custom(cls, name: str, factory: Callable) -> "DisciplineSpec":
        return cls(name=name, kind="custom", factory=factory)

    def to_dict(self) -> Dict[str, Any]:
        if self.factory is not None:
            raise ValueError(
                f"discipline {self.name!r} uses a custom factory and cannot "
                "be serialized"
            )
        data: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "params": dict(self.params),
        }
        if self.ports:
            data["ports"] = [
                [pattern, override.to_dict()]
                for pattern, override in self.ports
            ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DisciplineSpec":
        spec = cls.of(data["name"], data["kind"], **dict(data.get("params", {})))
        for pattern, override in data.get("ports", ()):
            spec = spec.override(pattern, cls.from_dict(override))
        return spec


@dataclasses.dataclass(frozen=True)
class TcpSpec:
    """A TCP connection supplying datagram background load."""

    name: str
    source_host: str
    dest_host: str
    max_cwnd: float = 64.0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TcpSpec":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class AdmissionSpec:
    """Measurement-based admission control at every output port.

    ``utilization_safety`` / ``delay_safety`` are the multiplicative
    conservatism factors applied to the measured nu-hat and d-hat_j
    (Section 9's "consistently conservative estimates"); 1.0 uses the raw
    sliding-window measurements.
    """

    realtime_quota: float = 0.9
    class_bounds_seconds: Tuple[float, ...] = (0.15, 1.5)
    utilization_safety: float = 1.0
    delay_safety: float = 1.0

    def __post_init__(self):
        if not 0 < self.realtime_quota <= 1:
            raise ValueError("realtime quota must be in (0, 1]")
        if not self.class_bounds_seconds:
            raise ValueError("at least one predicted class bound is required")
        if self.utilization_safety < 1.0 or self.delay_safety < 1.0:
            raise ValueError("safety factors must be >= 1 (conservative)")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdmissionSpec":
        payload = dict(data)
        payload["class_bounds_seconds"] = tuple(payload["class_bounds_seconds"])
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class OutageEvent:
    """One explicit link outage: down at ``at``, repaired ``duration``
    seconds later.  Deterministic experiments (the failover flagship) pin
    their failures with these instead of sampling."""

    link: str
    at: float
    duration: float

    def __post_init__(self):
        if self.at < 0:
            raise ValueError("outage time cannot be negative")
        if self.duration <= 0:
            raise ValueError("outage duration must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OutageEvent":
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class OutageSpec:
    """Link failures for a scenario — the control plane's input.

    Presence of an ``OutageSpec`` on a :class:`ScenarioSpec` activates
    the :mod:`repro.control` plane: a link-state controller with Dijkstra
    SPF rerouting and signaling-based flow re-establishment, driven by
    the events declared here.  Two composable sources:

    Attributes:
        events: explicit ``(link, at, duration)`` outages.
        rate_per_second: Poisson arrival rate of sampled outages (0
            disables sampling).  Draws come from a dedicated named random
            stream, so the sampled schedule is identical across the
            paired discipline runs.
        mean_duration_seconds: mean of the exponential repair time.
        correlated_links: links taken down together per sampled outage
            (correlated multi-link failure).
        links: candidate link names for sampling (None = all links).
        start_after: earliest time a sampled outage may begin.
        max_outages: cap on sampled outage events (None = unbounded).
    """

    events: Tuple[OutageEvent, ...] = ()
    rate_per_second: float = 0.0
    mean_duration_seconds: float = 0.5
    correlated_links: int = 1
    links: Optional[Tuple[str, ...]] = None
    start_after: float = 0.0
    max_outages: Optional[int] = None

    def __post_init__(self):
        if self.rate_per_second < 0:
            raise ValueError("outage rate cannot be negative")
        if self.mean_duration_seconds <= 0:
            raise ValueError("mean outage duration must be positive")
        if self.correlated_links < 1:
            raise ValueError("correlated_links must be >= 1")
        if self.start_after < 0:
            raise ValueError("start_after cannot be negative")
        if self.max_outages is not None and self.max_outages < 1:
            raise ValueError("max_outages must be >= 1 when set")

    @property
    def is_active(self) -> bool:
        """Whether this spec can ever change a link's state: it carries
        explicit events or a positive sampling rate.  A degenerate
        (inactive) spec still activates the control plane — the run
        result carries a zeroed control summary — but behaves exactly
        like an outage-free spec on both engines."""
        return bool(self.events) or self.rate_per_second > 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [event.to_dict() for event in self.events],
            "rate_per_second": self.rate_per_second,
            "mean_duration_seconds": self.mean_duration_seconds,
            "correlated_links": self.correlated_links,
            "links": list(self.links) if self.links is not None else None,
            "start_after": self.start_after,
            "max_outages": self.max_outages,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OutageSpec":
        return cls(
            events=tuple(
                OutageEvent.from_dict(e) for e in data.get("events", ())
            ),
            rate_per_second=data.get("rate_per_second", 0.0),
            mean_duration_seconds=data.get("mean_duration_seconds", 0.5),
            correlated_links=data.get("correlated_links", 1),
            links=(
                tuple(data["links"]) if data.get("links") is not None else None
            ),
            start_after=data.get("start_after", 0.0),
            max_outages=data.get("max_outages"),
        )


DEFAULT_PERCENTILES = (50.0, 90.0, 99.0, 99.9, 99.99)

#: Simulation engines a spec may request.  ``packet`` is the
#: discrete-event engine (authoritative); ``fluid`` is the flow-level
#: epoch model in :mod:`repro.fluid` (fast, approximate, cross-validated
#: against the packet engine on small instances).
ENGINE_KINDS = ("packet", "fluid")


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative experiment: build → run → structured results.

    Attributes:
        disciplines: one simulation per discipline, each fed the identical
            arrival process (paired comparison, as in the paper's tables).
        establish_order: flow names in the order their service requests
            visit admission control; defaults to spec order.  A partial
            list only prioritizes — request-bearing flows not listed are
            established afterwards, in spec order.  Table 3 establishes
            guaranteed flows before predicted ones so later checks see
            the reservations.
        link_accounting: count per-link real-time vs total bits and
            datagram drops (the Table-3 bookkeeping); off by default to
            keep the hot path lean.
        percentile_points: queueing-delay percentiles computed per flow.
        validate: attach the :mod:`repro.validate` audit tap and run the
            simulation-invariant checks post-run (packet conservation,
            within-flow FIFO order, P-G delay bounds, queue bounds, clock
            monotonicity); results land on
            ``DisciplineRunResult.invariants``.  Off by default to keep
            the hot path lean; generated scenarios opt in.
        outages: link failures for the run (:class:`OutageSpec`).  When
            set, the runner activates the :mod:`repro.control` plane —
            link-state tracking, SPF rerouting, and flow
            re-establishment — and the result carries a per-flow
            reroute/re-admission summary.  None (the default) leaves the
            control plane entirely unwired, so static-route scenarios
            stay bit-identical.
        engine: which simulation engine runs this spec — ``"packet"``
            (the discrete-event engine, the default and the source of
            truth) or ``"fluid"`` (the flow-level epoch model in
            :mod:`repro.fluid`, for populations the packet engine cannot
            reach).  The ``REPRO_ENGINE`` environment variable overrides
            the spec at run time; see
            :func:`repro.fluid.effective_engine`.
        ecmp_seed: ECMP-style load balancing for multipath topologies
            (fat-tree, leaf-spine): when set, each flow's path is a
            seeded per-flow choice among the equal-cost shortest paths
            (:class:`repro.net.fabric.EcmpPaths`) instead of the static
            router's single deterministic pick.  Honoured by the fluid
            engine; the packet engine's per-destination router ignores
            it (documented approximation).  ``None`` (the default)
            routes every flow exactly as the packet engine does.
    """

    name: str
    topology: TopologySpec
    flows: Tuple[FlowSpec, ...]
    disciplines: Tuple[DisciplineSpec, ...]
    tcps: Tuple[TcpSpec, ...] = ()
    admission: Optional[AdmissionSpec] = None
    establish_order: Optional[Tuple[str, ...]] = None
    duration: float = paper.PAPER_DURATION_SECONDS
    warmup: float = paper.DEFAULT_WARMUP_SECONDS
    seed: int = 1
    percentile_points: Tuple[float, ...] = DEFAULT_PERCENTILES
    link_accounting: bool = False
    validate: bool = False
    outages: Optional[OutageSpec] = None
    engine: str = "packet"
    ecmp_seed: Optional[int] = None

    def __post_init__(self):
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINE_KINDS}"
            )
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup cannot be negative")
        if not self.disciplines:
            raise ValueError("at least one discipline is required")
        flow_names = [flow.name for flow in self.flows]
        if len(set(flow_names)) != len(flow_names):
            raise ValueError("flow names must be unique")
        discipline_names = [d.name for d in self.disciplines]
        if len(set(discipline_names)) != len(discipline_names):
            raise ValueError("discipline names must be unique")
        if self.establish_order is not None:
            known = set(flow_names)
            unknown = [n for n in self.establish_order if n not in known]
            if unknown:
                raise ValueError(f"establish_order names unknown flows: {unknown}")
            if len(set(self.establish_order)) != len(self.establish_order):
                raise ValueError("establish_order must not repeat flow names")
        hosts = set(self.topology.host_names)
        for flow in self.flows:
            for host in (flow.source_host, flow.dest_host):
                if host not in hosts:
                    raise ValueError(
                        f"flow {flow.name!r} references host {host!r} not in "
                        f"the topology (hosts: {sorted(hosts)})"
                    )
        for tcp in self.tcps:
            for host in (tcp.source_host, tcp.dest_host):
                if host not in hosts:
                    raise ValueError(
                        f"tcp {tcp.name!r} references host {host!r} not in "
                        f"the topology"
                    )
        if self.outages is not None:
            link_names = set(self.topology.link_names)
            for event in self.outages.events:
                if event.link not in link_names:
                    raise ValueError(
                        f"outage event names unknown link {event.link!r}"
                    )
            if self.outages.links is not None:
                unknown = [
                    name
                    for name in self.outages.links
                    if name not in link_names
                ]
                if unknown:
                    raise ValueError(
                        f"outage candidates name unknown links: {unknown}"
                    )
            if self.admission is None and any(
                flow.request is not None for flow in self.flows
            ):
                raise ValueError(
                    "outage scenarios with service requests need admission "
                    "control: re-establishment after a failover goes through "
                    "signaling, which directly installed reservations cannot"
                )

    # ------------------------------------------------------------------
    def flow(self, name: str) -> FlowSpec:
        for flow in self.flows:
            if flow.name == name:
                return flow
        raise KeyError(name)

    def discipline(self, name: str) -> DisciplineSpec:
        for discipline in self.disciplines:
            if discipline.name == name:
                return discipline
        raise KeyError(name)

    def replace(self, **changes) -> "ScenarioSpec":
        """A modified copy (frozen specs compose by replacement)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "name": self.name,
            "topology": self.topology.to_dict(),
            "flows": [flow.to_dict() for flow in self.flows],
            "disciplines": [d.to_dict() for d in self.disciplines],
            "tcps": [tcp.to_dict() for tcp in self.tcps],
            "admission": self.admission.to_dict() if self.admission else None,
            "establish_order": (
                list(self.establish_order)
                if self.establish_order is not None
                else None
            ),
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "percentile_points": list(self.percentile_points),
            "link_accounting": self.link_accounting,
            "validate": self.validate,
        }
        # Only-when-present so payloads of outage-free scenarios stay
        # byte-identical to pre-control-plane goldens.
        if self.outages is not None:
            data["outages"] = self.outages.to_dict()
        # Same rule: the engine field appears only when it deviates from
        # the packet default, keeping pre-fluid spec payloads byte-stable.
        if self.engine != "packet":
            data["engine"] = self.engine
        if self.ecmp_seed is not None:
            data["ecmp_seed"] = self.ecmp_seed
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        return cls(
            name=data["name"],
            topology=TopologySpec.from_dict(data["topology"]),
            flows=tuple(FlowSpec.from_dict(f) for f in data["flows"]),
            disciplines=tuple(
                DisciplineSpec.from_dict(d) for d in data["disciplines"]
            ),
            tcps=tuple(TcpSpec.from_dict(t) for t in data.get("tcps", ())),
            admission=(
                AdmissionSpec.from_dict(data["admission"])
                if data.get("admission")
                else None
            ),
            establish_order=(
                tuple(data["establish_order"])
                if data.get("establish_order") is not None
                else None
            ),
            duration=data.get("duration", paper.PAPER_DURATION_SECONDS),
            warmup=data.get("warmup", paper.DEFAULT_WARMUP_SECONDS),
            seed=data.get("seed", 1),
            percentile_points=tuple(
                data.get("percentile_points", DEFAULT_PERCENTILES)
            ),
            link_accounting=data.get("link_accounting", False),
            validate=data.get("validate", False),
            outages=(
                OutageSpec.from_dict(data["outages"])
                if data.get("outages") is not None
                else None
            ),
            engine=data.get("engine", "packet"),
            ecmp_seed=data.get("ecmp_seed"),
        )
