"""Parameter / seed sweeps with optional multiprocess fan-out.

``sweep()`` expands one base spec into a run list (overrides × seeds) and
executes it through the :mod:`repro.scenario.executor` engine: every
discipline simulation is an independently schedulable task, workers are
warm-started with the base spec once, results stream back as they finish,
and per-run wall-clock budgets / early-stopping predicates can bound the
work.  Results are bit-identical between the serial and parallel paths:
each spec builds its own simulator and seeded streams, so placement on a
worker cannot perturb anything.

Paired seeds fall out of the stream discipline: within one spec, every
discipline sees the same arrivals; across specs that share a seed, flows
with the same names see the same arrivals too (streams are keyed by flow
name only).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro.scenario.executor import (
    _UNSET,
    Override,
    SweepExecutor,
    SweepOutcome,
    SweepRun,
    expand_deltas,
    resolve_run_spec,
)
from repro.scenario.runner import ScenarioResult
from repro.scenario.spec import ScenarioSpec


def expand(
    spec: ScenarioSpec,
    over: Optional[Iterable[Override]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[ScenarioSpec]:
    """The concrete run list a sweep will execute, in order.

    ``over`` entries are either field-override mappings (applied with
    :meth:`ScenarioSpec.replace`) or complete replacement specs; ``seeds``
    multiplies each entry into one run per seed.  Built from the same
    delta expansion the executor ships to workers, so this *is* the spec
    list a sweep reconstructs.
    """
    return [
        resolve_run_spec(spec, override, seed)
        for override, seed in expand_deltas(spec, over=over, seeds=seeds)
    ]


def sweep(
    spec: ScenarioSpec,
    over: Optional[Iterable[Override]] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    *,
    budget_seconds: Optional[float] = None,
    early_stop: Optional[Callable[[List[SweepRun]], bool]] = None,
    on_result: Optional[Callable[[SweepRun], None]] = None,
    executor: Optional[SweepExecutor] = None,
) -> Union[List[ScenarioResult], SweepOutcome]:
    """Run ``spec`` across parameter overrides and seeds.

    Args:
        over: iterable of field-override mappings (or whole specs).
        seeds: seeds to pair every override with.
        workers: process count; ``None``/``0``/``1`` runs serially.
        budget_seconds: optional wall-clock budget for each discipline
            simulation of a run (so a D-discipline run may spend up to D
            times this); runs with an over-budget simulation are reported
            ``budget_expired``.  Not given here, a budget carried by
            ``executor`` still applies.
        early_stop: optional predicate over the completed
            :class:`SweepRun` list; returning True stops dispatching
            further runs (reported ``stopped``).  See
            :func:`repro.scenario.executor.stop_when_ci_below`.
        on_result: streaming callback fired as each run finishes.
        executor: reuse a caller-owned :class:`SweepExecutor` (and its
            warm worker pool) instead of a transient one; ``workers`` is
            then ignored.

    Returns:
        Without budgets or early stopping: one :class:`ScenarioResult`
        per expanded run, in expansion order (override-major, seed-minor)
        regardless of worker scheduling — every run completes, so the
        plain result list is the whole story.  With ``budget_seconds``
        (given here or carried by the executor) or ``early_stop``: the
        full :class:`SweepOutcome`, whose entries record completed /
        budget-expired / stopped runs explicitly.
    """
    owns_executor = executor is None
    active = executor if executor is not None else SweepExecutor(workers=workers)
    # A caller-owned executor may carry a default budget; only an explicit
    # argument here overrides it (None means "not given", which is the
    # executor's _UNSET, not a budget of None).
    effective_budget = (
        budget_seconds if budget_seconds is not None else active.budget_seconds
    )
    try:
        outcome = active.run_sweep(
            spec,
            over=over,
            seeds=seeds,
            budget_seconds=budget_seconds if budget_seconds is not None else _UNSET,
            early_stop=early_stop,
            on_result=on_result,
        )
    finally:
        if owns_executor:
            active.close()
    if effective_budget is None and early_stop is None:
        return outcome.results
    return outcome
