"""Parameter / seed sweeps with optional multiprocess fan-out.

``sweep()`` expands one base spec into a run list (overrides × seeds),
executes every run — serially or across a process pool — and returns the
:class:`ScenarioResult` list in expansion order.  Results are bit-identical
between the serial and parallel paths: each spec builds its own simulator
and seeded streams, so placement on a worker cannot perturb anything.

Paired seeds fall out of the stream discipline: within one spec, every
discipline sees the same arrivals; across specs that share a seed, flows
with the same names see the same arrivals too (streams are keyed by flow
name only).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

from repro.scenario.runner import (
    ScenarioResult,
    ScenarioRunner,
    map_maybe_parallel,
)
from repro.scenario.spec import ScenarioSpec

Override = Union[Mapping, ScenarioSpec]


def expand(
    spec: ScenarioSpec,
    over: Optional[Iterable[Override]] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[ScenarioSpec]:
    """The concrete run list a sweep will execute, in order.

    ``over`` entries are either field-override mappings (applied with
    :meth:`ScenarioSpec.replace`) or complete replacement specs; ``seeds``
    multiplies each entry into one run per seed.
    """
    overrides = list(over) if over is not None else [{}]
    seed_list = list(seeds) if seeds is not None else None
    if not overrides:
        raise ValueError("over must contain at least one entry")
    if seed_list is not None and not seed_list:
        raise ValueError("seeds must contain at least one seed")
    specs = []
    for override in overrides:
        base = override if isinstance(override, ScenarioSpec) else spec.replace(**override)
        # With no explicit seed list, every entry keeps its own seed (a
        # whole-spec override may deliberately carry a different one).
        for seed in seed_list if seed_list is not None else [base.seed]:
            specs.append(base.replace(seed=seed))
    return specs


def _run_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Worker entry point (module-level so it pickles)."""
    return ScenarioRunner(spec).run()


def sweep(
    spec: ScenarioSpec,
    over: Optional[Iterable[Override]] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run ``spec`` across parameter overrides and seeds.

    Args:
        over: iterable of field-override mappings (or whole specs).
        seeds: seeds to pair every override with.
        workers: process count; ``None``/``0``/``1`` runs serially.

    Returns:
        One :class:`ScenarioResult` per expanded run, in expansion order
        (override-major, seed-minor) regardless of worker scheduling.
    """
    specs = expand(spec, over=over, seeds=seeds)
    return map_maybe_parallel(_run_spec, specs, workers)
