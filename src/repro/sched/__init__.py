"""Packet scheduling algorithms.

One module per discipline discussed or compared in the paper:

* :mod:`repro.sched.fifo` — FIFO, the Section 5 sharing mechanism.
* :mod:`repro.sched.wfq` — packetized weighted fair queueing / PGPS
  (Section 4), the isolation mechanism with the Parekh-Gallager bound.
* :mod:`repro.sched.gps` — the fluid-flow GPS reference model used to
  validate WFQ and the bound.
* :mod:`repro.sched.fifoplus` — FIFO+ multi-hop sharing (Section 6).
* :mod:`repro.sched.priority` — strict priority classes (Section 7).
* :mod:`repro.sched.unified` — the unified CSZ scheduling algorithm
  (Section 7): WFQ isolation around priority classes running FIFO+.
* :mod:`repro.sched.virtual_clock`, :mod:`repro.sched.round_robin`,
  :mod:`repro.sched.edf` — related-work baselines (Section 11).
* :mod:`repro.sched.nonwork` — the non-work-conserving related work
  (Stop-and-Go, Hierarchical Round Robin, Jitter-EDD; Section 11).
"""

from repro.sched.base import GuaranteedServiceUnsupported, Scheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.gps import GpsFluidModel
from repro.sched.fifoplus import FifoPlusScheduler, ClassDelayTracker
from repro.sched.priority import PriorityScheduler
from repro.sched.unified import UnifiedScheduler, UnifiedConfig
from repro.sched.virtual_clock import VirtualClockScheduler
from repro.sched.round_robin import RoundRobinScheduler, DeficitRoundRobinScheduler
from repro.sched.edf import EdfScheduler
from repro.sched.nonwork import (
    HrrScheduler,
    JitterEddScheduler,
    StopAndGoScheduler,
)
from repro.sched.jacobson_floyd import JacobsonFloydScheduler

__all__ = [
    "Scheduler",
    "GuaranteedServiceUnsupported",
    "FifoScheduler",
    "WfqScheduler",
    "GpsFluidModel",
    "FifoPlusScheduler",
    "ClassDelayTracker",
    "PriorityScheduler",
    "UnifiedScheduler",
    "UnifiedConfig",
    "VirtualClockScheduler",
    "RoundRobinScheduler",
    "DeficitRoundRobinScheduler",
    "EdfScheduler",
    "StopAndGoScheduler",
    "HrrScheduler",
    "JitterEddScheduler",
    "JacobsonFloydScheduler",
]
