"""Scheduler interface.

Every discipline in :mod:`repro.sched` implements this small ABC.  The
output port (not the scheduler) enforces the buffer limit and drives the
link; schedulers only decide *order* (and, optionally, push-out victims).

The contract:

* ``enqueue(packet, now)`` accepts a packet into the queue.  It may return
  False to refuse it (e.g. an unknown guaranteed flow); the port counts that
  as a drop.
* ``dequeue(now)`` returns the next packet to transmit, or None if empty.
  Schedulers must be *work-conserving* unless their docstring says
  otherwise: if ``len(self) > 0`` then ``dequeue`` must return a packet.
* ``__len__`` is the number of queued packets.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.net.packet import Packet


class GuaranteedServiceUnsupported(RuntimeError):
    """The scheduler cannot host a guaranteed flow at a bit rate.

    Raised by :meth:`Scheduler.install_guaranteed` when the discipline
    either has no per-flow reservations at all (FIFO, FIFO+, priority) or
    reserves in units other than bits/s (slot-based disciplines like HRR),
    in which case the caller must convert explicitly instead of relying on
    an ambiguous ``register_flow`` second argument.
    """


class Scheduler(abc.ABC):
    """Abstract packet scheduler."""

    @abc.abstractmethod
    def enqueue(self, packet: Packet, now: float) -> bool:
        """Add a packet; returns False if refused."""

    @abc.abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet to send, or None when empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of packets currently queued."""

    def peek_is_empty(self) -> bool:
        return len(self) == 0

    #: Whether the owning port may *batch-drain* this scheduler: serve
    #: several consecutive packets inside one link-completion event, with
    #: departure timestamps computed arithmetically.  Safe only for
    #: disciplines whose dequeue order depends on queue contents alone —
    #: never on the clock value passed to ``dequeue`` (no eligibility
    #: gates, no time-dependent reordering between two consecutive
    #: departures with no intervening arrival).  FIFO, FIFO+ and static
    #: priority opt in; non-work-conserving disciplines (Stop-and-Go,
    #: HRR, Jitter-EDD) must stay per-packet.  Opting in requires
    #: implementing :meth:`peek_next`.
    supports_batch_drain: bool = False

    def peek_next(self) -> Optional[Packet]:
        """The exact packet the next ``dequeue`` would return, or None.

        Must not mutate scheduler state and must not depend on the clock
        (see :attr:`supports_batch_drain`).  Only consulted by the port's
        batch-drain loop, so the default — for disciplines that stay
        per-packet — is to decline by returning None.
        """
        return None

    #: Whether :meth:`install_guaranteed` actually reserves a bit rate.
    #: Rate-capable implementations set this to True alongside overriding
    #: the method; a scheduler may override the method purely to refuse
    #: with a more specific message (e.g. HRR pointing at its slots
    #: converter) and leave this False.
    supports_guaranteed: bool = False

    #: Whether packets of one flow are guaranteed to depart this scheduler
    #: in their arrival order.  True for every discipline that keys its
    #: order on arrival state alone (FIFO, per-flow queues, per-class
    #: FIFO, deadlines monotone in arrival time).  FIFO+-based disciplines
    #: set this False: the expected-arrival key subtracts the accumulated
    #: jitter offset, which can differ between two packets of the same
    #: flow, so within-flow order is preserved only statistically.  The
    #: :mod:`repro.validate` flow-FIFO invariant is asserted exactly where
    #: this is True and merely *observed* (reorder counting) elsewhere.
    preserves_flow_fifo: bool = True

    def install_guaranteed(self, flow_id: str, rate_bps: float) -> None:
        """Reserve a guaranteed clock rate of ``rate_bps`` bits/s for
        ``flow_id``.

        This is the *capability interface* the signaling layer uses to
        install Section 8 guaranteed commitments: rate-capable disciplines
        (WFQ, VirtualClock, the unified CSZ scheduler) override it; the
        default refuses, so disciplines that meter in other units (HRR
        slots, Stop-and-Go frames) can never silently misinterpret a bit
        rate.

        Raises:
            GuaranteedServiceUnsupported: if this discipline cannot host
                guaranteed flows at a bit rate.
            ValueError: if the rate is invalid or cannot be accommodated.
        """
        raise GuaranteedServiceUnsupported(
            f"{type(self).__name__} has no per-flow bit-rate reservations"
        )

    def drain(self, now: float) -> List[Packet]:
        """Remove and return every queued packet (link-failure flush).

        The control plane flushes a port's queue when its link dies; the
        packets are being *dropped*, not served, so eligibility holds do
        not apply.  Work-conserving schedulers drain through ``dequeue``
        (their contract guarantees progress while non-empty); non-work-
        conserving ones override this to bypass their holds.
        """
        out: List[Packet] = []
        while len(self):
            packet = self.dequeue(now)
            if packet is None:  # defensive: never spin on a stuck queue
                break
            out.append(packet)
        return out

    def select_push_out(self, incoming: Packet) -> Optional[Packet]:
        """When the buffer is full, nominate a queued packet to evict in
        favour of ``incoming``.

        The default (None) means drop the incoming packet (tail drop).
        Schedulers supporting the Section 10 drop-preference extension
        override this.
        """
        return None
