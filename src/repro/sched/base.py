"""Scheduler interface.

Every discipline in :mod:`repro.sched` implements this small ABC.  The
output port (not the scheduler) enforces the buffer limit and drives the
link; schedulers only decide *order* (and, optionally, push-out victims).

The contract:

* ``enqueue(packet, now)`` accepts a packet into the queue.  It may return
  False to refuse it (e.g. an unknown guaranteed flow); the port counts that
  as a drop.
* ``dequeue(now)`` returns the next packet to transmit, or None if empty.
  Schedulers must be *work-conserving* unless their docstring says
  otherwise: if ``len(self) > 0`` then ``dequeue`` must return a packet.
* ``__len__`` is the number of queued packets.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.net.packet import Packet


class Scheduler(abc.ABC):
    """Abstract packet scheduler."""

    @abc.abstractmethod
    def enqueue(self, packet: Packet, now: float) -> bool:
        """Add a packet; returns False if refused."""

    @abc.abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet to send, or None when empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of packets currently queued."""

    def peek_is_empty(self) -> bool:
        return len(self) == 0

    def select_push_out(self, incoming: Packet) -> Optional[Packet]:
        """When the buffer is full, nominate a queued packet to evict in
        favour of ``incoming``.

        The default (None) means drop the incoming packet (tail drop).
        Schedulers supporting the Section 10 drop-preference extension
        override this.
        """
        return None
