"""Earliest-deadline-first scheduling — the Delay-EDD-style baseline.

Section 5 builds its central argument on the Liu & Layland result that EDF
is optimal for deadline scheduling, observing that when every packet's
deadline is a constant offset from its arrival, EDF *is* FIFO.  This module
provides the general mechanism — per-flow delay targets assign each packet
the deadline ``arrival + target`` — so tests can verify the degeneracy
claim and benches can compare heterogeneous-deadline configurations
(Ferrari & Verma's Delay-EDD uses exactly this service rule).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sched.base import Scheduler


class EdfScheduler(Scheduler):
    """EDF over per-flow local delay targets.

    Args:
        delay_targets: per-flow target delay at this switch (seconds);
            a packet's deadline is arrival time + its flow's target.
        default_target: target used for flows not in the table.
    """

    def __init__(
        self,
        delay_targets: Optional[Dict[str, float]] = None,
        default_target: float = 0.1,
    ):
        if default_target < 0:
            raise ValueError("delay target cannot be negative")
        self.delay_targets = dict(delay_targets or {})
        for flow, target in self.delay_targets.items():
            if target < 0:
                raise ValueError(f"delay target of {flow} cannot be negative")
        self.default_target = default_target
        self._heap: List[Tuple[float, int, Packet]] = []
        self._seq = 0

    def set_target(self, flow_id: str, target: float) -> None:
        if target < 0:
            raise ValueError("delay target cannot be negative")
        self.delay_targets[flow_id] = target

    def deadline_of(self, packet: Packet, now: float) -> float:
        target = self.delay_targets.get(packet.flow_id, self.default_target)
        return now + target

    def enqueue(self, packet: Packet, now: float) -> bool:
        deadline = self.deadline_of(packet, now)
        heapq.heappush(self._heap, (deadline, self._seq, packet))
        self._seq += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        __, __, packet = heapq.heappop(self._heap)
        return packet

    def __len__(self) -> int:
        return len(self._heap)
