"""FIFO scheduling — the paper's *sharing* mechanism (Section 5).

The paper's key observation: for a homogeneous class of adaptive play-back
clients whose deadline is a constant offset from arrival, earliest-deadline-
first *is* FIFO.  FIFO multiplexes bursts — every flow shares every flow's
jitter — so the post facto delay bound (and hence the play-back point) is
lower than under WFQ's isolation, at identical utilization (Table 1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet
from repro.sched.base import Scheduler


class FifoScheduler(Scheduler):
    """First-in first-out queue."""

    # Dequeue order is fixed at enqueue and ignores the clock, so the
    # port may serve bursts arithmetically (see Scheduler.peek_next).
    supports_batch_drain = True

    def __init__(self):
        self._queue: Deque[Packet] = deque()

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._queue.append(packet)
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def peek_next(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def evict_tail(self) -> Optional[Packet]:
        """Remove and return the most recently queued packet.

        Used by enclosing schedulers (strict priority with push-out) that
        must evict from this queue: dropping the newest packet preserves
        FIFO order for everything already committed.
        """
        if not self._queue:
            return None
        return self._queue.pop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FifoScheduler qlen={len(self._queue)}>"
