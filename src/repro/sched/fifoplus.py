"""FIFO+ — multi-hop sharing by correlating per-hop queueing (Section 6).

Plain FIFO shares jitter within one hop, but over several hops each packet
rolls independent dice and the 99.9th-percentile delay grows quickly with
path length.  FIFO+ extends the sharing *across hops*:

1. Each switch measures the average queueing delay of each class at that
   switch.
2. When a packet departs, the switch adds (its delay - class average) to a
   **jitter offset** field in the packet header.
3. Downstream switches order the queue by *expected* arrival time — actual
   arrival minus accumulated offset — i.e. as if the packet had received
   average service at every earlier hop.

A packet that was unlucky upstream (positive offset) is thus scheduled
earlier downstream, and vice versa, so delays across hops anti-correlate and
total jitter grows much more slowly with hop count (Table 2).

Implementation notes:

* The queue is a heap keyed by ``(expected_arrival, seq)``; the sequence
  number keeps equal keys FIFO and the ordering total.
* The class-average estimator is an EWMA (gain configurable; an ablation
  bench sweeps it).  On a packet's *first* hop its offset is zero, so FIFO+
  degenerates to FIFO there — matching the paper's single-hop observation.
* The offset update happens at dequeue time, when the packet's delay at this
  hop is known.
* The offset also enables the Section 10 extension of discarding packets
  that are already hopelessly late: ``stale_offset_threshold`` drops packets
  whose accumulated offset exceeds the threshold at enqueue.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sched.base import Scheduler
from repro.stats.ewma import Ewma

DEFAULT_EWMA_GAIN = 0.01


class ClassDelayTracker:
    """Per-class average queueing delay at one switch (EWMA)."""

    def __init__(self, gain: float = DEFAULT_EWMA_GAIN):
        self.gain = gain
        self._per_class: Dict[int, Ewma] = {}

    def record(self, priority_class: int, delay: float) -> None:
        self._per_class.setdefault(priority_class, Ewma(self.gain)).add(delay)

    def average(self, priority_class: int) -> float:
        ewma = self._per_class.get(priority_class)
        return ewma.value if ewma is not None else 0.0

    def observe(self, priority_class: int, delay: float) -> float:
        """Return the pre-sample average, then fold ``delay`` in.

        Single-lookup fusion of :meth:`average` + :meth:`record` for the
        per-packet dequeue path.
        """
        ewma = self._per_class.get(priority_class)
        if ewma is None:
            ewma = Ewma(self.gain)
            self._per_class[priority_class] = ewma
        average = ewma.value
        ewma.add(delay)
        return average


class FifoPlusScheduler(Scheduler):
    """FIFO+ within a single class (or across everything it is handed).

    Args:
        delay_tracker: shared per-switch tracker; the unified scheduler
            passes one tracker shared by all its FIFO+ levels so that
            averages are per (switch, class).  Stand-alone use may omit it.
        ewma_gain: gain for a privately created tracker.
        stale_offset_threshold: Section 10 extension — drop packets whose
            accumulated jitter offset already exceeds this many seconds
            (None disables; experiments in the paper's core leave it off).
    """

    # The expected-arrival key subtracts a per-packet jitter offset, so two
    # packets of one flow can swap when the class average moved between
    # their upstream dequeues; within-flow order is only statistical.
    preserves_flow_fifo = False

    # The heap key is fixed at enqueue; ``now`` only feeds the offset
    # update at dequeue, and the batch loop passes the same departure
    # times the per-packet path would, so bursts may be served inline.
    supports_batch_drain = True

    def __init__(
        self,
        delay_tracker: Optional[ClassDelayTracker] = None,
        ewma_gain: float = DEFAULT_EWMA_GAIN,
        stale_offset_threshold: Optional[float] = None,
    ):
        self.tracker = delay_tracker or ClassDelayTracker(ewma_gain)
        self.stale_offset_threshold = stale_offset_threshold
        self._heap: List[Tuple[float, int, Packet]] = []
        self._seq = 0
        self.stale_discards = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        offset = packet.jitter_offset
        threshold = self.stale_offset_threshold
        if threshold is not None and offset > threshold:
            self.stale_discards += 1
            return False
        seq = self._seq
        self._seq = seq + 1
        # Key is packet.queueing_key(), inlined: expected arrival time.
        heapq.heappush(self._heap, (packet.enqueued_at - offset, seq, packet))
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        heap = self._heap
        if not heap:
            return None
        packet = heapq.heappop(heap)[2]
        delay = now - packet.enqueued_at
        packet.jitter_offset += delay - self.tracker.observe(
            packet.priority_class, delay
        )
        return packet

    def __len__(self) -> int:
        return len(self._heap)

    def peek_next(self) -> Optional[Packet]:
        return self._heap[0][2] if self._heap else None

    def evict_tail(self) -> Optional[Packet]:
        """Evict the packet with the *largest* expected-arrival key — the
        one that would have been served last — preserving the schedule for
        everything ahead of it."""
        if not self._heap:
            return None
        idx = max(range(len(self._heap)), key=lambda i: self._heap[i][:2])
        entry = self._heap.pop(idx)
        heapq.heapify(self._heap)
        return entry[2]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FifoPlusScheduler qlen={len(self._heap)}>"
