"""Fluid-flow Generalized Processor Sharing reference model (Section 4).

This is not a packet scheduler: it is the idealized fluid system the paper
uses to define WFQ and against which the Parekh-Gallager bound is stated.
Bits of the active flows drain continuously in proportion to their clock
rates:

    dm_a/dt = C * r_a / sum_{b active} r_b     while m_a > 0.

The model is used by the test-suite to (a) check that the packetized WFQ
implementation tracks the fluid system, and (b) verify the b/r delay bound
directly on adversarial token-bucket arrivals.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass
class FluidArrival:
    """One packet-sized slug of fluid arriving at a given time."""

    time: float
    flow_id: str
    size_bits: float
    label: Optional[str] = None  # caller's packet identity


@dataclasses.dataclass
class FluidDeparture:
    """Departure record: when the last bit of an arrival left the queue."""

    arrival: FluidArrival
    departure_time: float

    @property
    def delay(self) -> float:
        return self.departure_time - self.arrival.time


class GpsFluidModel:
    """Event-driven exact simulation of the GPS fluid system on one link.

    Args:
        capacity_bps: link speed C.
        rates_bps: clock rate r_a per flow.  The sum may be less than C
            (spare capacity speeds everyone up, as in GPS).
    """

    def __init__(self, capacity_bps: float, rates_bps: Dict[str, float]):
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        for flow, rate in rates_bps.items():
            if rate <= 0:
                raise ValueError(f"rate of {flow} must be positive")
        self.capacity = float(capacity_bps)
        self.rates = dict(rates_bps)

    def run(self, arrivals: List[FluidArrival]) -> List[FluidDeparture]:
        """Simulate the fluid system over the given arrivals.

        Returns a departure record per arrival, in arrival order.
        """
        for arrival in arrivals:
            if arrival.flow_id not in self.rates:
                raise KeyError(f"unknown flow {arrival.flow_id}")
            if arrival.size_bits <= 0:
                raise ValueError("arrival size must be positive")
        pending = sorted(arrivals, key=lambda a: a.time)
        # Per-flow state: backlog in bits, cumulative arrived/served bits,
        # and thresholds (cumulative-arrival levels) awaiting departure.
        backlog: Dict[str, float] = {f: 0.0 for f in self.rates}
        arrived: Dict[str, float] = {f: 0.0 for f in self.rates}
        served: Dict[str, float] = {f: 0.0 for f in self.rates}
        thresholds: Dict[str, List[Tuple[float, FluidArrival]]] = {
            f: [] for f in self.rates
        }
        departures: Dict[int, FluidDeparture] = {}

        t = pending[0].time if pending else 0.0
        idx = 0
        guard = 0
        while idx < len(pending) or any(b > 1e-12 for b in backlog.values()):
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - defensive
                raise RuntimeError("GPS fluid model failed to converge")
            active = [f for f, b in backlog.items() if b > 1e-12]
            next_arrival_t = pending[idx].time if idx < len(pending) else math.inf
            if not active:
                # Jump to the next arrival.
                if idx >= len(pending):
                    break
                t = next_arrival_t
            else:
                weight = sum(self.rates[f] for f in active)
                # Earliest emptying time among active flows.
                empty_t = math.inf
                for f in active:
                    service_rate = self.capacity * self.rates[f] / weight
                    empty_t = min(empty_t, t + backlog[f] / service_rate)
                horizon = min(next_arrival_t, empty_t)
                dt = horizon - t
                if dt <= 0.0:
                    # A residual backlog drains in less than one float ulp of
                    # t, so time cannot advance: flush such flows instantly
                    # (their remaining bits depart "now") to guarantee
                    # progress.
                    for f in active:
                        service_rate = self.capacity * self.rates[f] / weight
                        if t + backlog[f] / service_rate <= t:
                            served[f] += backlog[f]
                            backlog[f] = 0.0
                            lst = thresholds[f]
                            while lst and lst[0][0] <= served[f] + 1e-9:
                                _, arrival = lst.pop(0)
                                departures[id(arrival)] = FluidDeparture(
                                    arrival, t
                                )
                    # Ingestion below handles arrivals at exactly t.
                elif dt > 0:
                    for f in active:
                        service_rate = self.capacity * self.rates[f] / weight
                        amount = min(backlog[f], service_rate * dt)
                        backlog[f] -= amount
                        served[f] += amount
                        # Record departures whose threshold was crossed.
                        lst = thresholds[f]
                        while lst and lst[0][0] <= served[f] + 1e-9:
                            threshold, arrival = lst.pop(0)
                            over = served[f] - threshold
                            cross_t = horizon - over / service_rate
                            departures[id(arrival)] = FluidDeparture(
                                arrival, cross_t
                            )
                        if backlog[f] <= 1e-12:
                            backlog[f] = 0.0
                    t = horizon
            # Ingest all arrivals at time t.
            while idx < len(pending) and pending[idx].time <= t + 1e-15:
                arrival = pending[idx]
                idx += 1
                f = arrival.flow_id
                backlog[f] += arrival.size_bits
                arrived[f] += arrival.size_bits
                thresholds[f].append((arrived[f], arrival))
        # Anything never departed (should not happen) departs at t.
        out = []
        for arrival in arrivals:
            record = departures.get(id(arrival))
            if record is None:  # pragma: no cover - defensive
                record = FluidDeparture(arrival, t)
            out.append(record)
        return out

    def max_delay(self, arrivals: List[FluidArrival], flow_id: str) -> float:
        """Largest last-bit delay of ``flow_id`` over these arrivals."""
        return max(
            (d.delay for d in self.run(arrivals) if d.arrival.flow_id == flow_id),
            default=0.0,
        )
