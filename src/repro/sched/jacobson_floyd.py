"""The Jacobson-Floyd predicted-service scheme (Section 11).

The paper describes one other architecture aimed at tolerant/adaptive
clients — an unpublished 1991 scheme by Jacobson and Floyd — and contrasts
it with CSZ point by point:

* priorities as the coarse sharing/isolation mechanism (same as CSZ);
* **round-robin among aggregate groups within each priority level** where
  CSZ uses FIFO ("they use round-robin instead of FIFO within a given
  priority level ... combine the traffic in each priority level into some
  number of aggregate groups, and do FIFO within each group");
* **traffic filters enforced at every switch** as an additional form of
  isolation, where CSZ checks conformance only at the network edge;
* **no provision for guaranteed service.**

:class:`JacobsonFloydScheduler` implements that design faithfully so the
benches can compare the two philosophies on identical workloads: CSZ's
FIFO-within-class multiplexes bursts (lower aggregate jitter, §5), while
round-robin re-isolates groups inside the class and per-switch policing
re-drops traffic that queueing upstream has already distorted — the
specific costs the paper's design choices avoid.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.net.packet import Packet, ServiceClass
from repro.sched.base import Scheduler
from repro.sched.priority import PriorityScheduler
from repro.sched.round_robin import RoundRobinScheduler

# group_of maps a packet to its aggregate group within its priority level;
# the default groups by flow id (the finest aggregation).
GroupClassifier = Callable[[Packet], str]


class JacobsonFloydScheduler(Scheduler):
    """Priorities over round-robin groups, with per-switch policing.

    Args:
        num_classes: priority levels (datagram traffic rides the lowest
            level automatically, as in the unified scheduler).
        group_of: packet -> aggregate group name within its level; defaults
            to per-flow groups.
        police: optional per-flow (rate_bps, depth_bits) token buckets
            enforced at THIS switch; nonconforming packets are dropped
            here, not just at the network edge.  This is the scheme's
            "enforcement of traffic filters at every switch".
    """

    def __init__(
        self,
        num_classes: int = 2,
        group_of: Optional[GroupClassifier] = None,
        police: Optional[Dict[str, Tuple[float, float]]] = None,
    ):
        # Imported here, not at module top: repro.net.port pulls in
        # repro.sched during its own initialization, and repro.traffic
        # pulls repro.net back in — a top-level import would cycle.
        from repro.traffic.token_bucket import TokenBucket

        if num_classes < 1:
            raise ValueError("need at least one priority class")
        self._token_bucket_cls = TokenBucket
        self.num_predicted_classes = num_classes
        self._group_of = group_of or (lambda packet: packet.flow_id)
        self._priority = PriorityScheduler(
            num_classes=num_classes + 1,  # + the datagram level
            sub_scheduler_factory=lambda: RoundRobinScheduler(
                key_of=self._group_of
            ),
            classifier=self._classify,
        )
        self._police: Dict[str, object] = {}
        for flow_id, (rate, depth) in (police or {}).items():
            self._police[flow_id] = TokenBucket(rate, depth)
        self.policed_drops = 0

    # ------------------------------------------------------------------
    def _classify(self, packet: Packet) -> int:
        if packet.service_class is ServiceClass.DATAGRAM:
            return self.num_predicted_classes
        return min(packet.priority_class, self.num_predicted_classes - 1)

    def add_policer(self, flow_id: str, rate_bps: float, depth_bits: float) -> None:
        """Install (or replace) this switch's policer for one flow."""
        self._police[flow_id] = self._token_bucket_cls(rate_bps, depth_bits)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> bool:
        bucket = self._police.get(packet.flow_id)
        if bucket is not None and not bucket.try_consume(packet.size_bits, now):
            self.policed_drops += 1
            return False
        return self._priority.enqueue(packet, now)

    def dequeue(self, now: float) -> Optional[Packet]:
        return self._priority.dequeue(now)

    def __len__(self) -> int:
        return len(self._priority)

    def select_push_out(self, incoming: Packet) -> Optional[Packet]:
        return self._priority.select_push_out(incoming)

    def queue_lengths(self) -> Dict[int, int]:
        return self._priority.queue_lengths()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<JacobsonFloydScheduler qlen={len(self)} "
            f"K={self.num_predicted_classes} policed={len(self._police)}>"
        )
