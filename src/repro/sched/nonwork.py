"""Non-work-conserving baselines from the related work (Section 11).

The paper surveys three rate-/frame-based disciplines that deliberately
idle the link — "packets are not allowed to leave early ... these
algorithms typically deliver higher average delays in return for lower
jitter":

* **Stop-and-Go queueing** (Golestani [8, 9]): time is cut into frames of
  length T; a packet arriving during frame k may only depart during frame
  k+1 or later.  Delay through a switch is bounded in [T, 2T] and jitter
  in [0, T] regardless of other traffic, at the cost of a full frame of
  average delay.
* **Hierarchical Round Robin** (Kalmanek, Kanakia & Keshav [16]),
  simplified to one level: each flow owns a fixed number of slots per
  frame and may not exceed them even when the link is idle — the
  non-work-conserving rate limit is what bounds downstream burstiness.
* **Jitter-EDD** (Verma, Zhang & Ferrari [22]): earliest-deadline-first
  with a *jitter-correcting hold*: each packet carries how far ahead of
  its deadline it left the previous switch, and the next switch holds it
  for exactly that long before making it eligible.  Per-hop jitter is thus
  cancelled hop by hop — the same header-field idea as FIFO+, applied to
  holding rather than reordering (the packet's ``jitter_offset`` field
  carries the hold time, non-negative under this discipline).

All three cooperate with :class:`~repro.net.port.OutputPort` through the
``attach_port`` / ``kick`` protocol: when ``dequeue`` finds packets held
but none eligible, the scheduler arms a timer that re-polls the port at
the earliest eligibility instant.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sched.base import GuaranteedServiceUnsupported, Scheduler
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle

_ELIGIBILITY_EPS = 1e-12


class _HeldPacketScheduler(Scheduler):
    """Shared plumbing: an eligibility heap + port wake-up timers."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._port = None
        self._timer: Optional[EventHandle] = None
        # Packets served before their eligibility (frame credit exceeded,
        # hold cut short).  Structurally impossible through the normal
        # dequeue paths; the counter is the seam the eligibility-time
        # invariant in :mod:`repro.validate` reads, so a future scheduler
        # bug shows up as a failed invariant instead of silent jitter.
        self.early_departures = 0

    # -- OutputPort protocol -------------------------------------------
    def attach_port(self, port) -> None:
        self._port = port

    def _arm_wakeup(self, eligible_at: float) -> None:
        """(Re)schedule a port kick for ``eligible_at`` if it beats the
        currently armed timer."""
        now = self.sim.now
        if self._timer is not None and self._timer.active:
            if self._timer.time <= eligible_at + _ELIGIBILITY_EPS:
                return
            self._timer.cancel()
        delay = max(0.0, eligible_at - now)
        self._timer = self.sim.schedule_handle(delay, self._on_wakeup)

    def _on_wakeup(self) -> None:
        self._timer = None
        if self._port is not None:
            self._port.kick()


class StopAndGoScheduler(_HeldPacketScheduler):
    """Stop-and-Go queueing: departures happen one frame after arrivals.

    Args:
        sim: the simulator (drives eligibility timers).
        frame_seconds: the frame length T.  Per Golestani, a packet
            arriving in frame k is eligible from the start of frame k+1;
            within a frame, service is FIFO.
    """

    def __init__(self, sim: Simulator, frame_seconds: float):
        if frame_seconds <= 0:
            raise ValueError("frame length must be positive")
        super().__init__(sim)
        self.frame_seconds = frame_seconds
        self._heap: List[Tuple[float, int, Packet]] = []
        self._seq = 0
        self.held_polls = 0  # times dequeue found only ineligible packets

    def eligible_time(self, arrival: float) -> float:
        """Start of the frame after the one containing ``arrival``."""
        frame_index = math.floor(arrival / self.frame_seconds + _ELIGIBILITY_EPS)
        return (frame_index + 1) * self.frame_seconds

    def enqueue(self, packet: Packet, now: float) -> bool:
        eligible = self.eligible_time(now)
        heapq.heappush(self._heap, (eligible, self._seq, packet))
        self._seq += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        eligible, __, packet = self._heap[0]
        if eligible > now + _ELIGIBILITY_EPS:
            self.held_polls += 1
            self._arm_wakeup(eligible)
            return None
        heapq.heappop(self._heap)
        return packet

    def drain(self, now: float) -> List[Packet]:
        """Flush held packets in eligibility order, ignoring holds."""
        out = [packet for __, __, packet in sorted(self._heap)]
        self._heap.clear()
        return out

    def __len__(self) -> int:
        return len(self._heap)


class HrrScheduler(_HeldPacketScheduler):
    """One-level Hierarchical Round Robin.

    Each flow is allotted ``slots`` packet transmissions per frame; unused
    slots do NOT carry over (that non-accumulation is what bounds the
    downstream burst).  Unknown flows are refused unless
    ``default_slots`` is set.

    Args:
        frame_seconds: frame length.
        slots_per_flow: flow id -> packets it may send per frame.
        default_slots: allotment auto-assigned to unknown flows (None
            refuses them).
    """

    def __init__(
        self,
        sim: Simulator,
        frame_seconds: float,
        slots_per_flow: Optional[Dict[str, int]] = None,
        default_slots: Optional[int] = None,
    ):
        if frame_seconds <= 0:
            raise ValueError("frame length must be positive")
        super().__init__(sim)
        self.frame_seconds = frame_seconds
        self._slots: Dict[str, int] = dict(slots_per_flow or {})
        for flow, slots in self._slots.items():
            if slots < 1:
                raise ValueError(f"slots of {flow} must be >= 1")
        if default_slots is not None and default_slots < 1:
            raise ValueError("default slots must be >= 1")
        self.default_slots = default_slots
        self._queues: "OrderedDict[str, Deque[Packet]]" = OrderedDict()
        self._credits: Dict[str, int] = {}
        self._frame_served: Dict[str, int] = {}
        self._frame_index = -1
        self._size = 0
        self.refused = 0

    def register_flow(self, flow_id: str, slots: int) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self._slots[flow_id] = slots

    def install_guaranteed(self, flow_id: str, rate_bps: float) -> None:
        """HRR reserves *slots per frame*, not bits/s — refuse the ambiguous
        install so a bit rate is never silently reinterpreted as a slot
        count.  Callers with a known packet size convert explicitly:
        ``register_flow(flow, hrr.slots_for_rate(rate_bps, packet_bits))``.
        """
        raise GuaranteedServiceUnsupported(
            "HrrScheduler allocates slots/frame, not bits/s; convert with "
            "slots_for_rate(rate_bps, packet_size_bits) and call "
            "register_flow explicitly"
        )

    def slots_for_rate(self, rate_bps: float, packet_size_bits: int) -> int:
        """Slots/frame needed to carry ``rate_bps`` of ``packet_size_bits``
        packets — the explicit bits/s -> slots conversion."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        if packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        return max(
            1, math.ceil(rate_bps * self.frame_seconds / packet_size_bits)
        )

    def _frame_of(self, now: float) -> int:
        return math.floor(now / self.frame_seconds + _ELIGIBILITY_EPS)

    def _refresh_frame(self, now: float) -> None:
        frame = self._frame_of(now)
        if frame != self._frame_index:
            self._frame_index = frame
            self._credits = dict(self._slots)
            self._frame_served = {}

    def enqueue(self, packet: Packet, now: float) -> bool:
        if packet.flow_id not in self._slots:
            if self.default_slots is None:
                self.refused += 1
                return False
            self._slots[packet.flow_id] = self.default_slots
        queue = self._queues.get(packet.flow_id)
        if queue is None:
            queue = deque()
            self._queues[packet.flow_id] = queue
        queue.append(packet)
        self._size += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._size == 0:
            return None
        self._refresh_frame(now)
        for flow_id, queue in self._queues.items():
            if queue and self._credits.get(flow_id, 0) > 0:
                self._credits[flow_id] -= 1
                served = self._frame_served.get(flow_id, 0) + 1
                self._frame_served[flow_id] = served
                if served > self._slots.get(flow_id, 0):
                    self.early_departures += 1
                self._size -= 1
                return queue.popleft()
        # Backlogged but out of credit: wait for the next frame.
        next_frame_at = (self._frame_index + 1) * self.frame_seconds
        self._arm_wakeup(next_frame_at)
        return None

    def drain(self, now: float) -> List[Packet]:
        """Flush every per-flow queue in round-robin registration order,
        ignoring frame credits."""
        out: List[Packet] = []
        for queue in self._queues.values():
            while queue:
                out.append(queue.popleft())
        self._size = 0
        return out

    def __len__(self) -> int:
        return self._size


class JitterEddScheduler(_HeldPacketScheduler):
    """Jitter-EDD: hold each packet for its carried "ahead" time, then EDF.

    At enqueue, a packet is held until ``now + packet.jitter_offset`` (the
    amount it left the previous switch ahead of its local deadline; zero at
    the first hop).  Once eligible it contends in deadline order, deadline
    = eligibility + the flow's per-hop delay target.  At dequeue the packet
    is stamped with its new ahead time, ``max(0, deadline - now)``, for the
    next hop — per-hop jitter is cancelled instead of accumulated.

    Args:
        delay_targets: flow id -> per-hop delay target (seconds).
        default_target: target for unknown flows (None refuses them).
    """

    def __init__(
        self,
        sim: Simulator,
        delay_targets: Optional[Dict[str, float]] = None,
        default_target: Optional[float] = None,
    ):
        super().__init__(sim)
        self._targets: Dict[str, float] = dict(delay_targets or {})
        for flow, target in self._targets.items():
            if target <= 0:
                raise ValueError(f"target of {flow} must be positive")
        if default_target is not None and default_target <= 0:
            raise ValueError("default target must be positive")
        self.default_target = default_target
        # Held until eligible: (eligible_time, seq, deadline, packet).
        self._held: List[Tuple[float, int, float, Packet]] = []
        # Eligible, in deadline order: (deadline, seq, eligible, packet).
        # The eligibility time rides along (seq is unique, so it never
        # participates in heap ordering) for the early-departure check.
        self._ready: List[Tuple[float, int, float, Packet]] = []
        self._seq = 0
        self.refused = 0

    def set_target(self, flow_id: str, target: float) -> None:
        if target <= 0:
            raise ValueError("target must be positive")
        self._targets[flow_id] = target

    def enqueue(self, packet: Packet, now: float) -> bool:
        target = self._targets.get(packet.flow_id, self.default_target)
        if target is None:
            self.refused += 1
            return False
        hold = max(0.0, packet.jitter_offset)
        eligible = now + hold
        deadline = eligible + target
        if hold <= _ELIGIBILITY_EPS:
            heapq.heappush(self._ready, (deadline, self._seq, eligible, packet))
        else:
            heapq.heappush(self._held, (eligible, self._seq, deadline, packet))
        self._seq += 1
        return True

    def _mature(self, now: float) -> None:
        while self._held and self._held[0][0] <= now + _ELIGIBILITY_EPS:
            eligible, seq, deadline, packet = heapq.heappop(self._held)
            heapq.heappush(self._ready, (deadline, seq, eligible, packet))

    def dequeue(self, now: float) -> Optional[Packet]:
        self._mature(now)
        if self._ready:
            deadline, __, eligible, packet = heapq.heappop(self._ready)
            if eligible > now + _ELIGIBILITY_EPS:
                self.early_departures += 1
            # Stamp the ahead-of-deadline time for the next hop's hold.
            packet.jitter_offset = max(0.0, deadline - now)
            return packet
        if self._held:
            self._arm_wakeup(self._held[0][0])
        return None

    def drain(self, now: float) -> List[Packet]:
        """Flush ready packets (deadline order) then held ones
        (eligibility order), ignoring holds."""
        out = [entry[3] for entry in sorted(self._ready)]
        out.extend(entry[3] for entry in sorted(self._held))
        self._ready.clear()
        self._held.clear()
        return out

    def __len__(self) -> int:
        return len(self._held) + len(self._ready)
