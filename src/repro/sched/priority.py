"""Strict priority scheduling over per-class sub-schedulers (Section 7).

Priority is the paper's second sharing mechanism: a higher class *shifts its
jitter* onto lower classes, which see the higher classes' bursts as baseline
load.  Toward lower classes it acts as an isolation mechanism (they can
never disturb the classes above).

Each priority level delegates to a sub-scheduler (FIFO by default, FIFO+ in
the unified algorithm), so this class is also the composition glue of the
unified CSZ scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.packet import Packet
from repro.sched.base import Scheduler
from repro.sched.fifo import FifoScheduler

SubSchedulerFactory = Callable[[], Scheduler]


class PriorityScheduler(Scheduler):
    """Strict priority among numbered classes; 0 is the highest priority.

    Args:
        num_classes: number of priority levels.
        sub_scheduler_factory: builds the intra-class scheduler for each
            level (default FIFO).
        classifier: maps a packet to its class index; the default reads
            ``packet.priority_class`` (clamped into range, so datagram
            traffic tossed at a high index lands in the lowest class).
    """

    def __init__(
        self,
        num_classes: int,
        sub_scheduler_factory: Optional[SubSchedulerFactory] = None,
        classifier: Optional[Callable[[Packet], int]] = None,
    ):
        if num_classes <= 0:
            raise ValueError(f"need at least one class, got {num_classes}")
        factory = sub_scheduler_factory or FifoScheduler
        self.levels: List[Scheduler] = [factory() for _ in range(num_classes)]
        self._classifier = classifier or self._default_classifier
        self._size = 0
        # Strict priority adds no clock dependence of its own, so bursts
        # may be batch-served iff every level can be (instance attribute:
        # it depends on the factory the caller chose).
        self.supports_batch_drain = all(
            level.supports_batch_drain for level in self.levels
        )

    @property
    def num_classes(self) -> int:
        return len(self.levels)

    def _default_classifier(self, packet: Packet) -> int:
        return packet.priority_class

    def classify(self, packet: Packet) -> int:
        """Class index for ``packet``, clamped to the valid range."""
        idx = self._classifier(packet)
        return min(max(idx, 0), len(self.levels) - 1)

    def enqueue(self, packet: Packet, now: float) -> bool:
        level = self.levels[self.classify(packet)]
        if level.enqueue(packet, now):
            self._size += 1
            return True
        return False

    def dequeue(self, now: float) -> Optional[Packet]:
        for level in self.levels:
            if len(level):
                packet = level.dequeue(now)
                if packet is not None:
                    self._size -= 1
                    return packet
        return None

    def __len__(self) -> int:
        return self._size

    def peek_next(self) -> Optional[Packet]:
        for level in self.levels:
            if len(level):
                return level.peek_next()
        return None

    def queue_lengths(self) -> Dict[int, int]:
        """Per-class occupancy (diagnostics)."""
        return {i: len(level) for i, level in enumerate(self.levels)}

    def select_push_out(self, incoming: Packet) -> Optional[Packet]:
        """Evict from the *lowest-priority* non-empty class if the incoming
        packet is strictly higher priority — datagram traffic should not be
        able to push out real-time packets, but a full buffer of datagram
        packets should not block predicted-service traffic either."""
        incoming_class = self.classify(incoming)
        for idx in range(len(self.levels) - 1, incoming_class, -1):
            level = self.levels[idx]
            victim = level.select_push_out(incoming)
            if victim is not None:
                self._size -= 1
                return victim
            if len(level):
                # Generic eviction: drain the level's worst packet.  Sub-
                # schedulers without native push-out give up their head;
                # for FIFO-like levels evicting the newest is preferable,
                # so FifoScheduler-based levels pop from the tail.
                tail = getattr(level, "evict_tail", None)
                if tail is not None:
                    packet = tail()
                else:
                    packet = level.dequeue(0.0)
                if packet is not None:
                    self._size -= 1
                    return packet
        return None
