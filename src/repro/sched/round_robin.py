"""Round-robin disciplines — Section 11 baselines.

Jacobson and Floyd's (unpublished, 1991) predicted-service scheme used
round-robin among aggregated groups within each priority level where the
paper uses FIFO; these schedulers let the benches compare the two sharing
styles.  Deficit round robin generalizes to variable packet sizes with O(1)
work per packet.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional

from repro.net.packet import Packet
from repro.sched.base import Scheduler


class RoundRobinScheduler(Scheduler):
    """Packet-by-packet round robin across flows (or aggregate groups).

    Visits ring slots with queued packets in fixed registration order, one
    packet per visit.  Fair in packets/s (not bits/s) — exact for the
    paper's uniform 1000-bit packets.

    Args:
        key_of: maps a packet to its ring slot.  Defaults to the flow id
            (per-flow round robin); the Jacobson-Floyd scheme passes a
            group classifier so several flows share one slot with FIFO
            order inside it.
    """

    def __init__(self, key_of: Optional[Callable[[Packet], str]] = None):
        self._key_of = key_of or (lambda packet: packet.flow_id)
        self._queues: "OrderedDict[str, Deque[Packet]]" = OrderedDict()
        self._cursor = 0
        self._size = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        key = self._key_of(packet)
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        queue.append(packet)
        self._size += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._size == 0:
            return None
        flows = list(self._queues.keys())
        n = len(flows)
        for step in range(n):
            flow = flows[(self._cursor + step) % n]
            queue = self._queues[flow]
            if queue:
                packet = queue.popleft()
                self._size -= 1
                self._cursor = (self._cursor + step + 1) % n
                return packet
        return None  # pragma: no cover - unreachable while _size > 0

    def __len__(self) -> int:
        return self._size


class DeficitRoundRobinScheduler(Scheduler):
    """Deficit round robin (Shreedhar & Varghese style).

    Each flow gets ``quantum_bits`` of sending credit per round; unused
    credit carries over while the flow stays backlogged.
    """

    def __init__(self, quantum_bits: int = 1000):
        if quantum_bits <= 0:
            raise ValueError("quantum must be positive")
        self.quantum_bits = quantum_bits
        self._queues: "OrderedDict[str, Deque[Packet]]" = OrderedDict()
        self._deficit: Dict[str, float] = {}
        self._active: Deque[str] = deque()  # round-robin ring of backlogged flows
        self._turn_open = False  # front flow already granted its quantum this visit
        self._size = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        flow = packet.flow_id
        queue = self._queues.get(flow)
        if queue is None:
            queue = deque()
            self._queues[flow] = queue
            self._deficit[flow] = 0.0
        if not queue:
            self._active.append(flow)
            self._deficit[flow] = 0.0
        queue.append(packet)
        self._size += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._size == 0:
            return None
        while True:
            flow = self._active[0]
            queue = self._queues[flow]
            if not self._turn_open:
                # First look at this flow on this visit: grant one quantum.
                self._deficit[flow] += self.quantum_bits
                self._turn_open = True
            head = queue[0]
            if self._deficit[flow] < head.size_bits:
                # Credit exhausted for this visit (it carries over): rotate.
                self._active.rotate(-1)
                self._turn_open = False
                continue
            self._deficit[flow] -= head.size_bits
            queue.popleft()
            self._size -= 1
            if not queue:
                self._deficit[flow] = 0.0
                self._active.popleft()
                self._turn_open = False
            return head

    def __len__(self) -> int:
        return self._size
