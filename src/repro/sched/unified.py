"""The unified CSZ scheduling algorithm (Section 7).

Structure, exactly as the paper lays it out:

* A top-level **WFQ frame** provides isolation.  Every guaranteed flow
  alpha is a WFQ flow with its own clock rate r_alpha.
* All predicted-service and datagram traffic together form **pseudo-flow
  0** with clock rate ``r_0 = capacity - sum(r_alpha)`` — the residual link
  bandwidth.
* Inside flow 0 sit **K strict priority classes** of predicted service
  (class 0 highest), each running **FIFO+**, and below them the **datagram
  class** (plain FIFO).

Flow-0 finish tags are assigned *on packet arrival, in arrival order*, so
the aggregate draws its WFQ share of the link no matter how the inner
priority/FIFO+ hierarchy reorders packets; when the WFQ frame selects flow
0, the oldest outstanding flow-0 tag is consumed and the inner hierarchy
picks the actual packet.  This decoupling of "how much service the
aggregate gets" (tags) from "which packet uses it" (priorities + FIFO+) is
the paper's isolation/sharing split made literal.

Guaranteed packets from flows that were never registered (no admission)
are refused — the port records them as drops — because guaranteed service
exists only behind an established commitment.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.net.packet import Packet, ServiceClass
from repro.sched.base import Scheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import ClassDelayTracker, FifoPlusScheduler
from repro.sched.priority import PriorityScheduler
from repro.sched.wfq import VirtualTime

PSEUDO_FLOW_0 = "__predicted+datagram__"

_INF = float("inf")


@dataclasses.dataclass
class UnifiedConfig:
    """Configuration of one unified scheduler instance (one output port).

    Attributes:
        capacity_bps: output link speed.
        num_predicted_classes: K, the number of predicted-service priority
            levels (datagram traffic rides below all of them).
        fifoplus_gain: EWMA gain for the per-class average-delay tracker.
        stale_offset_threshold: optional Section 10 discard-when-late
            threshold passed to the FIFO+ levels.
        min_pseudo_flow_rate_bps: installing a guaranteed flow must leave at
            least this much residual rate for flow 0; the admission module
            enforces the paper's 10 % datagram quota *network-wide*, and
            this floor keeps a single port from being configured into a
            corner even when driven directly.
    """

    capacity_bps: float
    num_predicted_classes: int = 2
    fifoplus_gain: float = 0.01
    stale_offset_threshold: Optional[float] = None
    min_pseudo_flow_rate_bps: float = 1.0

    def __post_init__(self):
        if self.capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        if self.num_predicted_classes < 1:
            raise ValueError("need at least one predicted class")
        if self.min_pseudo_flow_rate_bps <= 0:
            raise ValueError("pseudo-flow floor must be positive")


class UnifiedScheduler(Scheduler):
    """WFQ(guaranteed flows, flow-0[priority classes -> FIFO+ / FIFO])."""

    # Predicted classes ride FIFO+ levels inside flow 0, which preserve
    # within-flow order only statistically (see FifoPlusScheduler).
    preserves_flow_fifo = False

    def __init__(self, config: UnifiedConfig):
        self.config = config
        self.vt = VirtualTime(config.capacity_bps)
        self._guaranteed_rates: Dict[str, float] = {}
        # Per guaranteed flow: FIFO of (finish_tag, packet).
        self._gqueues: Dict[str, Deque[Tuple[float, Packet]]] = {}
        # Flow 0: FIFO of outstanding finish tags + the inner hierarchy.
        self._flow0_tags: Deque[float] = deque()
        self.class_delay_tracker = ClassDelayTracker(config.fifoplus_gain)
        self._made_levels = 0
        self._flow0 = PriorityScheduler(
            num_classes=config.num_predicted_classes + 1,
            sub_scheduler_factory=self._make_level,
            classifier=self._classify_flow0,
        )
        self.vt.register(PSEUDO_FLOW_0, self._pseudo_rate())
        self._size = 0
        self.refused_guaranteed = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_level(self) -> Scheduler:
        """Levels 0..K-1 are FIFO+ (predicted); level K is FIFO (datagram)."""
        idx = self._made_levels
        self._made_levels += 1
        if idx < self.config.num_predicted_classes:
            return FifoPlusScheduler(
                delay_tracker=self.class_delay_tracker,
                stale_offset_threshold=self.config.stale_offset_threshold,
            )
        return FifoScheduler()

    def _classify_flow0(self, packet: Packet) -> int:
        if packet.service_class is ServiceClass.DATAGRAM:
            return self.config.num_predicted_classes  # the bottom level
        return packet.priority_class

    def _pseudo_rate(self) -> float:
        residual = self.config.capacity_bps - sum(self._guaranteed_rates.values())
        return max(residual, self.config.min_pseudo_flow_rate_bps)

    # ------------------------------------------------------------------
    # Guaranteed-flow management (driven by signaling/admission)
    # ------------------------------------------------------------------
    def install_guaranteed_flow(self, flow_id: str, rate_bps: float) -> None:
        """Give ``flow_id`` a WFQ clock rate; shrinks pseudo-flow 0's rate.

        Raises:
            ValueError: if the rate is non-positive or would not leave the
                configured floor of residual bandwidth.
        """
        if rate_bps <= 0:
            raise ValueError("clock rate must be positive")
        if flow_id in self._guaranteed_rates:
            raise ValueError(f"guaranteed flow {flow_id} already installed")
        new_sum = sum(self._guaranteed_rates.values()) + rate_bps
        residual = self.config.capacity_bps - new_sum
        if residual < self.config.min_pseudo_flow_rate_bps:
            raise ValueError(
                f"installing {flow_id} at {rate_bps} bps leaves only "
                f"{residual} bps for predicted/datagram traffic"
            )
        self._guaranteed_rates[flow_id] = rate_bps
        self._gqueues[flow_id] = deque()
        self.vt.register(flow_id, rate_bps)
        self._reregister_pseudo_flow()

    supports_guaranteed = True

    def install_guaranteed(self, flow_id: str, rate_bps: float) -> None:
        """Capability interface alias for :meth:`install_guaranteed_flow`."""
        self.install_guaranteed_flow(flow_id, rate_bps)

    def remove_guaranteed_flow(self, flow_id: str) -> None:
        """Tear down a guaranteed flow (its queue must be empty)."""
        if self._gqueues.get(flow_id):
            raise RuntimeError(f"flow {flow_id} still has queued packets")
        self._guaranteed_rates.pop(flow_id, None)
        self._gqueues.pop(flow_id, None)
        self._reregister_pseudo_flow()

    def _reregister_pseudo_flow(self) -> None:
        # VirtualTime refuses rate changes while a flow is backlogged; the
        # signaling layer only reconfigures quiescent ports in the
        # experiments, and tests cover the error path.
        self.vt._rates[PSEUDO_FLOW_0] = self._pseudo_rate()

    @property
    def guaranteed_rate_sum(self) -> float:
        return sum(self._guaranteed_rates.values())

    def guaranteed_flows(self) -> Dict[str, float]:
        return dict(self._guaranteed_rates)

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> bool:
        if packet.service_class is ServiceClass.GUARANTEED:
            queue = self._gqueues.get(packet.flow_id)
            if queue is None:
                self.refused_guaranteed += 1
                return False
            queue.append(
                (self.vt.assign_tag(packet.flow_id, packet.size_bits, now), packet)
            )
            self._size += 1
            return True
        # Predicted or datagram -> pseudo-flow 0.
        if not self._flow0.enqueue(packet, now):
            return False
        self._flow0_tags.append(
            self.vt.assign_tag(PSEUDO_FLOW_0, packet.size_bits, now)
        )
        self._size += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if self._size == 0:
            return None
        self.vt.advance(now)
        # Pick the logical flow with the smallest head finish tag.
        best_flow: Optional[str] = None
        best_tag = _INF
        for flow_id, queue in self._gqueues.items():
            if queue and queue[0][0] < best_tag:
                best_tag = queue[0][0]
                best_flow = flow_id
        flow0_tags = self._flow0_tags
        if flow0_tags and flow0_tags[0] < best_tag:
            best_tag = flow0_tags[0]
            best_flow = PSEUDO_FLOW_0
        if best_flow is None:
            return None  # pragma: no cover - _size said otherwise
        self._size -= 1
        if best_flow == PSEUDO_FLOW_0:
            flow0_tags.popleft()
            packet = self._flow0.dequeue(now)
            assert packet is not None, "flow-0 tag/packet books diverged"
            return packet
        __, packet = self._gqueues[best_flow].popleft()
        return packet

    def __len__(self) -> int:
        return self._size

    def select_push_out(self, incoming: Packet) -> Optional[Packet]:
        """Real-time arrivals may push out queued *datagram* packets.

        The inner priority scheduler performs the eviction; its tag book is
        then reconciled by discarding the newest flow-0 tag (the evicted
        packet was a flow-0 member, so one outstanding tag must go).
        Guaranteed packets never get evicted: their isolation is the whole
        point of the WFQ frame.
        """
        if incoming.service_class is ServiceClass.DATAGRAM:
            return None
        victim = self._flow0.select_push_out(incoming)
        if victim is None:
            return None
        self._size -= 1
        if self._flow0_tags:
            self._flow0_tags.pop()
        return victim

    def queue_lengths(self) -> Dict[str, int]:
        """Diagnostic occupancy: per guaranteed flow and per flow-0 level."""
        out = {flow: len(q) for flow, q in self._gqueues.items()}
        for level, qlen in self._flow0.queue_lengths().items():
            name = (
                f"predicted[{level}]"
                if level < self.config.num_predicted_classes
                else "datagram"
            )
            out[name] = qlen
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<UnifiedScheduler qlen={self._size} "
            f"guaranteed={len(self._guaranteed_rates)} "
            f"K={self.config.num_predicted_classes}>"
        )
