"""VirtualClock scheduling (Zhang, 1989/1991) — a Section 11 baseline.

VirtualClock stamps each packet with a per-flow virtual transmission time
advanced by ``size / rate`` per packet, anchored to *real* time when the
flow has been idle:

    VC = max(now, VC_prev) + size / r

and serves packets in stamp order.  It is "extremely similar" (the paper's
words) to WFQ in the underlying packet ordering but was designed for a
preallocated-rate context; its anchor to real time rather than GPS virtual
time means an idle flow does not accumulate credit.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sched.base import Scheduler


class VirtualClockScheduler(Scheduler):
    """VirtualClock with per-flow rates in bits/s.

    Args:
        rates_bps: clock rate per flow id.
        auto_register_rate: rate to assume for unknown flows (None refuses
            them, as with WFQ).
    """

    def __init__(
        self,
        rates_bps: Optional[Dict[str, float]] = None,
        auto_register_rate: Optional[float] = None,
    ):
        self._rates: Dict[str, float] = dict(rates_bps or {})
        for flow, rate in self._rates.items():
            if rate <= 0:
                raise ValueError(f"rate of {flow} must be positive")
        self.auto_register_rate = auto_register_rate
        self._vc: Dict[str, float] = {}
        self._heap: List[Tuple[float, int, Packet]] = []
        self._seq = 0
        self.refused = 0

    def register_flow(self, flow_id: str, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self._rates[flow_id] = rate_bps

    supports_guaranteed = True

    def install_guaranteed(self, flow_id: str, rate_bps: float) -> None:
        """Capability interface: VirtualClock rates are bits/s natively."""
        self.register_flow(flow_id, rate_bps)

    def enqueue(self, packet: Packet, now: float) -> bool:
        rate = self._rates.get(packet.flow_id)
        if rate is None:
            if self.auto_register_rate is None:
                self.refused += 1
                return False
            rate = self.auto_register_rate
            self._rates[packet.flow_id] = rate
        stamp = max(now, self._vc.get(packet.flow_id, 0.0)) + packet.size_bits / rate
        self._vc[packet.flow_id] = stamp
        heapq.heappush(self._heap, (stamp, self._seq, packet))
        self._seq += 1
        return True

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        __, __, packet = heapq.heappop(self._heap)
        return packet

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualClockScheduler qlen={len(self._heap)}>"
