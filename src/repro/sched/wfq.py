"""Weighted Fair Queueing (packetized GPS) — Section 4.

WFQ is the paper's *isolation* mechanism.  Each flow alpha holds a clock
rate r_alpha (its guaranteed share of the link); Parekh and Gallager proved
that if a flow conforms to an (r, b) token bucket and receives clock rate r
at every switch (with sum of clock rates <= link speed everywhere), its
total queueing delay is bounded by b/r regardless of how the other flows
behave.

The implementation here is the standard virtual-time formulation, which is
equivalent to the paper's "expected delay until departure" E_i(t) rule:

* Virtual time V(t) advances at rate C / (sum of clock rates of GPS-active
  flows); a flow is GPS-active while V has not yet passed the finish tag of
  its last-arrived packet.
* Packet i of flow alpha gets finish tag
  ``F = max(V(arrival), F_prev_of_flow) + size / r_alpha``.
* The link always transmits the queued packet with the smallest tag.

The :class:`VirtualTime` core is shared with the unified scheduler
(:mod:`repro.sched.unified`), which embeds all predicted and datagram
traffic as one pseudo-flow inside a WFQ frame.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.sched.base import Scheduler


class VirtualTime:
    """GPS virtual-time tracker for a link of a given capacity.

    Maintains V(t), the set of GPS-active flows, and assigns packet finish
    tags.  All methods take the current real time ``now`` and advance V
    internally; calls must be non-decreasing in ``now``.
    """

    def __init__(self, capacity_bps: float):
        if capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bps}")
        self.capacity_bps = float(capacity_bps)
        self._rates: Dict[str, float] = {}
        self._last_tag: Dict[str, float] = {}
        self._vtime = 0.0
        self._last_real = 0.0
        # GPS-active bookkeeping: flow -> final tag of its last arrival,
        # the sum of active rates, and a lazy min-heap of (tag, flow).
        self._active: Dict[str, float] = {}
        self._active_sum = 0.0
        self._tag_heap: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    @property
    def vtime(self) -> float:
        return self._vtime

    def register(self, flow_id: str, rate_bps: float) -> None:
        """Assign clock rate ``rate_bps`` to ``flow_id``.

        Re-registering with a new rate is allowed while the flow is GPS-idle
        (used when admission control renegotiates shares).
        """
        if rate_bps <= 0:
            raise ValueError(f"clock rate must be positive, got {rate_bps}")
        if flow_id in self._active:
            raise RuntimeError(
                f"cannot change rate of {flow_id} while it is backlogged"
            )
        self._rates[flow_id] = float(rate_bps)

    def is_registered(self, flow_id: str) -> bool:
        return flow_id in self._rates

    def rate_of(self, flow_id: str) -> float:
        return self._rates[flow_id]

    def registered_rate_sum(self) -> float:
        return sum(self._rates.values())

    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Advance V(t) from the last update time to ``now``.

        Between flow-departure breakpoints V grows linearly with slope
        C / (sum of active rates); each time V reaches the smallest final
        tag, that flow leaves the GPS-active set and the slope steepens.
        """
        t = self._last_real
        if now <= t:
            return
        active = self._active
        while t < now and active:
            flow, f_min = self._peek_min_tag()
            if flow is None:
                break
            slope = self.capacity_bps / self._active_sum
            t_reach = t + (f_min - self._vtime) / slope
            if t_reach <= now:
                self._vtime = f_min
                t = t_reach
                heapq.heappop(self._tag_heap)
                self._deactivate(flow)
            else:
                self._vtime += (now - t) * slope
                t = now
        self._last_real = now
        if not active:
            self._active_sum = 0.0  # cancel any float drift

    def _peek_min_tag(self) -> Tuple[Optional[str], float]:
        """Smallest current final tag among active flows (lazy deletion)."""
        heap = self._tag_heap
        while heap:
            tag, flow = heap[0]
            current = self._active.get(flow)
            if current is None or current > tag:
                heapq.heappop(heap)  # stale entry
                continue
            return flow, tag
        return None, 0.0

    def _deactivate(self, flow: str) -> None:
        self._active_sum -= self._rates[flow]
        del self._active[flow]

    # ------------------------------------------------------------------
    def assign_tag(self, flow_id: str, size_bits: int, now: float) -> float:
        """Advance V to ``now`` and return the finish tag for an arriving
        packet of ``size_bits`` on ``flow_id``."""
        self.advance(now)
        rate = self._rates[flow_id]
        vtime = self._vtime
        prev = self._last_tag.get(flow_id, 0.0)
        tag = (vtime if vtime > prev else prev) + size_bits / rate
        self._last_tag[flow_id] = tag
        active = self._active
        if flow_id not in active:
            self._active_sum += rate
        active[flow_id] = tag
        heapq.heappush(self._tag_heap, (tag, flow_id))
        return tag

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VirtualTime V={self._vtime:.6f} active={len(self._active)} "
            f"flows={len(self._rates)}>"
        )


class WfqScheduler(Scheduler):
    """Packetized weighted fair queueing over per-flow clock rates.

    Args:
        capacity_bps: the output link speed.
        rates_bps: optional initial clock rate per flow id.
        auto_register_rate: if set, a packet from an unknown flow implicitly
            registers that flow at this rate (the Table 1/2 experiments give
            every flow an equal share this way).  If unset, packets from
            unknown flows are refused (counted as drops by the port) —
            guaranteed service only exists for established flows.
    """

    def __init__(
        self,
        capacity_bps: float,
        rates_bps: Optional[Dict[str, float]] = None,
        auto_register_rate: Optional[float] = None,
    ):
        self.vt = VirtualTime(capacity_bps)
        self.auto_register_rate = auto_register_rate
        if rates_bps:
            for flow, rate in rates_bps.items():
                self.vt.register(flow, rate)
        self._heap: List[Tuple[float, int, Packet]] = []
        self._seq = 0
        self.refused = 0

    def register_flow(self, flow_id: str, rate_bps: float) -> None:
        self.vt.register(flow_id, rate_bps)

    supports_guaranteed = True

    def install_guaranteed(self, flow_id: str, rate_bps: float) -> None:
        """Capability interface: a WFQ clock rate *is* a guaranteed rate."""
        self.vt.register(flow_id, rate_bps)

    def enqueue(self, packet: Packet, now: float) -> bool:
        vt = self.vt
        flow_id = packet.flow_id
        if flow_id not in vt._rates:
            if self.auto_register_rate is None:
                self.refused += 1
                return False
            vt.register(flow_id, self.auto_register_rate)
        tag = vt.assign_tag(flow_id, packet.size_bits, now)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (tag, seq, packet))
        return True

    # Batched link service is safe here even though dequeue() takes the
    # clock: departure order is fixed entirely by the finish tags assigned
    # at *enqueue* time, and dequeue's ``vt.advance(now)`` is pure V(t)
    # bookkeeping that never reorders the tag heap.  The port's burst loop
    # dequeues at exactly the per-packet completion instants (each serve
    # advances ``sim.now`` to the departure time before the next dequeue),
    # so V(t) sees the identical sequence of ``now`` values — and the
    # identical float arithmetic — as the per-packet path.
    supports_batch_drain = True

    def peek_next(self) -> Optional[Packet]:
        """The smallest-tag packet, without popping or advancing V(t)."""
        return self._heap[0][2] if self._heap else None

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        self.vt.advance(now)
        __, __, packet = heapq.heappop(self._heap)
        return packet

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WfqScheduler qlen={len(self._heap)} {self.vt!r}>"
