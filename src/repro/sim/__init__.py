"""Discrete-event simulation substrate.

The paper's evaluation ran on a custom packet-level simulator written by
Lixia Zhang.  This subpackage is our from-scratch equivalent: a classic
calendar-queue (binary-heap) event loop with deterministic tie-breaking,
named timers, and seeded random streams so that every experiment in the
reproduction is replayable bit-for-bit.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.events import EventHandle
from repro.sim.randomness import RandomStreams, StreamRandom
from repro.sim.timers import PeriodicTimer

__all__ = [
    "Simulator",
    "SimulationError",
    "EventHandle",
    "RandomStreams",
    "StreamRandom",
    "PeriodicTimer",
]
