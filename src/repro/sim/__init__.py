"""Discrete-event simulation substrate.

The paper's evaluation ran on a custom packet-level simulator written by
Lixia Zhang.  This subpackage is our from-scratch equivalent: an event
loop over plain ``(time, priority, seq, action)`` tuples with
deterministic tie-breaking, named timers, and seeded random streams so
that every experiment in the reproduction is replayable bit-for-bit.

Two event-store backends (binary heap, calendar queue) and an optional
compiled core are selectable per engine — see :func:`backend_info` and
the README's Performance section.  The pure-Python engine is the
authoritative implementation; everything else must match it bit-for-bit.
"""

from repro.sim.engine import (
    Engine,
    PySimulator,
    SimulationError,
    Simulator,
    backend_info,
    resolve_queue_backend,
)
from repro.sim.calendar import CalendarQueue
from repro.sim.events import EventHandle
from repro.sim.randomness import RandomStreams, StreamRandom
from repro.sim.timers import PeriodicTimer

__all__ = [
    "Engine",
    "Simulator",
    "PySimulator",
    "SimulationError",
    "EventHandle",
    "CalendarQueue",
    "RandomStreams",
    "StreamRandom",
    "PeriodicTimer",
    "backend_info",
    "resolve_queue_backend",
]
