/* Compiled core for the discrete-event engine (repro.sim._engine_c).
 *
 * CSimulator is a drop-in for repro.sim.engine.PySimulator with the
 * "heap" event store: same public surface, same validation errors, same
 * (time, priority, seq) total order, same lazy-cancellation + compaction
 * behaviour, same batched-service seam (peek_next_time / horizon /
 * advance_to).  The pure-Python engine remains authoritative — the golden
 * suite must pass bit-identically under both — this module only removes
 * interpreter overhead: events live in a C array of structs (no tuple per
 * event), the heap is sifted in C, and the run loop is one C frame.
 *
 * The module is wired at import by repro.sim.engine calling
 * _wire(SimulationError, EventHandle) so both backends raise and return
 * exactly the same Python types.  Build via `python setup.py build_ext
 * --inplace`; if the extension is absent the factory silently uses the
 * pure-Python engine, and REPRO_PURE_PYTHON=1 ignores it even when built.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <math.h>

/* Compact the queue only past this many dead cells (matches
 * repro.sim.engine.COMPACT_MIN_CANCELLED). */
#define COMPACT_MIN_CANCELLED 256

typedef struct {
    double time;
    long priority;
    long long seq;
    PyObject *action; /* owned; callable, or one-cell list for cancellables */
} Event;

typedef struct {
    PyObject_HEAD
    double now;
    double horizon;
    Event *heap;
    Py_ssize_t size;
    Py_ssize_t capacity;
    long long seq;
    long long events_processed;
    long long cancelled;
    int running;
} CSimulator;

/* Wired from repro.sim.engine at import time. */
static PyObject *SimulationError = NULL;
static PyObject *EventHandleClass = NULL;

/* ------------------------------------------------------------------ */
/* Heap primitives: min-heap on (time, priority, seq).                 */
/* ------------------------------------------------------------------ */

static inline int
kwname_is(PyObject *name, const char *expected)
{
    return PyUnicode_CompareWithASCIIString(name, expected) == 0;
}

static inline int
ev_lt(const Event *a, const Event *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->priority != b->priority)
        return a->priority < b->priority;
    return a->seq < b->seq;
}

static int
heap_reserve(CSimulator *self, Py_ssize_t need)
{
    if (need <= self->capacity)
        return 0;
    Py_ssize_t cap = self->capacity ? self->capacity : 64;
    while (cap < need)
        cap *= 2;
    Event *grown = PyMem_Realloc(self->heap, (size_t)cap * sizeof(Event));
    if (grown == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = grown;
    self->capacity = cap;
    return 0;
}

static void
heap_sift_up(Event *heap, Py_ssize_t pos)
{
    Event item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!ev_lt(&item, &heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

static void
heap_sift_down(Event *heap, Py_ssize_t size, Py_ssize_t pos)
{
    Event item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && ev_lt(&heap[child + 1], &heap[child]))
            child += 1;
        if (!ev_lt(&heap[child], &item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

/* Push; steals a reference to action on success, decrefs it on failure. */
static int
heap_push(CSimulator *self, double time, long priority, PyObject *action)
{
    if (heap_reserve(self, self->size + 1) < 0) {
        Py_DECREF(action);
        return -1;
    }
    Event *slot = &self->heap[self->size];
    slot->time = time;
    slot->priority = priority;
    slot->seq = self->seq++;
    slot->action = action;
    heap_sift_up(self->heap, self->size);
    self->size += 1;
    return 0;
}

/* Pop the minimum into *out (caller owns out->action). Size must be > 0. */
static void
heap_pop(CSimulator *self, Event *out)
{
    *out = self->heap[0];
    self->size -= 1;
    if (self->size > 0) {
        self->heap[0] = self->heap[self->size];
        heap_sift_down(self->heap, self->size, 0);
    }
}

static void
heap_heapify(Event *heap, Py_ssize_t size)
{
    for (Py_ssize_t i = size / 2 - 1; i >= 0; i--)
        heap_sift_down(heap, size, i);
}

/* A cancelled handle cell: a list whose single slot was swapped to None. */
static inline int
ev_is_dead(const Event *ev)
{
    return PyList_CheckExact(ev->action) &&
           PyList_GET_ITEM(ev->action, 0) == Py_None;
}

/* ------------------------------------------------------------------ */
/* Argument helpers (FASTCALL with optional keywords).                 */
/* ------------------------------------------------------------------ */

/* Parse (t, action, priority=0) where the first positional may be named
 * either "delay" or "time" depending on the method. */
static int
parse_schedule_args(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                    const char *first_name, const char *method,
                    double *t, PyObject **action, long *priority)
{
    PyObject *t_obj = NULL, *prio_obj = NULL;
    *action = NULL;
    if (nargs >= 1)
        t_obj = args[0];
    if (nargs >= 2)
        *action = args[1];
    if (nargs >= 3)
        prio_obj = args[2];
    if (nargs > 3) {
        PyErr_Format(PyExc_TypeError, "%s() takes at most 3 arguments", method);
        return -1;
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (kwname_is(name, first_name)) {
                if (t_obj) goto duplicate;
                t_obj = value;
            }
            else if (kwname_is(name, "action")) {
                if (*action) goto duplicate;
                *action = value;
            }
            else if (kwname_is(name, "priority")) {
                if (prio_obj) goto duplicate;
                prio_obj = value;
            }
            else {
                PyErr_Format(PyExc_TypeError,
                             "%s() got an unexpected keyword argument %R",
                             method, name);
                return -1;
            }
            continue;
        duplicate:
            PyErr_Format(PyExc_TypeError,
                         "%s() got multiple values for argument %R",
                         method, name);
            return -1;
        }
    }
    if (t_obj == NULL || *action == NULL) {
        PyErr_Format(PyExc_TypeError,
                     "%s() missing required arguments", method);
        return -1;
    }
    *t = PyFloat_AsDouble(t_obj);
    if (*t == -1.0 && PyErr_Occurred())
        return -1;
    if (prio_obj != NULL) {
        *priority = PyLong_AsLong(prio_obj);
        if (*priority == -1 && PyErr_Occurred())
            return -1;
    }
    else {
        *priority = 0;
    }
    return 0;
}

static int
check_delay(double delay)
{
    if (!(delay >= 0.0 && delay < INFINITY)) {
        PyObject *obj = PyFloat_FromDouble(delay);
        if (obj != NULL) {
            PyErr_Format(SimulationError,
                         "delay must be finite and non-negative, got %S", obj);
            Py_DECREF(obj);
        }
        return -1;
    }
    return 0;
}

static int
check_abs_time(CSimulator *self, double time)
{
    if (!(time >= self->now && time < INFINITY)) {
        PyObject *t = PyFloat_FromDouble(time);
        PyObject *n = PyFloat_FromDouble(self->now);
        if (t != NULL && n != NULL)
            PyErr_Format(SimulationError,
                         "cannot schedule at %S (current time %S)", t, n);
        Py_XDECREF(t);
        Py_XDECREF(n);
        return -1;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Type basics                                                         */
/* ------------------------------------------------------------------ */

static int
CSimulator_init(CSimulator *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"start_time", "queue", NULL};
    double start = 0.0;
    PyObject *queue = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|dO", kwlist, &start, &queue))
        return -1;
    /* The factory only routes heap-queue instances here; accept "heap"/
     * "auto"/None defensively so direct construction behaves sanely. */
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_CLEAR(self->heap[i].action);
    self->size = 0;
    self->now = start;
    self->horizon = INFINITY;
    self->seq = 0;
    self->events_processed = 0;
    self->cancelled = 0;
    self->running = 0;
    return 0;
}

static int
CSimulator_traverse(CSimulator *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->heap[i].action);
    return 0;
}

static int
CSimulator_clear_slot(CSimulator *self)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_CLEAR(self->heap[i].action);
    self->size = 0;
    return 0;
}

static void
CSimulator_dealloc(CSimulator *self)
{
    PyObject_GC_UnTrack(self);
    CSimulator_clear_slot(self);
    PyMem_Free(self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ------------------------------------------------------------------ */
/* Scheduling                                                          */
/* ------------------------------------------------------------------ */

static PyObject *
CSimulator_schedule(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
                    PyObject *kwnames)
{
    double delay;
    long priority;
    PyObject *action;
    if (parse_schedule_args(args, nargs, kwnames, "delay", "schedule",
                            &delay, &action, &priority) < 0)
        return NULL;
    if (check_delay(delay) < 0)
        return NULL;
    Py_INCREF(action);
    if (heap_push(self, self->now + delay, priority, action) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CSimulator_schedule_at(CSimulator *self, PyObject *const *args,
                       Py_ssize_t nargs, PyObject *kwnames)
{
    double time;
    long priority;
    PyObject *action;
    if (parse_schedule_args(args, nargs, kwnames, "time", "schedule_at",
                            &time, &action, &priority) < 0)
        return NULL;
    if (check_abs_time(self, time) < 0)
        return NULL;
    Py_INCREF(action);
    if (heap_push(self, time, priority, action) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
schedule_handle_common(CSimulator *self, double time, long priority,
                       PyObject *action)
{
    PyObject *cell = PyList_New(1);
    if (cell == NULL)
        return NULL;
    Py_INCREF(action);
    PyList_SET_ITEM(cell, 0, action);
    Py_INCREF(cell); /* the heap's reference */
    if (heap_push(self, time, priority, cell) < 0) {
        Py_DECREF(cell);
        return NULL;
    }
    PyObject *time_obj = PyFloat_FromDouble(time);
    if (time_obj == NULL) {
        Py_DECREF(cell);
        return NULL;
    }
    PyObject *handle = PyObject_CallFunctionObjArgs(
        EventHandleClass, time_obj, cell, (PyObject *)self, NULL);
    Py_DECREF(time_obj);
    Py_DECREF(cell);
    return handle;
}

static PyObject *
CSimulator_schedule_handle(CSimulator *self, PyObject *const *args,
                           Py_ssize_t nargs, PyObject *kwnames)
{
    double delay;
    long priority;
    PyObject *action;
    if (parse_schedule_args(args, nargs, kwnames, "delay", "schedule_handle",
                            &delay, &action, &priority) < 0)
        return NULL;
    if (check_delay(delay) < 0)
        return NULL;
    return schedule_handle_common(self, self->now + delay, priority, action);
}

static PyObject *
CSimulator_schedule_handle_at(CSimulator *self, PyObject *const *args,
                              Py_ssize_t nargs, PyObject *kwnames)
{
    double time;
    long priority;
    PyObject *action;
    if (parse_schedule_args(args, nargs, kwnames, "time", "schedule_handle_at",
                            &time, &action, &priority) < 0)
        return NULL;
    if (check_abs_time(self, time) < 0)
        return NULL;
    return schedule_handle_common(self, time, priority, action);
}

/* ------------------------------------------------------------------ */
/* Queue hygiene                                                       */
/* ------------------------------------------------------------------ */

static PyObject *
CSimulator_compact(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    Py_ssize_t alive = 0;
    for (Py_ssize_t i = 0; i < self->size; i++) {
        if (ev_is_dead(&self->heap[i])) {
            Py_DECREF(self->heap[i].action);
        }
        else {
            self->heap[alive++] = self->heap[i];
        }
    }
    if (alive != self->size) {
        self->size = alive;
        heap_heapify(self->heap, alive);
    }
    self->cancelled = 0;
    Py_RETURN_NONE;
}

static PyObject *
CSimulator_note_cancel(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    long long cancelled = ++self->cancelled;
    if (cancelled >= COMPACT_MIN_CANCELLED &&
        2 * cancelled > (long long)self->size)
        return CSimulator_compact(self, NULL);
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Batched-service seam                                                */
/* ------------------------------------------------------------------ */

static PyObject *
CSimulator_peek_next_time(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    while (self->size > 0) {
        if (ev_is_dead(&self->heap[0])) {
            Event dead;
            heap_pop(self, &dead);
            Py_DECREF(dead.action);
            self->cancelled -= 1;
            continue;
        }
        return PyFloat_FromDouble(self->heap[0].time);
    }
    return PyFloat_FromDouble(INFINITY);
}

static PyObject *
CSimulator_advance_to(CSimulator *self, PyObject *arg)
{
    double time = PyFloat_AsDouble(arg);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    self->now = time;
    self->events_processed += 1;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Execution                                                           */
/* ------------------------------------------------------------------ */

/* Resolve a popped event to its callable (new reference), or NULL for a
 * cancelled cell (in which case *cancelled_out is bumped). */
static PyObject *
resolve_action(CSimulator *self, Event *ev)
{
    PyObject *action = ev->action;
    if (PyList_CheckExact(action)) {
        PyObject *fn = PyList_GET_ITEM(action, 0);
        if (fn == Py_None)
            return NULL;
        Py_INCREF(fn);
        /* Mark fired so handles report inactive (and never re-notify). */
        Py_INCREF(Py_None);
        PyList_SetItem(action, 0, Py_None);
        return fn;
    }
    Py_INCREF(action);
    return action;
}

static PyObject *
CSimulator_step(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    while (self->size > 0) {
        Event ev;
        heap_pop(self, &ev);
        PyObject *fn = resolve_action(self, &ev);
        Py_DECREF(ev.action);
        if (fn == NULL) {
            self->cancelled -= 1;
            continue;
        }
        self->now = ev.time;
        self->events_processed += 1;
        PyObject *result = PyObject_CallNoArgs(fn);
        Py_DECREF(fn);
        if (result == NULL)
            return NULL;
        Py_DECREF(result);
        Py_RETURN_TRUE;
    }
    Py_RETURN_FALSE;
}

static PyObject *
CSimulator_run(CSimulator *self, PyObject *const *args, Py_ssize_t nargs,
               PyObject *kwnames)
{
    PyObject *until = Py_None;
    PyObject *max_events = Py_None;
    if (nargs >= 1)
        until = args[0];
    if (nargs >= 2)
        max_events = args[1];
    if (nargs > 2) {
        PyErr_SetString(PyExc_TypeError, "run() takes at most 2 arguments");
        return NULL;
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *value = args[nargs + i];
            if (kwname_is(name, "until"))
                until = value;
            else if (kwname_is(name, "max_events"))
                max_events = value;
            else {
                PyErr_Format(PyExc_TypeError,
                             "run() got an unexpected keyword argument %R",
                             name);
                return NULL;
            }
        }
    }
    double stop = INFINITY;
    if (until != Py_None) {
        stop = PyFloat_AsDouble(until);
        if (stop == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long limit = -1;
    if (max_events != Py_None) {
        limit = PyLong_AsLongLong(max_events);
        if (limit == -1 && PyErr_Occurred())
            return NULL;
    }
    if (self->running) {
        PyErr_SetString(SimulationError, "run() is not reentrant");
        return NULL;
    }
    self->running = 1;
    self->horizon = stop;
    long long fired = 0;
    int failed = 0;
    while (self->size > 0) {
        if (self->heap[0].time > stop)
            break;
        Event ev;
        heap_pop(self, &ev);
        PyObject *fn = resolve_action(self, &ev);
        Py_DECREF(ev.action);
        if (fn == NULL) {
            self->cancelled -= 1;
            continue;
        }
        self->now = ev.time;
        fired += 1;
        PyObject *result = PyObject_CallNoArgs(fn);
        Py_DECREF(fn);
        if (result == NULL) {
            failed = 1;
            break;
        }
        Py_DECREF(result);
        if (limit >= 0 && fired >= limit)
            break;
    }
    self->running = 0;
    self->horizon = INFINITY;
    /* Added as a delta, not assigned, so events fired by nested step()
     * calls inside actions stay counted. */
    self->events_processed += fired;
    if (failed)
        return NULL;
    if (until != Py_None && self->now < stop)
        self->now = stop;
    return PyFloat_FromDouble(self->now);
}

static PyObject *
CSimulator_run_until_idle(CSimulator *self, PyObject *const *args,
                          Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *max_events = NULL;
    if (nargs >= 1)
        max_events = args[0];
    if (nargs > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "run_until_idle() takes at most 1 argument");
        return NULL;
    }
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (Py_ssize_t i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            if (!kwname_is(name, "max_events")) {
                PyErr_Format(
                    PyExc_TypeError,
                    "run_until_idle() got an unexpected keyword argument %R",
                    name);
                return NULL;
            }
            max_events = args[nargs + i];
        }
    }
    PyObject *defaulted = NULL;
    if (max_events == NULL) {
        defaulted = PyLong_FromLong(10000000L);
        if (defaulted == NULL)
            return NULL;
        max_events = defaulted;
    }
    PyObject *run_args[2] = {Py_None, max_events};
    PyObject *result = CSimulator_run(self, run_args, 2, NULL);
    Py_XDECREF(defaulted);
    return result;
}

static PyObject *
CSimulator_clear_events(CSimulator *self, PyObject *Py_UNUSED(ignored))
{
    CSimulator_clear_slot(self);
    self->cancelled = 0;
    Py_RETURN_NONE;
}

/* ------------------------------------------------------------------ */
/* Introspection                                                       */
/* ------------------------------------------------------------------ */

static PyObject *
CSimulator_get_events_processed(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->events_processed);
}

static PyObject *
CSimulator_get_pending(CSimulator *self, void *closure)
{
    return PyLong_FromSsize_t(self->size);
}

static PyObject *
CSimulator_get_cancelled(CSimulator *self, void *closure)
{
    return PyLong_FromLongLong(self->cancelled);
}

static PyObject *
CSimulator_get_queue_backend(CSimulator *self, void *closure)
{
    return PyUnicode_FromString("heap");
}

static PyObject *
CSimulator_repr(CSimulator *self)
{
    char buf[128];
    snprintf(buf, sizeof(buf),
             "<CSimulator t=%.6f pending=%lld fired=%lld queue=heap>",
             self->now, (long long)self->size, self->events_processed);
    return PyUnicode_FromString(buf);
}

static PyMethodDef CSimulator_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))CSimulator_schedule,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule action to run delay seconds from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))CSimulator_schedule_at,
     METH_FASTCALL | METH_KEYWORDS,
     "Schedule action at an absolute simulation time."},
    {"schedule_handle",
     (PyCFunction)(void (*)(void))CSimulator_schedule_handle,
     METH_FASTCALL | METH_KEYWORDS,
     "Like schedule, but returns a cancellable EventHandle."},
    {"schedule_handle_at",
     (PyCFunction)(void (*)(void))CSimulator_schedule_handle_at,
     METH_FASTCALL | METH_KEYWORDS,
     "Like schedule_at, but returns a cancellable EventHandle."},
    {"step", (PyCFunction)CSimulator_step, METH_NOARGS,
     "Fire the single next pending event; True if one fired."},
    {"run", (PyCFunction)(void (*)(void))CSimulator_run,
     METH_FASTCALL | METH_KEYWORDS,
     "Run the event loop (until=, max_events=)."},
    {"run_until_idle",
     (PyCFunction)(void (*)(void))CSimulator_run_until_idle,
     METH_FASTCALL | METH_KEYWORDS,
     "Run until no events remain (guarded by max_events)."},
    {"peek_next_time", (PyCFunction)CSimulator_peek_next_time, METH_NOARGS,
     "Time of the earliest live pending event (inf when none)."},
    {"advance_to", (PyCFunction)CSimulator_advance_to, METH_O,
     "Jump the clock forward without firing anything (batched service)."},
    {"compact", (PyCFunction)CSimulator_compact, METH_NOARGS,
     "Drop every cancelled entry from the queue immediately."},
    {"_note_cancel", (PyCFunction)CSimulator_note_cancel, METH_NOARGS,
     "A still-queued handle was cancelled (called by EventHandle)."},
    {"clear", (PyCFunction)CSimulator_clear_events, METH_NOARGS,
     "Drop all pending events."},
    {NULL, NULL, 0, NULL},
};

static PyMemberDef CSimulator_members[] = {
    {"now", T_DOUBLE, offsetof(CSimulator, now), 0,
     "Current simulation time (read-only by convention)."},
    {"horizon", T_DOUBLE, offsetof(CSimulator, horizon), 0,
     "Active run(until=...) stop time; inf outside a bounded run."},
    {NULL, 0, 0, 0, NULL},
};

static PyGetSetDef CSimulator_getset[] = {
    {"events_processed", (getter)CSimulator_get_events_processed, NULL,
     "Number of events fired so far.", NULL},
    {"pending_events", (getter)CSimulator_get_pending, NULL,
     "Number of events still queued (including cancelled ones).", NULL},
    {"cancelled_pending", (getter)CSimulator_get_cancelled, NULL,
     "Dead (cancelled-but-unpopped) entries currently in the queue.", NULL},
    {"queue_backend", (getter)CSimulator_get_queue_backend, NULL,
     "Event-store backend name (always \"heap\" for the compiled core).",
     NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject CSimulatorType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._engine_c.CSimulator",
    .tp_doc = "Compiled discrete-event simulator (heap event store).",
    .tp_basicsize = sizeof(CSimulator),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)CSimulator_init,
    .tp_dealloc = (destructor)CSimulator_dealloc,
    .tp_traverse = (traverseproc)CSimulator_traverse,
    .tp_clear = (inquiry)CSimulator_clear_slot,
    .tp_repr = (reprfunc)CSimulator_repr,
    .tp_methods = CSimulator_methods,
    .tp_members = CSimulator_members,
    .tp_getset = CSimulator_getset,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static PyObject *
engine_wire(PyObject *module, PyObject *args)
{
    PyObject *error_cls, *handle_cls;
    if (!PyArg_ParseTuple(args, "OO", &error_cls, &handle_cls))
        return NULL;
    Py_INCREF(error_cls);
    Py_XSETREF(SimulationError, error_cls);
    Py_INCREF(handle_cls);
    Py_XSETREF(EventHandleClass, handle_cls);
    Py_RETURN_NONE;
}

static PyMethodDef module_methods[] = {
    {"_wire", engine_wire, METH_VARARGS,
     "Install the canonical SimulationError and EventHandle types."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef engine_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._engine_c",
    .m_doc = "Compiled core for the discrete-event engine.",
    .m_size = -1,
    .m_methods = module_methods,
};

PyMODINIT_FUNC
PyInit__engine_c(void)
{
    if (PyType_Ready(&CSimulatorType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&engine_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CSimulatorType);
    if (PyModule_AddObject(module, "CSimulator",
                           (PyObject *)&CSimulatorType) < 0) {
        Py_DECREF(&CSimulatorType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
