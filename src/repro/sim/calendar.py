"""A calendar-queue event store (Brown 1988) for the simulation engine.

The engine's default event store is a binary heap: O(log n) per operation,
with an excellent constant because ``heapq`` is C.  When pending-event
times are *dense and roughly uniform* — the steady state of a packet
simulation, where every link and source holds one upcoming event and the
times interleave finely — a calendar queue does O(1) amortized inserts and
pops: events hash into an array of day buckets by ``time // width`` and a
pop scans the current day.

Ordering is **identical to the heap**: entries are the engine's plain
``(time, priority, seq, action)`` tuples; same-time entries always land in
the same bucket-day and are kept sorted by full tuple comparison, so ties
break on ``(priority, seq)`` exactly as ``heapq`` breaks them.  The engine
cross-checks this with a randomized both-backends test.

Implementation notes
--------------------
* **Days, not thresholds.**  A bucket's "current day" is the integer
  ``int(time / width)``; the scan compares each head's day against the
  scan day instead of accumulating floating-point bucket tops, so boundary
  rounding can never reorder two events.
* **Rewind on push.**  Scan state may sit past an empty stretch of days
  (``peek`` advances it too); pushing an event into an earlier day rewinds
  the scan so nothing is ever missed.
* **Year/day resize heuristic.**  The bucket count doubles when occupancy
  exceeds two events per bucket and halves below one half, and the day
  width is re-estimated from the average gap of a sorted sample — keeping
  ~one event per day under load, which is what makes the scan O(1).
"""

from __future__ import annotations

from bisect import insort
from math import inf
from typing import List, Optional, Tuple

Entry = Tuple[float, int, int, object]

_MIN_BUCKETS = 8
_SAMPLE = 64


class CalendarQueue:
    """A priority queue of engine event tuples, bucketed by time.

    Drop-in alternative to the engine's heap list: ``push``/``pop``/
    ``peek`` plus ``__len__``/``clear``/``compact``.  Not thread-safe (the
    engine is single-threaded).
    """

    __slots__ = ("_buckets", "_mask", "_width", "_day", "_size", "_resizing")

    def __init__(self, width: float = 1.0, nbuckets: int = _MIN_BUCKETS):
        if width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ValueError(f"bucket count must be a power of two, got {nbuckets}")
        self._buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        self._mask = nbuckets - 1
        self._width = width
        self._day = 0
        self._size = 0
        self._resizing = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def push(self, entry: Entry) -> None:
        """Insert ``entry``, keeping its bucket sorted."""
        width = self._width
        day = int(entry[0] / width)
        insort(self._buckets[day & self._mask], entry)
        self._size += 1
        if day < self._day:
            # The scan sits past this day (it had advanced over an empty
            # stretch, or a peek moved it): rewind so the entry is found.
            self._day = day
        if self._size > 2 * (self._mask + 1):
            self._resize(2 * (self._mask + 1))

    def _advance(self) -> Optional[List[Entry]]:
        """Position the scan on the bucket holding the next entry.

        Returns that bucket (its head is the global minimum), or None when
        empty.  Advancing over verified-empty days is persistent state, so
        a following :meth:`pop` re-finds the head in O(1).
        """
        if not self._size:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        day = self._day
        while True:
            # One sweep over the year (all buckets, one day each).
            for _ in range(mask + 1):
                bucket = buckets[day & mask]
                if bucket and int(bucket[0][0] / width) <= day:
                    self._day = day
                    return bucket
                day += 1
            # A whole year without a hit: the next event lies more than a
            # year ahead.  Jump straight to the day of the earliest head.
            best = inf
            for bucket in buckets:
                if bucket and bucket[0][0] < best:
                    best = bucket[0][0]
            day = int(best / width)

    def peek(self) -> Optional[Entry]:
        """The next entry to pop, or None when empty (not removed)."""
        bucket = self._advance()
        return bucket[0] if bucket is not None else None

    def pop(self) -> Optional[Entry]:
        """Remove and return the earliest entry, or None when empty."""
        bucket = self._advance()
        if bucket is None:
            return None
        entry = bucket.pop(0)
        self._size -= 1
        nbuckets = self._mask + 1
        if nbuckets > _MIN_BUCKETS and self._size < nbuckets // 2:
            self._resize(nbuckets // 2)
        return entry

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0

    def compact(self, keep) -> None:
        """Drop entries for which ``keep(entry)`` is false (dead cells)."""
        size = 0
        for i, bucket in enumerate(self._buckets):
            kept = [entry for entry in bucket if keep(entry)]
            if len(kept) != len(bucket):
                self._buckets[i] = kept
            size += len(kept)
        self._size = size

    # ------------------------------------------------------------------
    def _resize(self, nbuckets: int) -> None:
        if self._resizing:  # pragma: no cover - defensive (no reentry path)
            return
        self._resizing = True
        try:
            entries: List[Entry] = []
            for bucket in self._buckets:
                entries.extend(bucket)
            entries.sort()
            self._width = self._estimate_width(entries)
            self._buckets = [[] for _ in range(nbuckets)]
            self._mask = nbuckets - 1
            width = self._width
            mask = self._mask
            buckets = self._buckets
            for entry in entries:
                # Entries arrive in sorted order, so plain append keeps
                # every bucket sorted.
                buckets[int(entry[0] / width) & mask].append(entry)
            if entries:
                self._day = int(entries[0][0] / width)
        finally:
            self._resizing = False

    def _estimate_width(self, entries: List[Entry]) -> float:
        """Average inter-event gap of a head sample, spread over ~2 gaps
        per day (Brown's heuristic keeps ~1 event per bucket-day)."""
        sample = entries[: _SAMPLE]
        gaps = [
            later[0] - earlier[0]
            for earlier, later in zip(sample, sample[1:])
            if later[0] > earlier[0]
        ]
        if not gaps:
            return self._width
        width = 2.0 * sum(gaps) / len(gaps)
        return width if width > 0.0 else self._width

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CalendarQueue n={self._size} buckets={self._mask + 1} "
            f"width={self._width:g} day={self._day}>"
        )
