"""The discrete-event simulation engine.

A deliberately small, fast core: a binary heap of plain
``(time, priority, seq, action)`` tuples, a clock, and run-until helpers.
Everything else in the library (links, sources, schedulers, measurement) is
built as callbacks on top of this loop.

Design notes
------------
* **Determinism.**  Events at equal times fire in scheduling order (see
  :mod:`repro.sim.events`).  Combined with seeded random streams
  (:mod:`repro.sim.randomness`) this makes whole experiments replayable.
* **Two scheduling paths.**  :meth:`Simulator.schedule` /
  :meth:`Simulator.schedule_at` are the allocation-free fast path: they
  push one tuple and return nothing.  The minority of callers that need to
  cancel (retransmission timers, periodic samplers, scheduler wake-ups) use
  :meth:`Simulator.schedule_handle` / :meth:`Simulator.schedule_handle_at`,
  which box the callback in a one-cell list and return an
  :class:`~repro.sim.events.EventHandle`.  Both paths share one sequence
  counter, so same-time ordering is FIFO across them.
* **Lazy cancellation.**  ``EventHandle.cancel()`` swaps the cell to
  ``None``; the heap pop skips such entries.  This keeps cancel O(1) and is
  the standard trick for timer-heavy network simulations (retransmission
  timers get cancelled far more often than they fire).
* **Cheap inner loop.**  Validation (negative/NaN/infinite times) happens
  once at the public scheduling boundary as a single chained comparison;
  the run loop itself only pops tuples, advances the clock, and calls.
  ``heappush``/``heappop`` and the queue are bound to locals inside
  :meth:`run`.  This matters when reproducing the paper's 10-minute runs
  with ~10^6 packet events.
* **No processes/coroutines.**  The paper's model (sources emitting
  packets, links transmitting, switches enqueueing) maps naturally onto
  plain callbacks; avoiding a coroutine layer keeps the hot loop cheap.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf
from typing import Any, Callable, Optional

from repro.sim.events import EventHandle


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds.

    ``now`` is a plain attribute (not a property) so the per-packet layers
    read the clock without descriptor overhead; treat it as read-only.
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._queue: list = []
        self._seq = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock / diagnostics
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics / benchmarks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling — fast path (no handle, no allocation beyond the tuple)
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.  A zero delay
                schedules the action for "later this instant": it runs after
                all callbacks currently executing but before time advances.
            action: zero-argument callable.
            priority: tie-break among same-time events; lower runs first.

        Raises:
            SimulationError: if ``delay`` is negative, NaN, or infinite.
        """
        if not 0.0 <= delay < inf:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self.now + delay, priority, seq, action))

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` at an absolute simulation time.

        Raises:
            SimulationError: if ``time`` precedes the current time or is
                NaN/infinite.
        """
        if not self.now <= time < inf:
            raise SimulationError(
                f"cannot schedule at {time} (current time {self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (float(time), priority, seq, action))

    # ------------------------------------------------------------------
    # Scheduling — cancellable variant
    # ------------------------------------------------------------------
    def schedule_handle(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle.

        Use this only where cancellation is actually needed; it allocates a
        cell and a handle per call.
        """
        if not 0.0 <= delay < inf:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        time = self.now + delay
        cell = [action]
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time, priority, seq, cell))
        return EventHandle(time, cell)

    def schedule_handle_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if not self.now <= time < inf:
            raise SimulationError(
                f"cannot schedule at {time} (current time {self.now})"
            )
        time = float(time)
        cell = [action]
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (time, priority, seq, cell))
        return EventHandle(time, cell)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        queue = self._queue
        while queue:
            time, _, _, action = heappop(queue)
            if action.__class__ is list:
                fn = action[0]
                if fn is None:
                    continue  # cancelled; lazy deletion
                action[0] = None  # mark fired so handles report inactive
            else:
                fn = action
            self.now = time
            self._events_processed += 1
            fn()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time.  Events scheduled
                exactly at ``until`` DO fire; the clock is left at ``until``
                if the queue drains earlier or the next event lies beyond it.
            max_events: optional safety valve on the number of events fired.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        queue = self._queue
        pop = heappop
        stop = inf if until is None else until
        limit = inf if max_events is None else max_events
        fired = 0
        try:
            while queue:
                head = queue[0]
                time = head[0]
                if time > stop:
                    break
                pop(queue)
                action = head[3]
                if action.__class__ is list:
                    fn = action[0]
                    if fn is None:
                        continue  # cancelled; lazy deletion
                    action[0] = None  # mark fired
                else:
                    fn = action
                self.now = time
                fired += 1
                fn()
                if fired >= limit:
                    break
        finally:
            self._running = False
            # Added as a delta, not assigned, so events fired by nested
            # step() calls inside actions stay counted.  The counter is
            # exact whenever the loop is not executing.
            self._events_processed += fired
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain.  Guarded by ``max_events``."""
        return self.run(until=None, max_events=max_events)

    def clear(self) -> None:
        """Drop all pending events (used when tearing down an experiment)."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self.now:.6f} pending={len(self._queue)} "
            f"fired={self._events_processed}>"
        )
