"""The discrete-event simulation engine.

A deliberately small, fast core: a binary heap of :class:`~repro.sim.events.Event`
records, a clock, and run-until helpers.  Everything else in the library
(links, sources, schedulers, measurement) is built as callbacks on top of
this loop.

Design notes
------------
* **Determinism.**  Events at equal times fire in scheduling order (see
  :mod:`repro.sim.events`).  Combined with seeded random streams
  (:mod:`repro.sim.randomness`) this makes whole experiments replayable.
* **Lazy cancellation.**  ``EventHandle.cancel()`` marks the event; the heap
  pop skips cancelled entries.  This keeps cancel O(1) and is the standard
  trick for timer-heavy network simulations (retransmission timers get
  cancelled far more often than they fire).
* **No processes/coroutines.**  The paper's model (sources emitting packets,
  links transmitting, switches enqueueing) maps naturally onto plain
  callbacks; avoiding a coroutine layer keeps the hot loop cheap, which
  matters when reproducing 10-minute runs with ~10^6 packet events.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventHandle


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics / benchmarks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.  A zero delay
                schedules the action for "later this instant": it runs after
                all callbacks currently executing but before time advances.
            action: zero-argument callable.
            priority: tie-break among same-time events; lower runs first.

        Returns:
            An :class:`EventHandle` that can cancel the event.

        Raises:
            SimulationError: if ``delay`` is negative or not finite.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, action, priority=priority)

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time.

        Raises:
            SimulationError: if ``time`` precedes the current time.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        if not math.isfinite(time):
            raise SimulationError(f"time must be finite, got {time}")
        event = Event(time=float(time), priority=priority, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.cancelled = True  # mark fired so handles report inactive
            self._now = event.time
            self._events_processed += 1
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time.  Events scheduled
                exactly at ``until`` DO fire; the clock is left at ``until``
                if the queue drains earlier or the next event lies beyond it.
            max_events: optional safety valve on the number of events fired.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                event.cancelled = True
                self._now = event.time
                self._events_processed += 1
                event.action()
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain.  Guarded by ``max_events``."""
        return self.run(until=None, max_events=max_events)

    def clear(self) -> None:
        """Drop all pending events (used when tearing down an experiment)."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator t={self._now:.6f} pending={len(self._queue)} "
            f"fired={self._events_processed}>"
        )
