"""The discrete-event simulation engine.

A deliberately small, fast core: a queue of plain
``(time, priority, seq, action)`` tuples, a clock, and run-until helpers.
Everything else in the library (links, sources, schedulers, measurement) is
built as callbacks on top of this loop.

Design notes
------------
* **Determinism.**  Events at equal times fire in scheduling order (see
  :mod:`repro.sim.events`).  Combined with seeded random streams
  (:mod:`repro.sim.randomness`) this makes whole experiments replayable.
* **Two scheduling paths.**  :meth:`PySimulator.schedule` /
  :meth:`PySimulator.schedule_at` are the allocation-free fast path: they
  push one tuple and return nothing.  The minority of callers that need to
  cancel (retransmission timers, periodic samplers, scheduler wake-ups) use
  :meth:`PySimulator.schedule_handle` / :meth:`PySimulator.schedule_handle_at`,
  which box the callback in a one-cell list and return an
  :class:`~repro.sim.events.EventHandle`.  Both paths share one sequence
  counter, so same-time ordering is FIFO across them.
* **Lazy cancellation, bounded.**  ``EventHandle.cancel()`` swaps the cell
  to ``None``; the queue pop skips such entries.  This keeps cancel O(1).
  Dead cells are counted, and when they outnumber the live entries the
  queue is compacted in place, so timer-churn workloads (cancel/re-arm far
  more often than fire) cannot grow the queue without bound.
* **Pluggable event store.**  ``queue="heap"`` (default) is a binary heap
  of tuples; ``queue="calendar"`` is a bucket-array calendar queue
  (:mod:`repro.sim.calendar`) with O(1) amortized operations when event
  times are dense.  Both order identically on ``(time, priority, seq)``.
  ``queue="auto"`` resolves via ``REPRO_ENGINE_QUEUE`` (default heap).
* **Batched-service seam.**  :meth:`PySimulator.peek_next_time`,
  :attr:`PySimulator.horizon`, and :meth:`PySimulator.advance_to` let the
  batched link path (:mod:`repro.net.port`) serve a burst of packets
  arithmetically inside one event, advancing the clock only while it can
  prove no other event (and no ``run(until=...)`` window edge) could fire
  in between — which is exactly when the engine itself would have done
  nothing else.
* **Optional compiled core.**  If the C accelerator
  (``repro.sim._engine_c``, built by ``setup.py build_ext``) is importable,
  the :func:`Simulator` factory returns its engine for heap-queue
  instances.  The pure-Python :class:`PySimulator` stays authoritative:
  ``REPRO_PURE_PYTHON=1`` forces it everywhere, and the golden suite must
  pass bit-identically under both.  See :func:`backend_info`.
* **Cheap inner loop.**  Validation (negative/NaN/infinite times) happens
  once at the public scheduling boundary as a single chained comparison;
  the run loop itself only pops tuples, advances the clock, and calls.
* **No processes/coroutines.**  The paper's model (sources emitting
  packets, links transmitting, switches enqueueing) maps naturally onto
  plain callbacks; avoiding a coroutine layer keeps the hot loop cheap.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from math import inf
from typing import Any, Callable, Optional

from repro.sim.calendar import CalendarQueue
from repro.sim.events import EventHandle

#: Compact the queue only past this many dead cells, so small simulations
#: never pay for a rebuild.
COMPACT_MIN_CANCELLED = 256

QUEUE_BACKENDS = ("heap", "calendar")


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no")


def resolve_queue_backend(queue: Optional[str] = None) -> str:
    """Resolve a ``queue=`` argument to a concrete backend name.

    ``None``/``"auto"`` consult the ``REPRO_ENGINE_QUEUE`` environment
    variable (read at call time, so tests can flip it per run) and default
    to ``"heap"``.
    """
    if queue is None or queue == "auto":
        queue = os.environ.get("REPRO_ENGINE_QUEUE", "").strip().lower() or "auto"
        if queue == "auto":
            queue = "heap"
    if queue not in QUEUE_BACKENDS:
        raise ValueError(
            f"unknown queue backend {queue!r}; expected one of "
            f"{QUEUE_BACKENDS + ('auto',)}"
        )
    return queue


class PySimulator:
    """A discrete-event simulator with a floating-point clock in seconds.

    ``now`` is a plain attribute (not a property) so the per-packet layers
    read the clock without descriptor overhead; treat it as read-only.

    Args:
        start_time: initial clock value.
        queue: event-store backend, ``"heap"`` or ``"calendar"``
            (``"auto"``/None resolve via :func:`resolve_queue_backend`).
    """

    __slots__ = (
        "now",
        "horizon",
        "queue_backend",
        "_queue",
        "_cal",
        "_seq",
        "_running",
        "_events_processed",
        "_cancelled",
    )

    def __init__(self, start_time: float = 0.0, queue: Optional[str] = None):
        self.now = float(start_time)
        #: The active ``run(until=...)`` stop time (``inf`` outside a
        #: bounded run).  The batched link path never advances the clock
        #: past it, so sliced run windows stay bit-identical.
        self.horizon = inf
        self.queue_backend = resolve_queue_backend(queue)
        if self.queue_backend == "calendar":
            self._cal: Optional[CalendarQueue] = CalendarQueue()
            self._queue: Any = self._cal
        else:
            self._cal = None
            self._queue = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Clock / diagnostics
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics / benchmarks)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Dead (cancelled-but-unpopped) entries currently in the queue."""
        return self._cancelled

    # ------------------------------------------------------------------
    # Scheduling — fast path (no handle, no allocation beyond the tuple)
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.  A zero delay
                schedules the action for "later this instant": it runs after
                all callbacks currently executing but before time advances.
            action: zero-argument callable.
            priority: tie-break among same-time events; lower runs first.

        Raises:
            SimulationError: if ``delay`` is negative, NaN, or infinite.
        """
        if not 0.0 <= delay < inf:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        seq = self._seq
        self._seq = seq + 1
        cal = self._cal
        if cal is None:
            heappush(self._queue, (self.now + delay, priority, seq, action))
        else:
            cal.push((self.now + delay, priority, seq, action))

    def schedule_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> None:
        """Schedule ``action`` at an absolute simulation time.

        Raises:
            SimulationError: if ``time`` precedes the current time or is
                NaN/infinite.
        """
        if not self.now <= time < inf:
            raise SimulationError(
                f"cannot schedule at {time} (current time {self.now})"
            )
        seq = self._seq
        self._seq = seq + 1
        cal = self._cal
        if cal is None:
            heappush(self._queue, (float(time), priority, seq, action))
        else:
            cal.push((float(time), priority, seq, action))

    # ------------------------------------------------------------------
    # Scheduling — cancellable variant
    # ------------------------------------------------------------------
    def schedule_handle(
        self,
        delay: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle.

        Use this only where cancellation is actually needed; it allocates a
        cell and a handle per call.
        """
        if not 0.0 <= delay < inf:
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay}"
            )
        time = self.now + delay
        cell = [action]
        seq = self._seq
        self._seq = seq + 1
        cal = self._cal
        if cal is None:
            heappush(self._queue, (time, priority, seq, cell))
        else:
            cal.push((time, priority, seq, cell))
        return EventHandle(time, cell, self)

    def schedule_handle_at(
        self,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if not self.now <= time < inf:
            raise SimulationError(
                f"cannot schedule at {time} (current time {self.now})"
            )
        time = float(time)
        cell = [action]
        seq = self._seq
        self._seq = seq + 1
        cal = self._cal
        if cal is None:
            heappush(self._queue, (time, priority, seq, cell))
        else:
            cal.push((time, priority, seq, cell))
        return EventHandle(time, cell, self)

    # ------------------------------------------------------------------
    # Queue hygiene
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """A still-queued handle was cancelled (called by EventHandle).

        When dead cells outnumber live entries (and there are enough of
        them to matter), rebuild the queue without them.  The rebuild is
        in place — the queue object's identity is preserved — because the
        run loop holds a local reference while executing actions.
        """
        cancelled = self._cancelled + 1
        self._cancelled = cancelled
        if cancelled >= COMPACT_MIN_CANCELLED and 2 * cancelled > len(self._queue):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry from the queue immediately."""
        cal = self._cal
        if cal is None:
            queue = self._queue
            alive = [
                entry
                for entry in queue
                if not (entry[3].__class__ is list and entry[3][0] is None)
            ]
            if len(alive) != len(queue):
                queue[:] = alive
                heapify(queue)
        else:
            cal.compact(
                lambda entry: not (
                    entry[3].__class__ is list and entry[3][0] is None
                )
            )
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Batched-service seam
    # ------------------------------------------------------------------
    def peek_next_time(self) -> float:
        """Time of the earliest live pending event (``inf`` when none).

        Dead (cancelled) entries surfacing at the head are removed on the
        way, so the answer is exact, not conservative.
        """
        cal = self._cal
        if cal is None:
            queue = self._queue
            while queue:
                head = queue[0]
                action = head[3]
                if action.__class__ is list and action[0] is None:
                    heappop(queue)
                    self._cancelled -= 1
                    continue
                return head[0]
            return inf
        while True:
            head = cal.peek()
            if head is None:
                return inf
            action = head[3]
            if action.__class__ is list and action[0] is None:
                cal.pop()
                self._cancelled -= 1
                continue
            return head[0]

    def advance_to(self, time: float) -> None:
        """Jump the clock forward without firing anything.

        This is the engine's half of the batched link service contract:
        the caller (one currently-executing event) has verified that
        ``now <= time``, ``time <= horizon``, and ``time`` does not pass
        :meth:`peek_next_time` — i.e. the engine itself would have done
        nothing but advance the clock to ``time``.

        Each jump stands in for exactly one elided event (the completion
        the caller chose not to schedule), so it counts toward
        :attr:`events_processed` — keeping the diagnostic equal to the
        unbatched event schedule regardless of how bursts fell.
        """
        self.now = time
        self._events_processed += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            True if an event fired, False if the queue was empty.
        """
        cal = self._cal
        if cal is None:
            queue = self._queue
            while queue:
                time, _, _, action = heappop(queue)
                if action.__class__ is list:
                    fn = action[0]
                    if fn is None:
                        self._cancelled -= 1
                        continue  # cancelled; lazy deletion
                    action[0] = None  # mark fired so handles report inactive
                else:
                    fn = action
                self.now = time
                self._events_processed += 1
                fn()
                return True
            return False
        while True:
            entry = cal.pop()
            if entry is None:
                return False
            action = entry[3]
            if action.__class__ is list:
                fn = action[0]
                if fn is None:
                    self._cancelled -= 1
                    continue
                action[0] = None
            else:
                fn = action
            self.now = entry[0]
            self._events_processed += 1
            fn()
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this time.  Events scheduled
                exactly at ``until`` DO fire; the clock is left at ``until``
                if the queue drains earlier or the next event lies beyond it.
            max_events: optional safety valve on the number of events fired.
                Batched link service makes one event serve many packets, so
                this bounds *events*, not packets.

        Returns:
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        stop = inf if until is None else until
        self.horizon = stop
        limit = inf if max_events is None else max_events
        fired = 0
        cal = self._cal
        try:
            if cal is None:
                queue = self._queue
                pop = heappop
                while queue:
                    head = queue[0]
                    time = head[0]
                    if time > stop:
                        break
                    pop(queue)
                    action = head[3]
                    if action.__class__ is list:
                        fn = action[0]
                        if fn is None:
                            self._cancelled -= 1
                            continue  # cancelled; lazy deletion
                        action[0] = None  # mark fired
                    else:
                        fn = action
                    self.now = time
                    fired += 1
                    fn()
                    if fired >= limit:
                        break
            else:
                while True:
                    head = cal.peek()
                    if head is None or head[0] > stop:
                        break
                    cal.pop()
                    action = head[3]
                    if action.__class__ is list:
                        fn = action[0]
                        if fn is None:
                            self._cancelled -= 1
                            continue
                        action[0] = None
                    else:
                        fn = action
                    self.now = head[0]
                    fired += 1
                    fn()
                    if fired >= limit:
                        break
        finally:
            self._running = False
            self.horizon = inf
            # Added as a delta, not assigned, so events fired by nested
            # step() calls inside actions stay counted.  The counter is
            # exact whenever the loop is not executing.
            self._events_processed += fired
        if until is not None and self.now < until:
            self.now = until
        return self.now

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain.  Guarded by ``max_events``."""
        return self.run(until=None, max_events=max_events)

    def clear(self) -> None:
        """Drop all pending events (used when tearing down an experiment)."""
        self._queue.clear()
        self._cancelled = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PySimulator t={self.now:.6f} pending={len(self._queue)} "
            f"fired={self._events_processed} queue={self.queue_backend}>"
        )


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------

#: Whether ``REPRO_PURE_PYTHON`` forced the pure-Python engine.  Read once
#: at import: backend selection is an import-time decision by design, so a
#: process never mixes engine backends mid-run.
PURE_PYTHON_FORCED = _env_flag("REPRO_PURE_PYTHON")

_COMPILED = None
if not PURE_PYTHON_FORCED:
    try:
        from repro.sim import _engine_c as _COMPILED  # type: ignore[attr-defined]
    except ImportError:
        _COMPILED = None
    else:
        # Hand the accelerator the canonical exception and handle types so
        # both backends raise/return exactly the same objects.
        _COMPILED._wire(SimulationError, EventHandle)


def Simulator(start_time: float = 0.0, queue: Optional[str] = None):
    """Build a simulation engine (factory; also exported as ``Engine``).

    Returns the compiled core when it is importable and the resolved queue
    backend is ``"heap"`` (the calendar queue is pure Python); otherwise
    the authoritative :class:`PySimulator`.  ``REPRO_PURE_PYTHON=1``
    disables the compiled core for the whole process.

    Args:
        start_time: initial clock value.
        queue: ``"heap"`` | ``"calendar"`` | ``"auto"`` (default: consult
            ``REPRO_ENGINE_QUEUE``, then heap).
    """
    resolved = resolve_queue_backend(queue)
    if _COMPILED is not None and resolved == "heap":
        return _COMPILED.CSimulator(start_time)
    return PySimulator(start_time, queue=resolved)


#: The name the ISSUE/ROADMAP use for the selectable engine.
Engine = Simulator


def backend_info() -> dict:
    """Report which engine core and queue backends this process uses.

    Also exported as :func:`repro.sim.backend_info`.
    """
    compiled = _COMPILED is not None
    return {
        "engine": "compiled-c" if compiled else "pure-python",
        "compiled_available": compiled,
        "compiled_module": getattr(_COMPILED, "__file__", None),
        "pure_python_forced": PURE_PYTHON_FORCED,
        "default_queue": resolve_queue_backend(None),
        "queue_backends": list(QUEUE_BACKENDS),
    }
