"""Cancellation handles for the simulation engine.

The engine stores pending work as plain ``(time, priority, seq, action)``
heap tuples.  The sequence number is a monotonically increasing counter
assigned at scheduling time, which makes the ordering *total* and therefore
deterministic: two events scheduled for the same instant fire in the order
they were scheduled (FIFO among equals), which is the behaviour
packet-level simulators rely on for reproducibility.  Because ``seq`` is
unique, tuple comparison never reaches the ``action`` slot.

Most events are fire-and-forget and carry their callback directly in the
``action`` slot — scheduling them allocates nothing beyond the tuple.  The
minority that may be cancelled (retransmission timers, periodic samplers,
wake-ups) instead carry a **one-cell list** ``[callback]``; cancelling
swaps the cell to ``None`` and the engine skips such entries when they
surface at the top of the heap (O(1) cancel, the standard lazy-deletion
trick).  :class:`EventHandle` is the public face of that cell.

Cancelled cells linger in the queue until popped, so the handle also
notifies its owning simulator on a *live* cancel; the engine counts these
dead entries and compacts the queue when they dominate it (see
``Simulator._note_cancel``), which keeps timer-churn workloads from
growing the queue without bound.
"""

from __future__ import annotations


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule_handle`.

    Wraps the event's mutable cancellation cell so that callers can cancel
    it (``handle.cancel()``) or ask when it will fire.  Handles are
    single-use: once the event has fired or been cancelled, :attr:`active`
    is False.

    Attributes:
        time: absolute simulation time the event is (or was) scheduled for.
    """

    __slots__ = ("time", "_cell", "_sim")

    def __init__(self, time: float, cell: list, sim=None):
        self.time = time
        self._cell = cell
        self._sim = sim

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return self._cell[0] is not None

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; cancelling a fired event is a no-op."""
        cell = self._cell
        if cell[0] is not None:
            cell[0] = None
            sim = self._sim
            if sim is not None:
                # The cell is still queued: let the engine account for the
                # dead entry (and compact when they pile up).  Fired events
                # never reach here — the engine nulls the cell on pop.
                sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "done"
        return f"<EventHandle t={self.time:.6f} {state}>"
