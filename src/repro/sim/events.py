"""Event records and cancellation handles for the simulation engine.

Events are ordered by (time, priority, sequence).  The sequence number is a
monotonically increasing counter assigned at scheduling time, which makes the
ordering *total* and therefore deterministic: two events scheduled for the
same instant fire in the order they were scheduled (FIFO among equals), which
is the behaviour packet-level simulators rely on for reproducibility.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable


@dataclasses.dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute simulation time (seconds) at which to fire.
        priority: lower fires first among events at the same time.  Most
            callers leave this at the default 0; it exists so that control
            events (e.g. measurement sampling) can be ordered relative to
            data-path events deliberately.
        seq: scheduling sequence number; breaks remaining ties FIFO.
        action: the callback, invoked with no arguments.
        cancelled: lazily-deleted flag; cancelled events are skipped by the
            engine rather than removed from the heap (O(1) cancel).
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holds a reference to the underlying event so that callers can cancel it
    (``handle.cancel()``) or ask when it will fire.  Handles are single-use:
    once the event has fired or been cancelled, :attr:`active` is False.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Absolute simulation time the event is (or was) scheduled for."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event.  Idempotent; cancelling a fired event is a no-op."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else "done"
        return f"<EventHandle t={self._event.time:.6f} {state}>"
