"""Seeded random streams for reproducible experiments.

Each stochastic component in a simulation (every traffic source, every
drop-decision, ...) draws from its *own* named stream.  Streams are derived
deterministically from a single experiment seed, so adding a new component
does not perturb the draws of existing ones — the classic "random stream
discipline" of network simulators, and the property that makes A/B scheduler
comparisons (Table 1/2: same arrivals, different scheduler) meaningful.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class StreamRandom(random.Random):
    """A ``random.Random`` subclass tagged with the name of its stream."""

    def __init__(self, seed_material: bytes, name: str):
        self.stream_name = name
        super().__init__(int.from_bytes(seed_material, "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StreamRandom {self.stream_name!r}>"

    # --- distributions used by the paper's workload ------------------
    def geometric(self, mean: float) -> int:
        """Geometric variate with the given mean, support {1, 2, ...}.

        The Appendix generates "a geometrically distributed random number of
        packets" per burst with mean B; a burst always has at least one
        packet, so the support starts at 1.  With success probability
        p = 1/mean, E[X] = mean.
        """
        if mean < 1.0:
            raise ValueError(f"geometric mean must be >= 1, got {mean}")
        if mean == 1.0:
            return 1
        p = 1.0 / mean
        # Inverse-CDF sampling: X = ceil(ln(U) / ln(1-p)).
        u = 1.0 - self.random()  # in (0, 1]
        import math

        return max(1, math.ceil(math.log(u) / math.log(1.0 - p)))

    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean (idle periods, Poisson gaps)."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        return self.expovariate(1.0 / mean)


class RandomStreams:
    """Factory of named, independent, deterministic random streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, StreamRandom] = {}

    def stream(self, name: str) -> StreamRandom:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed is SHA-256(experiment seed || name): independent
        streams regardless of creation order.
        """
        if name not in self._streams:
            material = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()[:8]
            self._streams[name] = StreamRandom(material, name)
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.seed} open={len(self._streams)}>"
