"""Timer utilities built on the event loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle


class PeriodicTimer:
    """Fires a callback every ``interval`` seconds until stopped.

    Used by the measurement module (periodic sampling of utilization and
    queue state for admission control) and by constant-bit-rate sources.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        action: Callable[[], Any],
        *,
        start_offset: Optional[float] = None,
        priority: int = 0,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = float(interval)
        self._action = action
        self._priority = priority
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        first = interval if start_offset is None else start_offset
        self._handle = sim.schedule_handle(first, self._fire, priority=priority)

    @property
    def interval(self) -> float:
        return self._interval

    @property
    def running(self) -> bool:
        return not self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action()
        if not self._stopped:  # action may have called stop()
            self._handle = self._sim.schedule_handle(
                self._interval, self._fire, priority=self._priority
            )

    def stop(self) -> None:
        """Stop the timer; pending fire is cancelled.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
