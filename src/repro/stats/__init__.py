"""Statistics utilities for measurement and reporting.

The paper reports mean and 99.9th-percentile queueing delays (Tables 1-3),
measured utilization (nu-hat) and measured per-class maximal delay (d-hat)
for admission control (Section 9).  This subpackage provides the streaming
estimators behind all of those numbers.
"""

from repro.stats.summary import SummaryStats
from repro.stats.percentile import PercentileTracker, exact_percentile
from repro.stats.ewma import Ewma
from repro.stats.histogram import Histogram
from repro.stats.timeseries import TimeWeightedValue, RateMeter
from repro.stats.windowed import SlidingWindowMax, SlidingWindowStats

__all__ = [
    "SummaryStats",
    "PercentileTracker",
    "exact_percentile",
    "Ewma",
    "Histogram",
    "TimeWeightedValue",
    "RateMeter",
    "SlidingWindowMax",
    "SlidingWindowStats",
]
