"""Exponentially weighted moving average.

FIFO+ (Section 6) requires each switch to track "the average delay seen by
packets in each priority class at that switch"; an EWMA is the natural
streaming estimator and is what deployed FIFO+-style mechanisms use.  The
gain is exposed because the ablation bench sweeps it.
"""

from __future__ import annotations


class Ewma:
    """EWMA with fixed gain: est <- (1-g)*est + g*sample.

    The first sample initialises the estimate directly, avoiding the usual
    cold-start bias toward zero.
    """

    __slots__ = ("gain", "_value", "count")

    def __init__(self, gain: float = 0.01):
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        self.gain = gain
        self._value: float | None = None
        self.count = 0

    def add(self, sample: float) -> float:
        """Fold in a sample and return the updated estimate."""
        self.count += 1
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.gain * (sample - self._value)
        return self._value

    @property
    def value(self) -> float:
        """Current estimate; 0.0 before any sample (FIFO+ treats the first
        packets at a cold switch as average)."""
        return self._value if self._value is not None else 0.0

    @property
    def initialized(self) -> bool:
        return self._value is not None

    def reset(self) -> None:
        self._value = None
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Ewma gain={self.gain} value={self.value:.4g} n={self.count}>"
