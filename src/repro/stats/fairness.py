"""Fairness metrics.

Jain's fairness index over per-flow allocations:

    J(x) = (sum x_i)^2 / (n * sum x_i^2),   1/n <= J <= 1

J = 1 means perfectly equal allocations; J = 1/n means one flow took
everything.  The benches use it to quantify the §5 isolation/sharing
contrast: FIFO spreads *jitter* evenly across a homogeneous class (high
fairness over per-flow tail delays), while WFQ concentrates each flow's
jitter on itself (low fairness over tails when one flow bursts).
"""

from __future__ import annotations

from typing import Sequence


def jain_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index of a non-negative allocation vector."""
    if not allocations:
        raise ValueError("need at least one allocation")
    for value in allocations:
        if value < 0:
            raise ValueError("allocations cannot be negative")
    total = sum(allocations)
    squares = sum(value * value for value in allocations)
    if squares == 0.0:
        # All-zero allocations (everyone equally has nothing), or values so
        # small their squares underflow to zero — treat as equal shares.
        return 1.0
    return (total * total) / (len(allocations) * squares)


def max_min_ratio(allocations: Sequence[float]) -> float:
    """max/min of a positive allocation vector (1 = perfectly equal)."""
    if not allocations:
        raise ValueError("need at least one allocation")
    smallest = min(allocations)
    if smallest <= 0:
        raise ValueError("allocations must be positive for a ratio")
    return max(allocations) / smallest
