"""Fixed-bin histogram for delay distributions.

Used by the examples and ablation benches to show *distributions* (the
isolation-vs-sharing story of Section 5 is about the shape of the delay
distribution, not just two scalars).
"""

from __future__ import annotations

import math
from typing import List, Tuple


class Histogram:
    """Histogram with uniform bins over [lo, hi) plus overflow/underflow.

    Args:
        lo: lower edge of the first bin.
        hi: upper edge of the last bin.
        bins: number of uniform bins.
    """

    def __init__(self, lo: float, hi: float, bins: int):
        if hi <= lo:
            raise ValueError(f"need hi > lo, got [{lo}, {hi})")
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self._width = (hi - lo) / bins
        self._counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if value < self.lo:
            self.underflow += 1
        elif value >= self.hi:
            self.overflow += 1
        else:
            idx = int((value - self.lo) / self._width)
            # Guard against float edge cases at the top boundary.
            if idx >= self.bins:
                idx = self.bins - 1
            self._counts[idx] += 1

    def bin_edges(self) -> List[float]:
        """The bins+1 edges."""
        return [self.lo + i * self._width for i in range(self.bins + 1)]

    def counts(self) -> List[int]:
        return list(self._counts)

    def nonzero_bins(self) -> List[Tuple[float, float, int]]:
        """(lo_edge, hi_edge, count) for every non-empty bin."""
        out = []
        for i, c in enumerate(self._counts):
            if c:
                out.append((self.lo + i * self._width, self.lo + (i + 1) * self._width, c))
        return out

    def cdf_at(self, value: float) -> float:
        """Empirical CDF evaluated at ``value`` (bin-resolution)."""
        if self.count == 0:
            return 0.0
        if value < self.lo:
            return 0.0
        below = self.underflow
        for i in range(self.bins):
            edge_hi = self.lo + (i + 1) * self._width
            if value >= edge_hi:
                below += self._counts[i]
            else:
                break
        return below / self.count

    def ascii(self, width: int = 50) -> str:
        """Render an ASCII bar chart (used by example scripts)."""
        if self.count == 0:
            return "(empty histogram)"
        peak = max(self._counts) or 1
        lines = []
        for i, c in enumerate(self._counts):
            edge = self.lo + i * self._width
            bar = "#" * int(math.ceil(width * c / peak)) if c else ""
            lines.append(f"{edge:>10.3f} | {bar} {c}")
        if self.overflow:
            lines.append(f"{'overflow':>10} | {self.overflow}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram n={self.count} bins={self.bins} [{self.lo},{self.hi})>"
