"""Percentile estimation.

The paper's headline jitter metric is the 99.9th-percentile queueing delay.
At the experiment scale involved (<= a few million samples per flow) it is
both simplest and most faithful to keep the raw samples and compute the
percentile exactly, as the original study implicitly did.  The
:class:`PercentileTracker` therefore stores samples in an ``array('d')``
— 8 bytes per recorded packet, versus the ~32+ of a list of boxed floats
(pointer + float object), so million-sample flows cost megabytes instead
of tens of them — and sorts lazily; percentile values are computed from
the same C doubles a list would hold, so they stay exact and
bit-identical.  A reservoir mode caps memory for very long runs.
"""

from __future__ import annotations

import bisect
import math
import random
from array import array
from typing import List, Optional, Sequence


def exact_percentile(sorted_samples: Sequence[float], pct: float) -> float:
    """Percentile of pre-sorted data using linear interpolation.

    Matches ``numpy.percentile(..., method="linear")``, the standard
    definition: the p-th percentile sits at rank ``p/100 * (n-1)``.

    Args:
        sorted_samples: non-empty ascending sequence.
        pct: percentile in [0, 100].
    """
    if not sorted_samples:
        raise ValueError("percentile of empty data")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    n = len(sorted_samples)
    if n == 1:
        return float(sorted_samples[0])
    rank = (pct / 100.0) * (n - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, n - 1)
    frac = rank - lo
    return float(sorted_samples[lo] * (1.0 - frac) + sorted_samples[hi] * frac)


class PercentileTracker:
    """Collects samples and answers percentile queries.

    Args:
        reservoir_size: if given, switch to reservoir sampling (Vitter's
            algorithm R) once the sample count exceeds this size; percentiles
            then become estimates.  ``None`` (default) keeps every sample,
            which is what the table-reproduction experiments use.
        rng: random stream for the reservoir; required when a reservoir size
            is set so the experiment stays deterministic.
    """

    def __init__(
        self,
        reservoir_size: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ):
        if reservoir_size is not None:
            if reservoir_size <= 0:
                raise ValueError("reservoir_size must be positive")
            if rng is None:
                raise ValueError("a seeded rng is required with a reservoir")
        self._samples: array = array("d")
        self._sorted = True
        self._count = 0
        self._reservoir_size = reservoir_size
        self._rng = rng

    @property
    def count(self) -> int:
        """Total number of samples *offered* (not necessarily retained)."""
        return self._count

    def add(self, value: float) -> None:
        self._count += 1
        if self._reservoir_size is None or len(self._samples) < self._reservoir_size:
            self._samples.append(value)
            self._sorted = False
            return
        # Reservoir replacement (algorithm R).
        assert self._rng is not None
        j = self._rng.randrange(self._count)
        if j < self._reservoir_size:
            self._samples[j] = value
            self._sorted = False

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # array('d') has no in-place sort; rebuild from sorted values.
            self._samples = array("d", sorted(self._samples))
            self._sorted = True

    def percentile(self, pct: float) -> float:
        """Return the pct-th percentile of the recorded samples."""
        self._ensure_sorted()
        return exact_percentile(self._samples, pct)

    def quantiles(self, pcts: Sequence[float]) -> List[float]:
        """Batch percentile query (single sort)."""
        self._ensure_sorted()
        return [exact_percentile(self._samples, p) for p in pcts]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of samples strictly greater than ``threshold``.

        Used by adaptive playback applications: "what loss rate would this
        playback point have produced?".
        """
        if not self._samples:
            return 0.0
        self._ensure_sorted()
        idx = bisect.bisect_right(self._samples, threshold)
        return (len(self._samples) - idx) / len(self._samples)

    @property
    def max(self) -> float:
        self._ensure_sorted()
        if not self._samples:
            raise ValueError("no samples")
        return self._samples[-1]

    @property
    def min(self) -> float:
        self._ensure_sorted()
        if not self._samples:
            raise ValueError("no samples")
        return self._samples[0]

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PercentileTracker n={self._count} kept={len(self._samples)}>"
